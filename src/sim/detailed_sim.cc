#include "sim/detailed_sim.hh"

#include <algorithm>
#include <limits>

#include "branch/ideal.hh"
#include "branch/synthetic.hh"
#include "common/logging.hh"

namespace fosm {

DetailedSimulator::DetailedSimulator(const Trace &trace,
                                     const SimConfig &config)
    : trace_(trace),
      config_(config),
      hierarchy_(config.hierarchy),
      timing_(trace.size())
{
    fosm_assert(config_.machine.width > 0, "width must be positive");
    fosm_assert(config_.machine.frontEndDepth > 0,
                "front-end depth must be positive");
    fosm_assert(config_.machine.windowSize > 0,
                "window size must be positive");
    fosm_assert(config_.machine.robSize >= config_.machine.windowSize,
                "ROB must be at least as large as the window");
    fosm_assert(config_.machine.clusters >= 1,
                "need at least one cluster");
    fosm_assert(config_.machine.width % config_.machine.clusters == 0,
                "issue width must be divisible by the cluster count");
    fosm_assert(
        config_.machine.windowSize % config_.machine.clusters == 0,
        "window size must be divisible by the cluster count");
    clusterOccupancy_.assign(config_.machine.clusters, 0);
    clusterIssued_.assign(config_.machine.clusters, 0);

    if (config_.options.idealBranchPredictor) {
        predictor_ = makePredictor(PredictorKind::Ideal);
    } else if (config_.syntheticMispredictRate >= 0.0) {
        predictor_ = std::make_unique<SyntheticPredictor>(
            config_.syntheticMispredictRate);
    } else {
        predictor_ =
            makePredictor(config_.predictor, config_.predictorEntries);
    }

    if (config_.dtlb.enabled)
        dtlb_ = std::make_unique<Tlb>(config_.dtlb);

    stats_.timelineBucketCycles = config_.options.timelineBucketCycles;

    // Functional-unit pools (empty busy vector = unbounded).
    const FuPool *pools[5] = {
        &config_.fuPools.intAlu, &config_.fuPools.intMul,
        &config_.fuPools.intDiv, &config_.fuPools.fpAlu,
        &config_.fuPools.memPort};
    for (std::size_t p = 0; p < 5; ++p) {
        fuState_[p].pipelined = pools[p]->pipelined;
        fuState_[p].busyUntil.assign(pools[p]->count, 0);
    }

    // Window list: sentinel node is trace_.size().
    winSentinel_ = static_cast<std::uint32_t>(trace_.size());
    winNext_.assign(trace_.size() + 1, winSentinel_);
    winPrev_.assign(trace_.size() + 1, winSentinel_);

    waiterHead_.assign(trace_.size(), -1);
    waiterNext_.resize(trace_.size() * 2);

    resolveProducers();
}

std::size_t
DetailedSimulator::fuPoolIndex(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu:
      case InstClass::Branch:
        return 0;
      case InstClass::IntMul:
        return 1;
      case InstClass::IntDiv:
        return 2;
      case InstClass::FpAlu:
        return 3;
      case InstClass::Load:
      case InstClass::Store:
        return 4;
    }
    fosm_panic("unknown InstClass");
}

bool
DetailedSimulator::fuAvailable(InstClass cls) const
{
    const FuPoolState &pool = fuState_[fuPoolIndex(cls)];
    if (pool.busyUntil.empty())
        return true; // unbounded
    for (Cycle busy : pool.busyUntil) {
        if (busy <= now_)
            return true;
    }
    return false;
}

void
DetailedSimulator::occupyFu(InstClass cls)
{
    FuPoolState &pool = fuState_[fuPoolIndex(cls)];
    if (pool.busyUntil.empty())
        return;
    for (Cycle &busy : pool.busyUntil) {
        if (busy <= now_) {
            // A pipelined unit accepts a new operation next cycle;
            // an unpipelined one is busy for the full latency.
            busy = now_ + (pool.pipelined
                               ? 1
                               : config_.latency.latencyFor(cls));
            return;
        }
    }
    fosm_panic("occupyFu called without an available unit");
}

void
DetailedSimulator::resolveProducers()
{
    const std::size_t n = trace_.size();
    std::vector<std::int32_t> last_writer(numArchRegs, -1);
    for (std::size_t i = 0; i < n; ++i) {
        const InstRecord &inst = trace_[i];
        timing_[i].prod1 =
            inst.src1 != invalidReg ? last_writer[inst.src1] : -1;
        timing_[i].prod2 =
            inst.src2 != invalidReg ? last_writer[inst.src2] : -1;
        if (inst.dst != invalidReg)
            last_writer[inst.dst] = static_cast<std::int32_t>(i);
    }
}

void
DetailedSimulator::windowPushBack(std::uint32_t seq)
{
    const std::uint32_t tail = winPrev_[winSentinel_];
    winNext_[tail] = seq;
    winPrev_[seq] = tail;
    winNext_[seq] = winSentinel_;
    winPrev_[winSentinel_] = seq;
    ++windowCount_;
}

void
DetailedSimulator::windowRemove(std::uint32_t seq)
{
    winNext_[winPrev_[seq]] = winNext_[seq];
    winPrev_[winNext_[seq]] = winPrev_[seq];
    --windowCount_;
}

std::uint32_t
DetailedSimulator::pipeCapacity() const
{
    return config_.machine.frontEndDepth * config_.machine.width +
           config_.options.fetchBufferEntries;
}

bool
DetailedSimulator::longMissOutstanding() const
{
    return !outstandingLongMisses_.empty();
}

bool
DetailedSimulator::reapLongMisses()
{
    // Sorted ascending: completed deadlines form a prefix.
    std::size_t k = 0;
    while (k < outstandingLongMisses_.size() &&
           outstandingLongMisses_[k] <= now_) {
        stats_.windowAtMissReturn.add(
            static_cast<double>(windowCount_));
        ++k;
    }
    if (k == 0)
        return false;
    outstandingLongMisses_.erase(outstandingLongMisses_.begin(),
                                 outstandingLongMisses_.begin() + k);
    return true;
}

void
DetailedSimulator::wakeConsumers(std::uint32_t seq)
{
    const InstTiming &t = timing_[seq];
    for (std::int32_t node = waiterHead_[seq]; node >= 0;
         node = waiterNext_[node]) {
        InstTiming &ct = timing_[static_cast<std::uint32_t>(node) / 2];
        // Values produced in another cluster pay the forwarding
        // delay (future-work 3).
        Cycle available = t.completeCycle;
        if (t.cluster != ct.cluster)
            available += config_.machine.interClusterDelay;
        ct.readyAt = std::max(ct.readyAt, available);
        fosm_assert(ct.pendingProducers > 0,
                    "waking a consumer with no pending producers");
        --ct.pendingProducers;
    }
    waiterHead_[seq] = -1;
}

void
DetailedSimulator::issueInst(std::uint32_t seq)
{
    const InstRecord &inst = trace_[seq];
    InstTiming &t = timing_[seq];

    Cycle lat = config_.latency.latencyFor(inst.cls);

    // Data-TLB translation precedes the cache access; a load walk
    // serializes with the load ("much like a long data cache miss",
    // Section 7 future-work 4). Store walks are absorbed by the
    // write buffer.
    Cycle walk = 0;
    if (dtlb_ && inst.isMem() && !config_.options.idealDcache) {
        if (!dtlb_->access(inst.effAddr)) {
            if (inst.isLoad()) {
                ++stats_.dtlbLoadMisses;
                walk = config_.dtlb.walkLatency;
            } else {
                ++stats_.dtlbStoreMisses;
            }
        }
    }

    if (inst.isLoad() && !config_.options.idealDcache) {
        const AccessResult access = hierarchy_.accessData(inst.effAddr);
        if (access.level == HitLevel::L2) {
            ++stats_.shortLoadMisses;
            lat = config_.latency.loadHit + config_.hierarchy.l2Latency;
        } else if (access.level == HitLevel::Memory) {
            if (config_.options.isolateDcacheMisses &&
                longMissOutstanding()) {
                // Isolation experiment: overlapping misses become hits.
                lat = config_.latency.loadHit;
            } else {
                ++stats_.longLoadMisses;
                lat = config_.latency.loadHit +
                      config_.hierarchy.memLatency;
                t.longMiss = true;
                // ROB is filled in order, so the entries ahead of this
                // load are exactly those with smaller sequence numbers.
                fosm_assert(!rob_.empty(), "issuing outside the ROB");
                stats_.robAheadOfMissedLoad.add(
                    static_cast<double>(seq - rob_.front()));
                const Cycle deadline = now_ + lat + walk;
                outstandingLongMisses_.insert(
                    std::upper_bound(outstandingLongMisses_.begin(),
                                     outstandingLongMisses_.end(),
                                     deadline),
                    deadline);
            }
        }
    } else if (inst.isStore() && !config_.options.idealDcache) {
        // Stores are write-buffered: access for cache state, but the
        // store completes immediately and never stalls retirement.
        hierarchy_.accessData(inst.effAddr);
    }
    lat += walk;

    t.issueCycle = now_;
    t.completeCycle = now_ + lat;
    t.issued = true;

    if (inst.isBranch() && mispredicted_[seq]) {
        // The window should be (nearly) empty of useful instructions
        // by now (Section 4.1's validation: ~1.3 on average).
        stats_.windowAtBranchIssue.add(
            static_cast<double>(windowCount_ - 1));
        branchResolveCycle_ = t.completeCycle;
        branchResolvePending_ = true;
    }

    wakeConsumers(seq);
}

bool
DetailedSimulator::doIssue()
{
    issuedNow_.clear();
    std::uint32_t issued = 0;
    const std::uint32_t per_cluster =
        config_.machine.width / config_.machine.clusters;
    std::fill(clusterIssued_.begin(), clusterIssued_.end(), 0);
    for (std::uint32_t seq = winNext_[winSentinel_];
         seq != winSentinel_; seq = winNext_[seq]) {
        if (issued >= config_.machine.width)
            break;
        const InstTiming &t = timing_[seq];
        if (clusterIssued_[t.cluster] >= per_cluster)
            continue;
        if (t.pendingProducers == 0 && t.readyAt <= now_ &&
            fuAvailable(trace_[seq].cls)) {
            occupyFu(trace_[seq].cls);
            issuedNow_.push_back(seq);
            ++clusterIssued_[t.cluster];
            ++issued;
        }
    }
    for (std::uint32_t seq : issuedNow_) {
        issueInst(seq);
        --clusterOccupancy_[timing_[seq].cluster];
        windowRemove(seq);
    }
    return !issuedNow_.empty();
}

bool
DetailedSimulator::doDispatch()
{
    const std::uint32_t per_cluster_window =
        config_.machine.windowSize / config_.machine.clusters;
    std::uint32_t dispatched = 0;
    while (dispatched < config_.machine.width && !pipe_.empty() &&
           pipe_.front().readyCycle <= now_ &&
           windowCount_ < config_.machine.windowSize &&
           rob_.size() < config_.machine.robSize) {
        // Round-robin cluster steering; head-of-line blocking when
        // the target cluster's partition is full.
        const std::uint8_t cluster = static_cast<std::uint8_t>(
            dispatchCount_ % config_.machine.clusters);
        if (clusterOccupancy_[cluster] >= per_cluster_window)
            break;
        const std::uint32_t seq = pipe_.front().seq;
        pipe_.pop_front();
        InstTiming &t = timing_[seq];
        t.cluster = cluster;
        ++clusterOccupancy_[cluster];
        ++dispatchCount_;
        windowPushBack(seq);

        // Readiness seed: producers that already issued contribute
        // their completion (plus any forwarding delay) now; for the
        // rest this entry joins the producer's waiter chain and is
        // finalized when the producer issues.
        t.readyAt = 0;
        t.pendingProducers = 0;
        const std::int32_t prods[2] = {t.prod1, t.prod2};
        for (int op = 0; op < 2; ++op) {
            const std::int32_t p = prods[op];
            if (p < 0)
                continue;
            const InstTiming &pt =
                timing_[static_cast<std::uint32_t>(p)];
            if (pt.issued) {
                Cycle available = pt.completeCycle;
                if (pt.cluster != t.cluster)
                    available += config_.machine.interClusterDelay;
                t.readyAt = std::max(t.readyAt, available);
            } else {
                const std::int32_t node =
                    static_cast<std::int32_t>(seq) * 2 + op;
                waiterNext_[node] = waiterHead_[p];
                waiterHead_[p] = node;
                ++t.pendingProducers;
            }
        }

        rob_.push_back(seq);
        ++dispatched;
    }
    return dispatched > 0;
}

bool
DetailedSimulator::doRetire()
{
    std::uint32_t retired = 0;
    while (retired < config_.machine.width && !rob_.empty()) {
        const std::uint32_t seq = rob_.front();
        const InstTiming &t = timing_[seq];
        if (!t.issued || t.completeCycle > now_)
            break;
        rob_.pop_front();
        ++stats_.retired;
        ++retired;
    }
    if (stats_.timelineBucketCycles > 0 && retired > 0) {
        const std::size_t bucket =
            now_ / stats_.timelineBucketCycles;
        if (stats_.timeline.size() <= bucket)
            stats_.timeline.resize(bucket + 1, 0);
        stats_.timeline[bucket] += retired;
    }
    return retired > 0;
}

bool
DetailedSimulator::fetchOne()
{
    const InstRecord &inst = trace_[fetchSeq_];

    if (!fetchRetryPending_ && !config_.options.idealIcache) {
        const AccessResult access = hierarchy_.fetchInst(inst.pc);
        if (access.isL1Miss()) {
            ++stats_.icacheL1Misses;
            if (access.isL2Miss())
                ++stats_.icacheL2Misses;
            if (longMissOutstanding())
                ++stats_.icacheMissesDuringLongMiss;
            // The line arrives after the access latency; the fetch of
            // this instruction then proceeds without re-probing.
            icacheStallUntil_ = now_ + access.latency;
            fetchRetryPending_ = true;
            return false;
        }
    }
    fetchRetryPending_ = false;

    pipe_.push_back({fetchSeq_, now_ + config_.machine.frontEndDepth});

    if (inst.isBranch()) {
        ++stats_.branches;
        const bool correct =
            predictor_->predictAndUpdate(inst.pc, inst.branchTaken);
        if (!correct) {
            ++stats_.mispredictions;
            mispredicted_[fetchSeq_] = true;
            if (longMissOutstanding())
                ++stats_.mispredictsDuringLongMiss;
            // Fetch of useful instructions stops until the branch
            // resolves (the paper's machine, Section 2).
            branchStall_ = true;
            ++fetchSeq_;
            return false;
        }
    }
    ++fetchSeq_;
    return true;
}

void
DetailedSimulator::doFetch()
{
    if (branchStall_ || now_ < icacheStallUntil_)
        return;
    const std::uint32_t bandwidth = config_.options.fetchBandwidth
        ? config_.options.fetchBandwidth
        : config_.machine.width;
    std::uint32_t fetched = 0;
    while (fetched < bandwidth && fetchSeq_ < trace_.size() &&
           pipe_.size() < pipeCapacity()) {
        if (!fetchOne())
            break;
        ++fetched;
    }
}

Cycle
DetailedSimulator::nextEventCycle() const
{
    constexpr Cycle noEvent = std::numeric_limits<Cycle>::max();
    Cycle next = noEvent;
    auto consider = [&](Cycle c) {
        if (c > now_ && c < next)
            next = c;
    };

    if (branchResolvePending_)
        consider(branchResolveCycle_);
    if (fetchRetryPending_)
        consider(icacheStallUntil_);
    if (!pipe_.empty())
        consider(pipe_.front().readyCycle);
    if (!rob_.empty() && timing_[rob_.front()].issued)
        consider(timing_[rob_.front()].completeCycle);
    if (!outstandingLongMisses_.empty())
        consider(outstandingLongMisses_.front());
    for (std::uint32_t seq = winNext_[winSentinel_];
         seq != winSentinel_; seq = winNext_[seq]) {
        const InstTiming &t = timing_[seq];
        if (t.pendingProducers == 0)
            consider(t.readyAt);
    }
    for (const FuPoolState &pool : fuState_) {
        for (Cycle busy : pool.busyUntil)
            consider(busy);
    }

    return next == noEvent ? now_ + 1 : next;
}

SimStats
DetailedSimulator::run()
{
    const std::uint64_t n = trace_.size();
    mispredicted_.assign(n, false);

    // Generous livelock guard: even a fully serialized machine with
    // memory latency on every instruction stays well below this.
    const Cycle bound =
        10000 + n * (config_.hierarchy.memLatency + 64);

    while (stats_.retired < n) {
        bool progress = reapLongMisses();
        if (branchResolvePending_ && branchResolveCycle_ <= now_) {
            branchResolvePending_ = false;
            branchStall_ = false;
            progress = true;
        }
        progress |= doRetire();
        progress |= doIssue();
        progress |= doDispatch();
        const std::uint32_t fetch_before = fetchSeq_;
        const std::size_t pipe_before = pipe_.size();
        const bool retry_before = fetchRetryPending_;
        doFetch();
        progress |= fetchSeq_ != fetch_before ||
                    pipe_.size() != pipe_before ||
                    fetchRetryPending_ != retry_before;

        if (progress) {
            ++now_;
        } else {
            // Dead cycle: the machine state is stationary until the
            // next recorded event time, so jump the clock there.
            now_ = std::max(now_ + 1, nextEventCycle());
        }
        fosm_assert(now_ < bound, "simulator failed to make progress");
    }
    stats_.cycles = now_;
    return stats_;
}

SimStats
simulateTrace(const Trace &trace, const SimConfig &config)
{
    SimConfig cfg = config;
    cfg.syncMissDelays();
    DetailedSimulator sim(trace, cfg);
    return sim.run();
}

} // namespace fosm
