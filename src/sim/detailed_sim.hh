/**
 * @file
 * Detailed cycle-level simulator of the paper's machine (Figure 3):
 * a front-end pipeline of depth DeltaP and width i feeding a single
 * homogeneous issue window with oldest-first out-of-order issue, a
 * separate reorder buffer, unbounded functional units, in-order
 * retirement of width i, real caches, and a real branch predictor.
 *
 * This is the validation reference: the paper's accuracy claims
 * (Figures 2, 9, 11, 14, 15) compare the analytical model against
 * exactly this kind of simulation. Being trace-driven, it does not
 * execute wrong-path instructions; per the paper's machine, fetch of
 * useful instructions stops at a mispredicted branch and resumes when
 * the branch resolves (the window being empty of useful instructions
 * by then), after which correct-path instructions take DeltaP cycles
 * to reach the window.
 *
 * Hot-path engineering (behaviour-preserving; pinned by the
 * golden-stats regression test):
 *  - The issue window is an intrusive doubly-linked list in age
 *    order, so issuing removes an entry in O(1) instead of
 *    erase(find(...)) over a deque.
 *  - Readiness is producer-driven: each window resident carries a
 *    count of unissued producers and a cached ready cycle. A
 *    consumer dispatching before its producer issued links itself
 *    into that producer's waiter chain and is woken (readiness
 *    finalized) when the producer issues, so the per-cycle issue
 *    scan does no pointer chasing.
 *  - Outstanding long-miss deadlines are kept sorted, making the
 *    per-cycle reap a prefix pop instead of a full scan.
 *  - Cycles where provably nothing can happen (long-miss stalls,
 *    drained front-ends) are skipped by advancing the clock straight
 *    to the next event time.
 */

#ifndef FOSM_SIM_DETAILED_SIM_HH
#define FOSM_SIM_DETAILED_SIM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/sim_config.hh"
#include "sim/sim_stats.hh"
#include "trace/trace.hh"

namespace fosm {

/**
 * One simulation run over one trace. Construct and call run().
 */
class DetailedSimulator
{
  public:
    DetailedSimulator(const Trace &trace, const SimConfig &config);

    /** Simulate to completion and return the statistics. */
    SimStats run();

  private:
    /** Per-instruction timing state, indexed by trace position. */
    struct InstTiming
    {
        Cycle issueCycle = 0;
        Cycle completeCycle = 0;
        /** Cycle the operands are (known to be) available; only
         *  meaningful while in the window with pendingProducers 0. */
        Cycle readyAt = 0;
        std::int32_t prod1 = -1;
        std::int32_t prod2 = -1;
        std::uint8_t cluster = 0;
        /** Producers not yet issued (counted per source operand). */
        std::uint8_t pendingProducers = 0;
        bool issued = false;
        bool longMiss = false;
    };

    /** An instruction travelling through the front-end pipe. */
    struct PipeEntry
    {
        std::uint32_t seq;
        Cycle readyCycle; ///< cycle it can dispatch into the window
    };

    const Trace &trace_;
    SimConfig config_;
    SimStats stats_;

    CacheHierarchy hierarchy_;
    std::unique_ptr<BranchPredictor> predictor_;
    std::unique_ptr<Tlb> dtlb_;

    std::vector<InstTiming> timing_;

    // Producer waiter chains: waiterHead_[p] is the first waiting
    // operand of an unissued producer p, encoded as consumer * 2 +
    // operand-index; waiterNext_[node] links the chain (-1 ends it).
    // Consumers enqueue at dispatch, producers wake the chain at
    // issue — built lazily, touching only real in-window waits.
    std::vector<std::int32_t> waiterHead_;
    std::vector<std::int32_t> waiterNext_;

    // Front-end state.
    std::uint32_t fetchSeq_ = 0;
    Cycle icacheStallUntil_ = 0;
    bool fetchRetryPending_ = false;
    bool branchStall_ = false;
    Cycle branchResolveCycle_ = 0;
    bool branchResolvePending_ = false;
    std::deque<PipeEntry> pipe_;

    /** Mispredicted flag per trace instruction, set at fetch. */
    std::vector<bool> mispredicted_;

    /** Scratch buffer of sequence numbers issued this cycle. */
    std::vector<std::uint32_t> issuedNow_;

    // Back-end state. The issue window is an intrusive doubly-linked
    // list over sequence numbers in dispatch (age) order; node
    // trace_.size() is the sentinel.
    std::vector<std::uint32_t> winNext_;
    std::vector<std::uint32_t> winPrev_;
    std::uint32_t winSentinel_ = 0;
    std::uint32_t windowCount_ = 0;
    std::deque<std::uint32_t> rob_;

    // Outstanding long-miss completion times, sorted ascending (for
    // isolation mode and the overlap counters).
    std::vector<Cycle> outstandingLongMisses_;

    /** Busy-until times of one functional-unit pool's members. */
    struct FuPoolState
    {
        std::vector<Cycle> busyUntil; ///< empty when unbounded
        bool pipelined = true;
    };

    /** Pool states: alu(+branch), mul, div, fp, mem. */
    std::array<FuPoolState, 5> fuState_;

    static std::size_t fuPoolIndex(InstClass cls);
    bool fuAvailable(InstClass cls) const;
    void occupyFu(InstClass cls);

    // Clustered-window state (future-work 3): per-cluster occupancy
    // and a running dispatch counter for round-robin steering.
    std::vector<std::uint32_t> clusterOccupancy_;
    std::uint64_t dispatchCount_ = 0;
    std::vector<std::uint32_t> clusterIssued_; ///< per-cycle scratch

    Cycle now_ = 0;

    // Pipeline phases, called once per cycle. Each returns whether it
    // changed any machine state this cycle (used to detect dead
    // cycles that the clock can skip).
    void doFetch();
    bool doDispatch();
    bool doIssue();
    bool doRetire();

    /** Fetch one instruction into the pipe; false if fetch must stop
     *  this cycle. */
    bool fetchOne();

    /** Issue instruction seq at the current cycle. */
    void issueInst(std::uint32_t seq);

    /** Wake consumers of a just-issued producer. */
    void wakeConsumers(std::uint32_t seq);

    bool longMissOutstanding() const;
    bool reapLongMisses();

    /** Precompute producer indices from the register dependences. */
    void resolveProducers();

    /** Window list helpers (O(1)). */
    void windowPushBack(std::uint32_t seq);
    void windowRemove(std::uint32_t seq);

    /** Earliest future cycle at which anything can happen, or
     *  now_ + 1 if none is known. Only called on dead cycles. */
    Cycle nextEventCycle() const;

    std::uint32_t pipeCapacity() const;
};

/** Convenience wrapper: build a simulator and run it. */
SimStats simulateTrace(const Trace &trace, const SimConfig &config);

} // namespace fosm

#endif // FOSM_SIM_DETAILED_SIM_HH
