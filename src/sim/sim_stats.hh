/**
 * @file
 * Output statistics of the detailed simulator, including the
 * validation measurements the paper quotes (useful instructions left
 * in the window when a mispredicted branch issues; instructions ahead
 * of a missing load in the ROB) and the overlap counters used by the
 * Figure 2 compensation experiment.
 */

#ifndef FOSM_SIM_SIM_STATS_HH
#define FOSM_SIM_SIM_STATS_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace fosm {

struct SimStats
{
    Cycle cycles = 0;
    std::uint64_t retired = 0;

    double ipc() const;
    double cpi() const;

    // Miss-event counts observed during the run.
    std::uint64_t branches = 0;
    std::uint64_t mispredictions = 0;
    std::uint64_t icacheL1Misses = 0;
    std::uint64_t icacheL2Misses = 0;
    std::uint64_t shortLoadMisses = 0;
    std::uint64_t longLoadMisses = 0;
    std::uint64_t dtlbLoadMisses = 0;
    std::uint64_t dtlbStoreMisses = 0;

    // Overlap counters (Figure 2 compensation): miss-events that
    // begin while at least one long data-cache miss is outstanding.
    std::uint64_t mispredictsDuringLongMiss = 0;
    std::uint64_t icacheMissesDuringLongMiss = 0;

    // Validation measurements (Sections 4.1 and 4.3).
    /** Useful window occupancy when a mispredicted branch issues. */
    RunningStats windowAtBranchIssue;
    /** ROB entries ahead of a long-missing load when it issues. */
    RunningStats robAheadOfMissedLoad;
    /** Window occupancy when long-miss data returns. */
    RunningStats windowAtMissReturn;

    /** Retired-instruction counts per timeline bucket (Figure 1). */
    std::vector<std::uint32_t> timeline;
    std::uint32_t timelineBucketCycles = 0;
};

inline double
SimStats::ipc() const
{
    return safeRatio(static_cast<double>(retired),
                     static_cast<double>(cycles));
}

inline double
SimStats::cpi() const
{
    return safeRatio(static_cast<double>(cycles),
                     static_cast<double>(retired));
}

} // namespace fosm

#endif // FOSM_SIM_SIM_STATS_HH
