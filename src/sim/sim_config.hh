/**
 * @file
 * Configuration of the detailed cycle-level simulator: the machine of
 * the paper's Figure 3 plus the idealization switches used by the
 * isolation experiments (Figure 2 and Sections 4.1-4.3).
 */

#ifndef FOSM_SIM_SIM_CONFIG_HH
#define FOSM_SIM_SIM_CONFIG_HH

#include <cstdint>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "cache/tlb.hh"
#include "model/fu_model.hh"
#include "model/machine_config.hh"
#include "trace/latency.hh"

namespace fosm {

/** Idealization switches for the paper's isolation experiments. */
struct SimOptions
{
    /** Oracle branch prediction: no mispredictions. */
    bool idealBranchPredictor = false;
    /** Perfect instruction cache: every fetch is an L1 hit. */
    bool idealIcache = false;
    /** Perfect data cache: every access is an L1 hit. */
    bool idealDcache = false;
    /**
     * Section 4.3 isolation experiment: while one long data cache
     * miss is in progress, any other would-be miss is turned into a
     * hit, so long misses are studied strictly in isolation.
     */
    bool isolateDcacheMisses = false;
    /**
     * Record a retired-IPC timeline with this many cycles per bucket
     * (0 disables; used for Figure 1).
     */
    std::uint32_t timelineBucketCycles = 0;

    /**
     * Instruction fetch buffer (Section 7 future-work 2): extra
     * instruction slots between the I-cache and the decode pipe.
     * With surplus fetch bandwidth the buffer runs ahead of dispatch
     * and hides part of an I-cache miss delay. 0 disables.
     */
    std::uint32_t fetchBufferEntries = 0;

    /**
     * Fetch bandwidth in instructions per cycle; 0 means the machine
     * width. Raising it above the width lets the fetch buffer fill
     * (a fetch unit delivering whole cache lines).
     */
    std::uint32_t fetchBandwidth = 0;
};

/** Full simulator configuration. */
struct SimConfig
{
    MachineConfig machine;
    HierarchyConfig hierarchy;
    PredictorKind predictor = PredictorKind::GShare;
    std::uint32_t predictorEntries = 8192;
    /**
     * When >= 0, use a synthetic predictor that mispredicts each
     * branch independently with this probability, overriding
     * `predictor` - the statistical-simulation technique of driving
     * the simulator with an injected misprediction rate.
     */
    double syntheticMispredictRate = -1.0;
    LatencyConfig latency;
    /**
     * Functional-unit pools (Section 7 future-work 1). Defaults to
     * the paper's unbounded units of every type.
     */
    FuPoolConfig fuPools;
    /** Data TLB (Section 7 future-work 4; disabled by default). */
    TlbConfig dtlb;
    SimOptions options;

    /**
     * Keep the model-facing miss delays in sync with the hierarchy
     * latencies (DeltaI = L2 hit latency, DeltaD = memory latency,
     * DeltaT = TLB walk latency).
     */
    void
    syncMissDelays()
    {
        machine.deltaI = hierarchy.l2Latency;
        machine.deltaD = hierarchy.memLatency;
        machine.deltaT = dtlb.walkLatency;
    }
};

} // namespace fosm

#endif // FOSM_SIM_SIM_CONFIG_HH
