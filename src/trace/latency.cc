#include "trace/latency.hh"

#include "common/logging.hh"

namespace fosm {

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::IntAlu: return "int_alu";
      case InstClass::IntMul: return "int_mul";
      case InstClass::IntDiv: return "int_div";
      case InstClass::FpAlu:  return "fp_alu";
      case InstClass::Load:   return "load";
      case InstClass::Store:  return "store";
      case InstClass::Branch: return "branch";
    }
    fosm_panic("unknown InstClass");
}

Cycle
LatencyConfig::latencyFor(InstClass cls) const
{
    switch (cls) {
      case InstClass::IntAlu: return intAlu;
      case InstClass::IntMul: return intMul;
      case InstClass::IntDiv: return intDiv;
      case InstClass::FpAlu:  return fpAlu;
      case InstClass::Load:   return loadHit;
      case InstClass::Store:  return store;
      case InstClass::Branch: return branch;
    }
    fosm_panic("unknown InstClass");
}

} // namespace fosm
