/**
 * @file
 * The dynamic instruction record that flows through every fosm
 * component. The first-order model consumes only functional-level
 * information (Section 1: "trace-derived data dependence information,
 * cache miss rates, and branch misprediction rates"), so a record
 * carries exactly that: operation class, register dependences, memory
 * address, and branch outcome.
 */

#ifndef FOSM_TRACE_INSTRUCTION_HH
#define FOSM_TRACE_INSTRUCTION_HH

#include <cstdint>

#include "common/types.hh"

namespace fosm {

/** Operation classes distinguished by the model's latency treatment. */
enum class InstClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer operation
    IntMul,   ///< integer multiply
    IntDiv,   ///< integer divide
    FpAlu,    ///< floating-point operation
    Load,     ///< memory load (D-cache access)
    Store,    ///< memory store (D-cache access, no dest register)
    Branch,   ///< conditional branch (direction predicted)
};

/** Number of operation classes; useful for mix tables. */
constexpr std::size_t numInstClasses = 7;

/** Short mnemonic used in printed mix tables. */
const char *instClassName(InstClass cls);

/**
 * Number of architectural registers in the synthetic ISA. Generously
 * sized so the trace generator can express long-range register
 * independence (producer distances of a couple hundred instructions),
 * which real programs achieve through memory and large live sets.
 */
constexpr int numArchRegs = 256;

/**
 * One dynamic instruction. Plain data; the trace holds millions of
 * these, so the layout is kept tight (32 bytes).
 */
struct InstRecord
{
    /** Instruction fetch address (byte address). */
    Addr pc = 0;

    /** Effective address for loads/stores; branch target for branches. */
    Addr effAddr = 0;

    /** Operation class. */
    InstClass cls = InstClass::IntAlu;

    /** True iff this is a taken branch. Meaningful only for branches. */
    bool branchTaken = false;

    /** Destination register, or invalidReg. */
    RegIndex dst = invalidReg;

    /** Source registers, or invalidReg when absent. */
    RegIndex src1 = invalidReg;
    RegIndex src2 = invalidReg;

    bool isLoad() const { return cls == InstClass::Load; }
    bool isStore() const { return cls == InstClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return cls == InstClass::Branch; }
};

static_assert(sizeof(InstRecord) <= 32,
              "InstRecord must stay compact; traces hold millions");

} // namespace fosm

#endif // FOSM_TRACE_INSTRUCTION_HH
