/**
 * @file
 * In-memory dynamic instruction trace. All fosm analyses —
 * miss-event profiling, IW characteristic measurement, and detailed
 * simulation — are trace-driven over this container (the paper's
 * "functional-level trace driven simulation").
 */

#ifndef FOSM_TRACE_TRACE_HH
#define FOSM_TRACE_TRACE_HH

#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace fosm {

/**
 * A named, immutable-after-construction sequence of dynamic
 * instructions.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /** Append an instruction during construction. */
    void append(const InstRecord &inst) { insts_.push_back(inst); }

    /** Pre-allocate storage for n instructions. */
    void reserve(std::size_t n) { insts_.reserve(n); }

    /** Number of dynamic instructions. */
    std::size_t size() const { return insts_.size(); }

    bool empty() const { return insts_.empty(); }

    /** Access by dynamic sequence number. */
    const InstRecord &operator[](std::size_t i) const { return insts_[i]; }

    /** Mutable access, for generator post-passes only. */
    InstRecord &at(std::size_t i) { return insts_[i]; }

    const std::string &name() const { return name_; }

    /** Range support. */
    auto begin() const { return insts_.begin(); }
    auto end() const { return insts_.end(); }

  private:
    std::string name_;
    std::vector<InstRecord> insts_;
};

/**
 * Serialize a trace to a compact binary file and load it back. Lets an
 * expensive synthetic trace be generated once and reused by multiple
 * harness processes.
 */
void saveTrace(const Trace &trace, const std::string &path);
Trace loadTrace(const std::string &path);

} // namespace fosm

#endif // FOSM_TRACE_TRACE_HH
