#include "trace/trace.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace fosm {

namespace {

constexpr char traceMagic[8] = {'F', 'O', 'S', 'M', 'T', 'R', 'C', '1'};

struct FileHeader
{
    char magic[8];
    std::uint64_t count;
    std::uint64_t nameLen;
};

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
saveTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fosm_fatal("cannot open trace file for writing: ", path);

    FileHeader hdr{};
    std::memcpy(hdr.magic, traceMagic, sizeof(traceMagic));
    hdr.count = trace.size();
    hdr.nameLen = trace.name().size();
    if (std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1)
        fosm_fatal("short write on trace header: ", path);
    if (hdr.nameLen &&
        std::fwrite(trace.name().data(), 1, hdr.nameLen, f.get()) !=
            hdr.nameLen) {
        fosm_fatal("short write on trace name: ", path);
    }
    for (const InstRecord &inst : trace) {
        if (std::fwrite(&inst, sizeof(inst), 1, f.get()) != 1)
            fosm_fatal("short write on trace body: ", path);
    }
}

namespace {

/** Sanity caps: a corrupt header must not drive a giant allocation. */
constexpr std::uint64_t maxTraceName = 4096;
constexpr std::uint64_t maxTraceInsts = std::uint64_t{1} << 33;

/** Is a stored register field valid (architectural or "none")? */
bool
validReg(RegIndex r)
{
    return r == invalidReg || (r >= 0 && r < numArchRegs);
}

} // namespace

Trace
loadTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fosm_fatal("cannot open trace file for reading: ", path);

    // The whole layout is knowable up front (header + name + count
    // fixed-size records), so validate the header against the actual
    // file size before trusting any of its fields: this catches
    // truncated files, trailing garbage, and corrupt count/nameLen
    // before they drive allocations or a long read loop.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        fosm_fatal("cannot seek in trace file: ", path);
    const long fileSizeL = std::ftell(f.get());
    if (fileSizeL < 0)
        fosm_fatal("cannot size trace file: ", path);
    const std::uint64_t fileSize =
        static_cast<std::uint64_t>(fileSizeL);
    std::rewind(f.get());

    FileHeader hdr{};
    if (fileSize < sizeof(hdr))
        fosm_fatal("truncated trace header in ", path, ": ", fileSize,
                   " bytes, need ", sizeof(hdr));
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1)
        fosm_fatal("short read on trace header: ", path);
    if (std::memcmp(hdr.magic, traceMagic, sizeof(traceMagic)) != 0)
        fosm_fatal("bad trace magic in ", path,
                   " (not a fosm trace, or unsupported version)");
    if (hdr.nameLen > maxTraceName)
        fosm_fatal("corrupt trace header in ", path, ": name length ",
                   hdr.nameLen, " exceeds ", maxTraceName);
    if (hdr.count > maxTraceInsts)
        fosm_fatal("corrupt trace header in ", path,
                   ": instruction count ", hdr.count, " exceeds ",
                   maxTraceInsts);
    const std::uint64_t expected =
        sizeof(hdr) + hdr.nameLen + hdr.count * sizeof(InstRecord);
    if (fileSize < expected)
        fosm_fatal("truncated trace file ", path, ": ", fileSize,
                   " bytes, header promises ", expected);
    if (fileSize > expected)
        fosm_fatal("oversized trace file ", path, ": ", fileSize,
                   " bytes, header promises ", expected,
                   " (trailing garbage?)");

    std::string name(hdr.nameLen, '\0');
    if (hdr.nameLen &&
        std::fread(name.data(), 1, hdr.nameLen, f.get()) != hdr.nameLen) {
        fosm_fatal("short read on trace name: ", path);
    }

    Trace trace(name);
    trace.reserve(hdr.count);
    for (std::uint64_t i = 0; i < hdr.count; ++i) {
        InstRecord inst;
        if (std::fread(&inst, sizeof(inst), 1, f.get()) != 1)
            fosm_fatal("short read on trace body: ", path);
        // Field-level validation: a flipped bit in an enum or
        // register index would otherwise surface as an out-of-bounds
        // index deep inside an analysis.
        if (static_cast<std::uint8_t>(inst.cls) >= numInstClasses)
            fosm_fatal("corrupt trace record ", i, " in ", path,
                       ": bad instruction class ",
                       static_cast<unsigned>(inst.cls));
        if (!validReg(inst.dst) || !validReg(inst.src1) ||
            !validReg(inst.src2)) {
            fosm_fatal("corrupt trace record ", i, " in ", path,
                       ": register index out of range");
        }
        trace.append(inst);
    }
    return trace;
}

} // namespace fosm
