#include "trace/trace.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace fosm {

namespace {

constexpr char traceMagic[8] = {'F', 'O', 'S', 'M', 'T', 'R', 'C', '1'};

struct FileHeader
{
    char magic[8];
    std::uint64_t count;
    std::uint64_t nameLen;
};

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
saveTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fosm_fatal("cannot open trace file for writing: ", path);

    FileHeader hdr{};
    std::memcpy(hdr.magic, traceMagic, sizeof(traceMagic));
    hdr.count = trace.size();
    hdr.nameLen = trace.name().size();
    if (std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1)
        fosm_fatal("short write on trace header: ", path);
    if (hdr.nameLen &&
        std::fwrite(trace.name().data(), 1, hdr.nameLen, f.get()) !=
            hdr.nameLen) {
        fosm_fatal("short write on trace name: ", path);
    }
    for (const InstRecord &inst : trace) {
        if (std::fwrite(&inst, sizeof(inst), 1, f.get()) != 1)
            fosm_fatal("short write on trace body: ", path);
    }
}

Trace
loadTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fosm_fatal("cannot open trace file for reading: ", path);

    FileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1)
        fosm_fatal("short read on trace header: ", path);
    if (std::memcmp(hdr.magic, traceMagic, sizeof(traceMagic)) != 0)
        fosm_fatal("bad trace magic in ", path);

    std::string name(hdr.nameLen, '\0');
    if (hdr.nameLen &&
        std::fread(name.data(), 1, hdr.nameLen, f.get()) != hdr.nameLen) {
        fosm_fatal("short read on trace name: ", path);
    }

    Trace trace(name);
    trace.reserve(hdr.count);
    for (std::uint64_t i = 0; i < hdr.count; ++i) {
        InstRecord inst;
        if (std::fread(&inst, sizeof(inst), 1, f.get()) != 1)
            fosm_fatal("short read on trace body: ", path);
        trace.append(inst);
    }
    return trace;
}

} // namespace fosm
