/**
 * @file
 * Functional-unit latency configuration. The paper's machine has an
 * unbounded number of functional units of each type (Section 1.1);
 * only their latencies matter, through the average-latency term L of
 * Little's law (Section 3) and through execution timing in the
 * detailed simulator.
 */

#ifndef FOSM_TRACE_LATENCY_HH
#define FOSM_TRACE_LATENCY_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "trace/instruction.hh"

namespace fosm {

/**
 * Per-class execution latencies in cycles. Loads use loadHit for an L1
 * hit; short misses (L1 miss, L2 hit) add the L2 latency and are
 * treated as long-latency functional-unit operations per Section 4.3.
 */
struct LatencyConfig
{
    Cycle intAlu = 1;
    Cycle intMul = 3;
    Cycle intDiv = 12;
    Cycle fpAlu = 4;
    /** L1 hit takes two cycles (address generation + access). */
    Cycle loadHit = 2;
    Cycle store = 1;
    Cycle branch = 1;

    /** Latency for the given class assuming a cache hit for loads. */
    Cycle latencyFor(InstClass cls) const;
};

} // namespace fosm

#endif // FOSM_TRACE_LATENCY_HH
