#include "trace/trace_stats.hh"

#include <unordered_set>
#include <vector>

#include "common/logging.hh"

namespace fosm {

double
TraceStats::classFraction(InstClass cls) const
{
    return safeRatio(
        static_cast<double>(classCount[static_cast<std::size_t>(cls)]),
        static_cast<double>(instructions));
}

double
TraceStats::branchFraction() const
{
    return classFraction(InstClass::Branch);
}

double
TraceStats::loadFraction() const
{
    return classFraction(InstClass::Load);
}

TraceStats
collectTraceStats(const Trace &trace, const LatencyConfig &lat)
{
    TraceStats stats;
    stats.instructions = trace.size();

    // Dynamic sequence number of the most recent writer of each
    // architectural register; -1 when the register is still "live-in".
    std::vector<std::int64_t> lastWriter(numArchRegs, -1);

    std::unordered_set<Addr> branchSites;
    std::uint64_t takenCount = 0;
    std::uint64_t branchCount = 0;
    std::uint64_t sourceCount = 0;
    double latencySum = 0.0;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const InstRecord &inst = trace[i];
        ++stats.classCount[static_cast<std::size_t>(inst.cls)];
        latencySum += static_cast<double>(lat.latencyFor(inst.cls));

        for (RegIndex src : {inst.src1, inst.src2}) {
            if (src == invalidReg)
                continue;
            ++sourceCount;
            const std::int64_t writer = lastWriter[src];
            if (writer >= 0) {
                stats.depDistance.add(
                    static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(i) - writer));
            }
        }
        if (inst.dst != invalidReg)
            lastWriter[inst.dst] = static_cast<std::int64_t>(i);

        if (inst.isBranch()) {
            branchSites.insert(inst.pc);
            ++branchCount;
            if (inst.branchTaken)
                ++takenCount;
        }
    }

    stats.avgBaseLatency =
        safeRatio(latencySum, static_cast<double>(stats.instructions));
    stats.avgSources =
        safeRatio(static_cast<double>(sourceCount),
                  static_cast<double>(stats.instructions));
    stats.staticBranches = branchSites.size();
    stats.takenFraction =
        safeRatio(static_cast<double>(takenCount),
                  static_cast<double>(branchCount));
    return stats;
}

} // namespace fosm
