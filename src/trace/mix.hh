/**
 * @file
 * Dynamic operation mix of an instruction stream - the statistic the
 * paper's future-work item 1 (limited functional units) consumes.
 */

#ifndef FOSM_TRACE_MIX_HH
#define FOSM_TRACE_MIX_HH

#include <array>

#include "trace/instruction.hh"

namespace fosm {

/** Per-class fractions of the dynamic instruction stream. */
struct InstMix
{
    std::array<double, numInstClasses> fraction{};

    double
    of(InstClass cls) const
    {
        return fraction[static_cast<std::size_t>(cls)];
    }

    double &
    at(InstClass cls)
    {
        return fraction[static_cast<std::size_t>(cls)];
    }
};

} // namespace fosm

#endif // FOSM_TRACE_MIX_HH
