/**
 * @file
 * Functional statistics of a dynamic instruction trace: operation mix,
 * register dependence distances, and the average functional-unit
 * latency L that enters Little's law in Section 3. Short D-cache
 * misses also contribute to L; that cache-aware refinement lives in
 * fosm::analysis, which layers the hierarchy on top of the base
 * latency computed here.
 */

#ifndef FOSM_TRACE_TRACE_STATS_HH
#define FOSM_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "trace/latency.hh"
#include "trace/trace.hh"

namespace fosm {

/** Aggregate functional statistics of one trace. */
struct TraceStats
{
    /** Total dynamic instructions. */
    std::uint64_t instructions = 0;

    /** Dynamic count per operation class. */
    std::array<std::uint64_t, numInstClasses> classCount{};

    /** Fraction of the dynamic stream in the given class. */
    double classFraction(InstClass cls) const;

    /** Fraction of instructions that are conditional branches. */
    double branchFraction() const;

    /** Fraction of instructions that are loads. */
    double loadFraction() const;

    /**
     * Average functional-unit latency assuming all loads hit in the L1
     * D-cache. The cache-aware average (including short-miss latency)
     * is produced by the MissProfiler.
     */
    double avgBaseLatency = 0.0;

    /**
     * Histogram of producer->consumer distances in dynamic
     * instructions, over register dependences (nearest producer per
     * source operand).
     */
    Histogram depDistance{512};

    /** Mean number of register source operands per instruction. */
    double avgSources = 0.0;

    /** Number of distinct static branch sites observed. */
    std::uint64_t staticBranches = 0;

    /** Fraction of executed branches that were taken. */
    double takenFraction = 0.0;
};

/** Collect TraceStats in one pass over the trace. */
TraceStats collectTraceStats(const Trace &trace,
                             const LatencyConfig &lat = LatencyConfig{});

} // namespace fosm

#endif // FOSM_TRACE_TRACE_STATS_HH
