/**
 * @file
 * Deterministic single- and multi-objective selection over evaluated
 * design points.
 *
 * Every objective is normalized to a minimization score (maximize
 * objectives are negated), so a point dominates another when it is
 * <= on every score and < on at least one. The frontier is the set
 * of non-dominated points; ties between bitwise-identical score
 * vectors are broken by enumeration ordinal (first point wins), so
 * the result is a pure function of (scores, order) with no
 * dependence on thread count or comparison instability.
 */

#ifndef FOSM_OPT_PARETO_HH
#define FOSM_OPT_PARETO_HH

#include <cstddef>
#include <vector>

namespace fosm::opt {

/**
 * Indices (into the candidate array) of the Pareto-optimal points
 * under minimization of every score column, ascending by index.
 *
 * `scores` is row-major: point i's vector is
 * scores[i*nObjectives .. (i+1)*nObjectives). Among points with
 * bitwise-equal score vectors only the lowest index survives — equal
 * vectors never "mutually dominate" each other into the frontier
 * twice.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<double> &scores,
               std::size_t nObjectives);

/**
 * Index of the single best point under score column 0 (ties broken
 * by lowest index). Candidates must be non-empty.
 */
std::size_t argminFirstObjective(const std::vector<double> &scores,
                                 std::size_t nObjectives);

} // namespace fosm::opt

#endif // FOSM_OPT_PARETO_HH
