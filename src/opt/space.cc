#include "opt/space.hh"

#include <limits>

namespace fosm::opt {

namespace {

/**
 * Member accessors in canonical order. The order is load-bearing: it
 * fixes the odometer digit order for any spec, so the same axes
 * always enumerate in the same sequence regardless of the order the
 * request listed them in.
 */
struct Member
{
    const char *name;
    std::uint64_t (*get)(const MachineConfig &);
    void (*set)(MachineConfig &, std::uint64_t);
};

constexpr Member kMembers[] = {
    {"width", [](const MachineConfig &m) -> std::uint64_t { return m.width; },
     [](MachineConfig &m, std::uint64_t v) {
         m.width = static_cast<std::uint32_t>(v);
     }},
    {"frontEndDepth",
     [](const MachineConfig &m) -> std::uint64_t {
         return m.frontEndDepth;
     },
     [](MachineConfig &m, std::uint64_t v) {
         m.frontEndDepth = static_cast<std::uint32_t>(v);
     }},
    {"windowSize",
     [](const MachineConfig &m) -> std::uint64_t {
         return m.windowSize;
     },
     [](MachineConfig &m, std::uint64_t v) {
         m.windowSize = static_cast<std::uint32_t>(v);
     }},
    {"robSize",
     [](const MachineConfig &m) -> std::uint64_t { return m.robSize; },
     [](MachineConfig &m, std::uint64_t v) {
         m.robSize = static_cast<std::uint32_t>(v);
     }},
    {"deltaI",
     [](const MachineConfig &m) -> std::uint64_t { return m.deltaI; },
     [](MachineConfig &m, std::uint64_t v) { m.deltaI = v; }},
    {"deltaD",
     [](const MachineConfig &m) -> std::uint64_t { return m.deltaD; },
     [](MachineConfig &m, std::uint64_t v) { m.deltaD = v; }},
    {"deltaT",
     [](const MachineConfig &m) -> std::uint64_t { return m.deltaT; },
     [](MachineConfig &m, std::uint64_t v) { m.deltaT = v; }},
    {"clusters",
     [](const MachineConfig &m) -> std::uint64_t {
         return m.clusters;
     },
     [](MachineConfig &m, std::uint64_t v) {
         m.clusters = static_cast<std::uint32_t>(v);
     }},
    {"interClusterDelay",
     [](const MachineConfig &m) -> std::uint64_t {
         return m.interClusterDelay;
     },
     [](MachineConfig &m, std::uint64_t v) {
         m.interClusterDelay = v;
     }},
};

constexpr std::size_t kMemberCount =
    sizeof(kMembers) / sizeof(kMembers[0]);

/** depth/window/rob shorthands, resolved after the canonical names. */
constexpr struct
{
    const char *alias;
    const char *target;
} kAliases[] = {
    {"depth", "frontEndDepth"},
    {"window", "windowSize"},
    {"rob", "robSize"},
};

} // namespace

const std::vector<std::string> &
machineMemberNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &m : kMembers)
            v.emplace_back(m.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
machineVariableNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v = machineMemberNames();
        for (const auto &a : kAliases)
            v.emplace_back(a.alias);
        return v;
    }();
    return names;
}

std::string
canonicalMemberName(const std::string &name)
{
    for (const auto &m : kMembers)
        if (name == m.name)
            return m.name;
    for (const auto &a : kAliases)
        if (name == a.alias)
            return a.target;
    return {};
}

bool
setMachineMember(MachineConfig &machine, const std::string &name,
                 std::uint64_t value)
{
    for (const auto &m : kMembers) {
        if (name == m.name) {
            m.set(machine, value);
            return true;
        }
    }
    for (const auto &a : kAliases)
        if (name == a.alias)
            return setMachineMember(machine, a.target, value);
    return false;
}

std::uint64_t
machineMember(const MachineConfig &machine, const std::string &name)
{
    for (const auto &m : kMembers)
        if (name == m.name)
            return m.get(machine);
    for (const auto &a : kAliases)
        if (name == a.alias)
            return machineMember(machine, a.target);
    return 0;
}

std::uint64_t
SpaceSpec::cardinality() const
{
    std::uint64_t product = 1;
    for (const auto &axis : axes) {
        const auto n = static_cast<std::uint64_t>(axis.values.size());
        if (n == 0)
            return 0;
        if (product >
            std::numeric_limits<std::uint64_t>::max() / n)
            return std::numeric_limits<std::uint64_t>::max();
        product *= n;
    }
    return product;
}

EnumeratedSpace
enumerate(const SpaceSpec &spec)
{
    EnumeratedSpace out;
    const std::uint64_t total = spec.cardinality();
    if (total == 0)
        return out;

    // The constraint sees machine members + aliases, in the same
    // order machineVariableNames() lists them.
    std::vector<double> vars(kMemberCount + 3, 0.0);
    const auto bindVars = [&](const MachineConfig &m) {
        for (std::size_t i = 0; i < kMemberCount; ++i)
            vars[i] = static_cast<double>(kMembers[i].get(m));
        vars[kMemberCount + 0] = static_cast<double>(m.frontEndDepth);
        vars[kMemberCount + 1] = static_cast<double>(m.windowSize);
        vars[kMemberCount + 2] = static_cast<double>(m.robSize);
    };

    std::vector<std::size_t> odometer(spec.axes.size(), 0);
    for (std::uint64_t ordinal = 0; ordinal < total; ++ordinal) {
        MachineConfig machine = spec.baseline;
        for (std::size_t a = 0; a < spec.axes.size(); ++a)
            setMachineMember(machine, spec.axes[a].name,
                             spec.axes[a].values[odometer[a]]);

        bool feasible = machine.clusters != 0 &&
                        machine.width % machine.clusters == 0 &&
                        machine.windowSize % machine.clusters == 0;
        if (feasible && !spec.constraint.empty()) {
            bindVars(machine);
            feasible = spec.constraint.eval(vars) != 0.0;
        }
        if (feasible)
            out.machines.push_back(machine);
        else
            ++out.infeasible;

        // Advance, last axis fastest.
        for (std::size_t a = spec.axes.size(); a-- > 0;) {
            if (++odometer[a] < spec.axes[a].values.size())
                break;
            odometer[a] = 0;
        }
    }
    return out;
}

} // namespace fosm::opt
