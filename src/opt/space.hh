/**
 * @file
 * Declarative design spaces: a set of machine-parameter axes, each a
 * finite value list, whose cross product (filtered by an optional
 * constraint expression) is the candidate set an optimization sweeps.
 *
 * The cardinality of the *unfiltered* product is computed before
 * anything is materialized, so a caller can reject absurd requests
 * (HTTP 413) without allocating gigabytes. Enumeration is a plain
 * odometer — the last axis spins fastest — giving every point a
 * stable ordinal that the Pareto tie-breaking and the planner's
 * batching both key off. Same spec, same order, always.
 */

#ifndef FOSM_OPT_SPACE_HH
#define FOSM_OPT_SPACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/machine_config.hh"
#include "opt/expr.hh"

namespace fosm::opt {

/** One swept machine parameter and the values it takes. */
struct AxisSpec
{
    /** Canonical MachineConfig member name (e.g. "windowSize"). */
    std::string name;

    /** Values in sweep order, as given by the caller. */
    std::vector<std::uint64_t> values;
};

/** Names of the sweepable MachineConfig members, canonical order. */
const std::vector<std::string> &machineMemberNames();

/** Aliases accepted in constraint text (depth, window, rob). */
const std::vector<std::string> &machineVariableNames();

/**
 * Resolve a member name or alias to the canonical member name;
 * empty string for an unknown name.
 */
std::string canonicalMemberName(const std::string &name);

/**
 * Apply one member by canonical name. Returns false for an unknown
 * name (the request parser rejects those earlier).
 */
bool setMachineMember(MachineConfig &machine, const std::string &name,
                      std::uint64_t value);

/** Read one member by canonical name (0 for unknown). */
std::uint64_t machineMember(const MachineConfig &machine,
                            const std::string &name);

/** A design space: axes over a baseline machine + a constraint. */
struct SpaceSpec
{
    /** Baseline for members no axis sweeps. */
    MachineConfig baseline;

    /** Axes in canonical member order (the odometer digit order). */
    std::vector<AxisSpec> axes;

    /**
     * Optional feasibility predicate over the machine-variable
     * names; empty() means "every point is feasible".
     */
    Expr constraint;

    /**
     * Unfiltered cross-product size, saturating at u64 max on
     * overflow; 1 for a space with no axes (the baseline alone).
     */
    std::uint64_t cardinality() const;
};

/** The feasible subset of a space, fully materialized. */
struct EnumeratedSpace
{
    /** Feasible machines, odometer order. */
    std::vector<MachineConfig> machines;

    /** Points the constraint (or cluster divisibility) rejected. */
    std::uint64_t infeasible = 0;
};

/**
 * Expand the cross product, dropping points that fail the constraint
 * or the width/windowSize cluster-divisibility rule every other
 * endpoint enforces. Caller must bound cardinality() first;
 * enumerate() trusts it fits in memory.
 */
EnumeratedSpace enumerate(const SpaceSpec &spec);

} // namespace fosm::opt

#endif // FOSM_OPT_SPACE_HH
