/**
 * @file
 * Tiny arithmetic/boolean expression language for design-space
 * constraints and optimization objectives:
 *
 *   depth <= 20 && width * windowSize <= 1024
 *   cpi + 0.001 * windowSize
 *
 * Expressions are parsed once into a flat postfix program and then
 * evaluated per design point against a caller-supplied variable
 * table, so a 100k-point sweep pays the parse exactly once.
 * Evaluation is plain double arithmetic in a fixed order — the same
 * expression over the same inputs yields the same bits on every run
 * and thread count, which the optimizer's determinism contract
 * (frontier bit-identical across -j1/-jN) leans on.
 *
 * Grammar (C-like precedence, all left-associative):
 *
 *   or     := and ('||' and)*
 *   and    := cmp ('&&' cmp)*
 *   cmp    := sum (('<='|'<'|'>='|'>'|'=='|'!=') sum)?
 *   sum    := term (('+'|'-') term)*
 *   term   := unary (('*'|'/'|'%') unary)*
 *   unary  := ('!'|'-') unary | primary
 *   primary:= number | identifier | '(' or ')'
 *
 * Booleans are doubles: comparisons yield 1.0/0.0 and '&&'/'||'/'!'
 * treat any non-zero as true. '/' and '%' by zero yield 0.0 (a
 * constraint that divides by zero rejects nothing rather than
 * crashing the sweep); '%' is fmod.
 */

#ifndef FOSM_OPT_EXPR_HH
#define FOSM_OPT_EXPR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fosm::opt {

/** Resolves an identifier to its value for one evaluation. */
using VarLookup = std::function<double(const std::string &)>;

/** A parsed expression; cheap to copy, reusable across points. */
class Expr
{
  public:
    /**
     * Parse text against a fixed set of known identifiers. Returns
     * false and a diagnostic (with byte offset) on syntax errors or
     * unknown identifiers — rejecting typos at parse time keeps a
     * misspelled parameter from silently evaluating as 0 across a
     * whole sweep.
     */
    static bool parse(const std::string &text,
                      const std::vector<std::string> &variables,
                      Expr &out, std::string *error);

    /**
     * Evaluate against the variable values, in the same order as the
     * `variables` vector given to parse(). values.size() must match.
     */
    double eval(const std::vector<double> &values) const;

    /** Identifiers the expression actually references (parse order,
     *  deduplicated) — lets a caller validate that an objective only
     *  uses result columns, say. */
    const std::vector<std::uint32_t> &referenced() const
    {
        return referenced_;
    }

    bool empty() const { return ops_.empty(); }

    /** The original text (for echoing in responses). */
    const std::string &text() const { return text_; }

  private:
    enum class Op : std::uint8_t
    {
        PushConst,
        PushVar,
        Neg,
        Not,
        Add,
        Sub,
        Mul,
        Div,
        Mod,
        Lt,
        Le,
        Gt,
        Ge,
        Eq,
        Ne,
        And,
        Or,
    };

    struct Step
    {
        Op op;
        /** PushConst: constant slot; PushVar: variable index. */
        std::uint32_t arg = 0;
    };

    friend class ExprParser;

    std::string text_;
    std::vector<Step> ops_;
    std::vector<double> consts_;
    std::vector<std::uint32_t> referenced_;
};

} // namespace fosm::opt

#endif // FOSM_OPT_EXPR_HH
