#include "opt/pareto.hh"

#include <algorithm>

namespace fosm::opt {

namespace {

/** a dominates b: <= everywhere, < somewhere. */
bool
dominates(const double *a, const double *b, std::size_t n)
{
    bool strict = false;
    for (std::size_t k = 0; k < n; ++k) {
        if (a[k] > b[k])
            return false;
        if (a[k] < b[k])
            strict = true;
    }
    return strict;
}

} // namespace

std::vector<std::size_t>
paretoFrontier(const std::vector<double> &scores,
               std::size_t nObjectives)
{
    if (nObjectives == 0)
        return {};
    const std::size_t n = scores.size() / nObjectives;
    if (n == 0)
        return {};

    // Sort lexicographically by score vector, index as final key.
    // Any dominator of a point precedes it in this order (the first
    // differing column is strictly smaller), so scanning in order and
    // testing each candidate only against frontier members already
    // accepted is O(n log n + n * |frontier|) and exact.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const double *pa = &scores[a * nObjectives];
                  const double *pb = &scores[b * nObjectives];
                  for (std::size_t k = 0; k < nObjectives; ++k) {
                      if (pa[k] < pb[k])
                          return true;
                      if (pa[k] > pb[k])
                          return false;
                  }
                  return a < b;
              });

    std::vector<std::size_t> frontier;
    for (const std::size_t i : order) {
        const double *p = &scores[i * nObjectives];
        bool dominated = false;
        for (const std::size_t f : frontier) {
            const double *q = &scores[f * nObjectives];
            // A bitwise-equal vector already on the frontier also
            // eliminates this one: lexicographic order put the lower
            // index first, so "first point wins" holds.
            if (dominates(q, p, nObjectives) ||
                std::equal(q, q + nObjectives, p)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end());
    return frontier;
}

std::size_t
argminFirstObjective(const std::vector<double> &scores,
                     std::size_t nObjectives)
{
    const std::size_t n =
        nObjectives ? scores.size() / nObjectives : 0;
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
        if (scores[i * nObjectives] < scores[best * nObjectives])
            best = i;
    return best;
}

} // namespace fosm::opt
