#include "opt/planner.hh"

#include <algorithm>
#include <unordered_set>

namespace fosm::opt {

SweepPlan
planSweep(std::size_t points,
          const std::function<bool(std::size_t)> &probe,
          const std::function<std::uint64_t(std::size_t)> &charKey,
          std::size_t batchRows)
{
    SweepPlan plan;
    plan.stats.points = points;

    std::unordered_set<std::uint64_t> seenKeys;
    for (std::size_t i = 0; i < points; ++i) {
        if (probe && probe(i)) {
            plan.cached.push_back(i);
            continue;
        }
        plan.misses.push_back(i);
        if (charKey) {
            const std::uint64_t key = charKey(i);
            if (seenKeys.insert(key).second)
                plan.characterizationKeys.push_back(key);
        }
    }

    const std::size_t rows =
        batchRows ? batchRows : (plan.misses.empty()
                                     ? 1
                                     : plan.misses.size());
    for (std::size_t at = 0; at < plan.misses.size(); at += rows) {
        const std::size_t n =
            std::min(rows, plan.misses.size() - at);
        plan.batches.emplace_back(plan.misses.begin() + at,
                                  plan.misses.begin() + at + n);
    }

    plan.stats.cacheHits = plan.cached.size();
    plan.stats.scheduled = plan.misses.size();
    plan.stats.characterizations = plan.characterizationKeys.size();
    plan.stats.batches = plan.batches.size();
    return plan;
}

} // namespace fosm::opt
