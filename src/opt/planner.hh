/**
 * @file
 * Sweep planner: turns "evaluate these N design points" into the
 * minimum actual work by (1) probing a caller-supplied cache for
 * every point *before* anything is scheduled, (2) collapsing the
 * survivors onto their distinct characterization keys (for this
 * model, the issue-width fit depends only on (workload, width), so a
 * 10k-point sweep over window/depth/cache axes needs exactly one
 * fit), and (3) chunking the misses into batches sized for the SoA
 * kernels.
 *
 * The planner is deliberately dumb about *what* the computations are
 * — probes and characterization keys are caller lambdas — so the
 * /v1/optimize endpoint and the /v1/trends rows share it without
 * src/opt depending on the server or store layers.
 */

#ifndef FOSM_OPT_PLANNER_HH
#define FOSM_OPT_PLANNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace fosm::opt {

/** Work accounting for one planned sweep, reported to callers and
 *  surfaced as fosm_opt_* metrics. */
struct PlanStats
{
    /** Points the caller asked for. */
    std::uint64_t points = 0;

    /** Points answered by the probe — deduped, never scheduled. */
    std::uint64_t cacheHits = 0;

    /** Points actually scheduled for evaluation. */
    std::uint64_t scheduled = 0;

    /** Distinct characterization keys across scheduled points. */
    std::uint64_t characterizations = 0;

    /** Evaluation batches the misses were chunked into. */
    std::uint64_t batches = 0;
};

/** A planned sweep over points the caller addresses by index. */
struct SweepPlan
{
    /** Indices the probe answered. */
    std::vector<std::size_t> cached;

    /** Indices that must be evaluated, in input order. */
    std::vector<std::size_t> misses;

    /** `misses` chunked into contiguous batches. */
    std::vector<std::vector<std::size_t>> batches;

    /** Distinct characterization keys over `misses`, first-seen
     *  order (e.g. distinct widths needing an IW fit). */
    std::vector<std::uint64_t> characterizationKeys;

    PlanStats stats;
};

/**
 * Plan a sweep of `points` items.
 *
 * `probe(i)` returns true when point i is already answered (and may
 * side-effect the answer into the caller's result slot). `charKey(i)`
 * maps a point to its characterization equivalence class; pass
 * nullptr when the sweep has no characterization stage to dedupe.
 * `batchRows` bounds the size of each evaluation batch (0 = one
 * batch for everything).
 */
SweepPlan planSweep(std::size_t points,
                    const std::function<bool(std::size_t)> &probe,
                    const std::function<std::uint64_t(std::size_t)>
                        &charKey,
                    std::size_t batchRows);

} // namespace fosm::opt

#endif // FOSM_OPT_PLANNER_HH
