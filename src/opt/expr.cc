#include "opt/expr.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace fosm::opt {

/**
 * Recursive-descent parser emitting postfix Steps straight into the
 * Expr under construction. One instance per parse() call; no state
 * survives it.
 */
class ExprParser
{
  public:
    ExprParser(const std::string &text,
               const std::vector<std::string> &variables, Expr &out)
        : text_(text), variables_(variables), out_(out)
    {
    }

    bool run(std::string *error)
    {
        if (!parseOr()) {
            if (error)
                *error = error_;
            return false;
        }
        skipSpace();
        if (pos_ != text_.size()) {
            if (error)
                *error = "unexpected trailing input at offset " +
                         std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    using Op = Expr::Op;

    void emit(Op op, std::uint32_t arg = 0)
    {
        out_.ops_.push_back({op, arg});
    }

    bool fail(const std::string &message)
    {
        error_ = message + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    /** Consume the literal token if it is next (after whitespace). */
    bool accept(const char *token)
    {
        skipSpace();
        std::size_t n = 0;
        while (token[n])
            ++n;
        if (text_.compare(pos_, n, token) != 0)
            return false;
        // Don't let '<' swallow the front of '<=' — callers must try
        // the longer token first, which the cmp parser does.
        pos_ += n;
        return true;
    }

    bool parseOr()
    {
        if (!parseAnd())
            return false;
        while (true) {
            skipSpace();
            if (text_.compare(pos_, 2, "||") != 0)
                return true;
            pos_ += 2;
            if (!parseAnd())
                return false;
            emit(Op::Or);
        }
    }

    bool parseAnd()
    {
        if (!parseCmp())
            return false;
        while (true) {
            skipSpace();
            if (text_.compare(pos_, 2, "&&") != 0)
                return true;
            pos_ += 2;
            if (!parseCmp())
                return false;
            emit(Op::And);
        }
    }

    bool parseCmp()
    {
        if (!parseSum())
            return false;
        skipSpace();
        Op op;
        if (accept("<="))
            op = Op::Le;
        else if (accept(">="))
            op = Op::Ge;
        else if (accept("=="))
            op = Op::Eq;
        else if (accept("!="))
            op = Op::Ne;
        else if (pos_ < text_.size() && text_[pos_] == '<') {
            ++pos_;
            op = Op::Lt;
        } else if (pos_ < text_.size() && text_[pos_] == '>') {
            ++pos_;
            op = Op::Gt;
        } else
            return true;
        if (!parseSum())
            return false;
        emit(op);
        return true;
    }

    bool parseSum()
    {
        if (!parseTerm())
            return false;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size())
                return true;
            const char c = text_[pos_];
            if (c != '+' && c != '-')
                return true;
            ++pos_;
            if (!parseTerm())
                return false;
            emit(c == '+' ? Op::Add : Op::Sub);
        }
    }

    bool parseTerm()
    {
        if (!parseUnary())
            return false;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size())
                return true;
            const char c = text_[pos_];
            if (c != '*' && c != '/' && c != '%')
                return true;
            ++pos_;
            if (!parseUnary())
                return false;
            emit(c == '*'   ? Op::Mul
                 : c == '/' ? Op::Div
                            : Op::Mod);
        }
    }

    bool parseUnary()
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '!' &&
            // '!' alone, not the '!=' operator mid-expression.
            (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '=')) {
            ++pos_;
            if (!parseUnary())
                return false;
            emit(Op::Not);
            return true;
        }
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
            if (!parseUnary())
                return false;
            emit(Op::Neg);
            return true;
        }
        return parsePrimary();
    }

    bool parsePrimary()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("expected value");
        const char c = text_[pos_];
        if (c == '(') {
            ++pos_;
            if (!parseOr())
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ')')
                return fail("expected ')'");
            ++pos_;
            return true;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.')
            return parseNumber();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return parseIdentifier();
        return fail(std::string("unexpected character '") + c + "'");
    }

    bool parseNumber()
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin)
            return fail("bad number");
        pos_ += static_cast<std::size_t>(end - begin);
        out_.consts_.push_back(v);
        emit(Op::PushConst,
             static_cast<std::uint32_t>(out_.consts_.size() - 1));
        return true;
    }

    bool parseIdentifier()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_'))
            ++pos_;
        const std::string name =
            text_.substr(start, pos_ - start);
        for (std::size_t i = 0; i < variables_.size(); ++i) {
            if (variables_[i] != name)
                continue;
            const auto idx = static_cast<std::uint32_t>(i);
            emit(Op::PushVar, idx);
            bool seen = false;
            for (const auto r : out_.referenced_)
                seen = seen || r == idx;
            if (!seen)
                out_.referenced_.push_back(idx);
            return true;
        }
        pos_ = start;
        return fail("unknown identifier '" + name + "'");
    }

    const std::string &text_;
    const std::vector<std::string> &variables_;
    Expr &out_;
    std::size_t pos_ = 0;
    std::string error_;
};

bool
Expr::parse(const std::string &text,
            const std::vector<std::string> &variables, Expr &out,
            std::string *error)
{
    out = Expr();
    out.text_ = text;
    ExprParser parser(text, variables, out);
    if (parser.run(error)) {
        return true;
    }
    out = Expr();
    return false;
}

double
Expr::eval(const std::vector<double> &values) const
{
    // Expressions are small; a fixed stack avoids an allocation per
    // point. Depth is bounded by expression length, which params
    // caps well below this.
    double stack[64];
    std::size_t top = 0;
    const auto pop = [&]() -> double { return stack[--top]; };
    const auto push = [&](double v) {
        if (top < 64)
            stack[top++] = v;
    };

    for (const auto &step : ops_) {
        switch (step.op) {
        case Op::PushConst:
            push(consts_[step.arg]);
            break;
        case Op::PushVar:
            push(values[step.arg]);
            break;
        case Op::Neg:
            stack[top - 1] = -stack[top - 1];
            break;
        case Op::Not:
            stack[top - 1] = stack[top - 1] == 0.0 ? 1.0 : 0.0;
            break;
        default: {
            const double b = pop();
            const double a = stack[top - 1];
            double r = 0.0;
            switch (step.op) {
            case Op::Add:
                r = a + b;
                break;
            case Op::Sub:
                r = a - b;
                break;
            case Op::Mul:
                r = a * b;
                break;
            case Op::Div:
                r = b == 0.0 ? 0.0 : a / b;
                break;
            case Op::Mod:
                r = b == 0.0 ? 0.0 : std::fmod(a, b);
                break;
            case Op::Lt:
                r = a < b ? 1.0 : 0.0;
                break;
            case Op::Le:
                r = a <= b ? 1.0 : 0.0;
                break;
            case Op::Gt:
                r = a > b ? 1.0 : 0.0;
                break;
            case Op::Ge:
                r = a >= b ? 1.0 : 0.0;
                break;
            case Op::Eq:
                r = a == b ? 1.0 : 0.0;
                break;
            case Op::Ne:
                r = a != b ? 1.0 : 0.0;
                break;
            case Op::And:
                r = a != 0.0 && b != 0.0 ? 1.0 : 0.0;
                break;
            case Op::Or:
                r = a != 0.0 || b != 0.0 ? 1.0 : 0.0;
                break;
            default:
                break;
            }
            stack[top - 1] = r;
        }
        }
    }
    return top ? stack[top - 1] : 0.0;
}

} // namespace fosm::opt
