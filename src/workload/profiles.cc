/**
 * @file
 * The 12 SPECint2000-like workload profiles. Each is tuned toward the
 * qualitative characteristics the paper reports for that benchmark:
 * Table 1 power-law parameters and average latencies (gzip, vortex,
 * vpr); Figure 11's set of benchmarks with visible instruction-cache
 * misses (crafty, eon, gap, parser, perl, twolf, vortex); and Figure
 * 16's CPI stacks (mcf and twolf dominated by long D-cache misses,
 * gzip dominated by branch mispredictions, vortex with very accurate
 * prediction). Exact absolute numbers necessarily differ from the
 * authors' traces; DESIGN.md Section 2 documents the substitution.
 */

#include "workload/profile.hh"

#include "common/logging.hh"

namespace fosm {

namespace {

/**
 * Start from a middle-of-the-road integer profile: modest working
 * sets, rare long misses, mostly predictable branches.
 */
Profile
baseProfile(const std::string &name, std::uint64_t seed)
{
    Profile p;
    p.name = name;
    p.seed = seed;
    p.data.hotFrac = 0.90;
    p.data.warmFrac = 0.06;
    p.data.warmBytes = 24 * 1024;
    p.data.coldFrac = 0.002;
    p.data.strideFrac = 0.02;
    p.data.strideBytes = 64 * 1024;
    p.data.strideStep = 4;
    p.data.burstEnterProb = 0.0004;
    p.data.burstExitProb = 0.08;
    p.data.burstColdFrac = 0.25;
    return p;
}

std::vector<Profile>
buildProfiles()
{
    std::vector<Profile> out;

    // bzip2: compression; regular loops, data-dependent branches on
    // byte values, moderate working set, negligible I-cache misses.
    {
        Profile p = baseProfile("bzip", 0xB21);
        p.dep.meanShortDistance = 2.6;
        p.dep.meanLongDistance = 64.0;
        p.dep.longFrac = 0.34;
        p.dep.twoSourceFrac = 0.40;
        p.mix.load = 0.24;
        p.mix.store = 0.10;
        p.mix.branch = 0.16;
        p.mix.mul = 0.02;
        p.branch.biasedFrac = 0.50;
        p.branch.loopFrac = 0.35;
        p.branch.randomEntropy = 0.16;
        p.code.footprintBytes = 8 * 1024;
        p.code.blockZipf = 1.3;
        p.data.warmFrac = 0.035;
        p.data.coldFrac = 0.002;
        out.push_back(p);
    }

    // crafty: chess; large code, bitboard ALU work, good ILP, low
    // data misses.
    {
        Profile p = baseProfile("crafty", 0xC4A);
        p.dep.meanShortDistance = 3.0;
        p.dep.meanLongDistance = 72.0;
        p.dep.longFrac = 0.42;
        p.dep.twoSourceFrac = 0.45;
        p.mix.load = 0.26;
        p.mix.store = 0.08;
        p.mix.branch = 0.16;
        p.mix.mul = 0.02;
        p.branch.biasedFrac = 0.62;
        p.branch.loopFrac = 0.24;
        p.branch.randomEntropy = 0.13;
        p.code.footprintBytes = 96 * 1024;
        p.code.blockZipf = 0.92;
        p.data.warmFrac = 0.025;
        p.data.coldFrac = 0.0008;
        out.push_back(p);
    }

    // eon: C++ ray tracer; fp-flavoured, very predictable branches,
    // non-trivial code footprint, tiny data miss rate.
    {
        Profile p = baseProfile("eon", 0xE00);
        p.dep.meanShortDistance = 3.0;
        p.dep.meanLongDistance = 72.0;
        p.dep.longFrac = 0.38;
        p.mix.load = 0.24;
        p.mix.store = 0.14;
        p.mix.branch = 0.11;
        p.mix.fp = 0.10;
        p.mix.mul = 0.03;
        p.branch.biasedFrac = 0.78;
        p.branch.loopFrac = 0.22;
        p.branch.randomEntropy = 0.03;
        p.code.footprintBytes = 80 * 1024;
        p.code.blockZipf = 0.98;
        p.data.warmFrac = 0.02;
        p.data.coldFrac = 0.0003;
        p.data.strideFrac = 0.02;
        out.push_back(p);
    }

    // gap: group theory; long arithmetic chains over big integers,
    // very predictable control, deep independent work (the paper's
    // outlier with 8 useful instructions left at branch issue).
    {
        Profile p = baseProfile("gap", 0x9A9);
        p.dep.meanShortDistance = 3.6;
        p.dep.meanLongDistance = 100.0;
        p.dep.longFrac = 0.48;
        p.dep.twoSourceFrac = 0.45;
        p.mix.load = 0.26;
        p.mix.store = 0.12;
        p.mix.branch = 0.10;
        p.mix.mul = 0.04;
        p.branch.biasedFrac = 0.80;
        p.branch.loopFrac = 0.16;
        p.branch.meanLoopTrip = 24.0;
        p.branch.randomEntropy = 0.04;
        p.code.footprintBytes = 48 * 1024;
        p.code.blockZipf = 0.92;
        p.data.warmFrac = 0.04;
        p.data.coldFrac = 0.002;
        out.push_back(p);
    }

    // gcc: compiler; big code footprint (worst I-cache behaviour),
    // pointer-heavy IR walks, moderate prediction.
    {
        Profile p = baseProfile("gcc", 0x6CC);
        p.dep.meanShortDistance = 2.8;
        p.dep.meanLongDistance = 56.0;
        p.dep.longFrac = 0.33;
        p.mix.load = 0.26;
        p.mix.store = 0.12;
        p.mix.branch = 0.19;
        p.branch.sites = 2048;
        p.branch.biasedFrac = 0.62;
        p.branch.loopFrac = 0.24;
        p.branch.randomEntropy = 0.09;
        p.code.footprintBytes = 128 * 1024;
        p.code.blockZipf = 0.90;
        p.data.warmFrac = 0.03;
        p.data.coldFrac = 0.001;
        out.push_back(p);
    }

    // gzip: compression; Table 1 targets alpha=1.3 beta=0.5 L=1.5,
    // branch mispredictions dominate its CPI loss (Figure 16).
    {
        Profile p = baseProfile("gzip", 0x621);
        p.paperAlpha = 1.3;
        p.paperBeta = 0.5;
        p.paperAvgLatency = 1.5;
        p.dep.meanShortDistance = 2.8;
        p.dep.meanLongDistance = 56.0;
        p.dep.longFrac = 0.38;
        p.dep.twoSourceFrac = 0.35;
        p.mix.load = 0.22;
        p.mix.store = 0.10;
        p.mix.branch = 0.18;
        p.mix.mul = 0.03;
        p.mix.fp = 0.04;
        p.branch.biasedFrac = 0.44;
        p.branch.loopFrac = 0.30;
        p.branch.randomEntropy = 0.16;
        p.code.footprintBytes = 8 * 1024;
        p.code.blockZipf = 1.3;
        p.data.warmFrac = 0.03;
        p.data.coldFrac = 0.0015;
        out.push_back(p);
    }

    // mcf: single-depot vehicle scheduling; pointer chasing over a
    // network far larger than L2 -> dominant, clustered long D-misses
    // (70% of CPI in Figure 16), plus hard data-dependent branches.
    {
        Profile p = baseProfile("mcf", 0x3CF);
        p.dep.meanShortDistance = 2.5;
        p.dep.meanLongDistance = 80.0;
        p.dep.longFrac = 0.55;
        p.mix.load = 0.30;
        p.mix.store = 0.09;
        p.mix.branch = 0.19;
        p.branch.biasedFrac = 0.62;
        p.branch.loopFrac = 0.25;
        p.branch.randomEntropy = 0.06;
        p.code.footprintBytes = 8 * 1024;
        p.code.blockZipf = 1.3;
        p.data.coldBytes = 64 * 1024 * 1024;
        p.data.hotFrac = 0.76;
        p.data.warmFrac = 0.08;
        p.data.coldFrac = 0.035;
        p.data.strideFrac = 0.03;
        p.data.burstColdFrac = 0.60;
        p.data.burstEnterProb = 0.004;
        p.data.burstExitProb = 0.05;
        p.data.regionZipf = 0.2;
        out.push_back(p);
    }

    // parser: natural-language parser; dictionary lookups, hard
    // branches, moderate misses of every kind.
    {
        Profile p = baseProfile("parser", 0xAA5);
        p.dep.meanShortDistance = 2.8;
        p.dep.meanLongDistance = 56.0;
        p.dep.longFrac = 0.30;
        p.mix.load = 0.25;
        p.mix.store = 0.10;
        p.mix.branch = 0.19;
        p.branch.biasedFrac = 0.62;
        p.branch.loopFrac = 0.25;
        p.branch.randomEntropy = 0.06;
        p.code.footprintBytes = 48 * 1024;
        p.code.blockZipf = 0.95;
        p.data.warmFrac = 0.05;
        p.data.coldFrac = 0.004;
        p.data.burstEnterProb = 0.0015;
        out.push_back(p);
    }

    // perlbmk: interpreter; dispatch-loop code footprint, indirect-
    // branch-like unpredictability folded into Random sites.
    {
        Profile p = baseProfile("perl", 0x9E7);
        p.dep.meanShortDistance = 2.8;
        p.dep.meanLongDistance = 64.0;
        p.dep.longFrac = 0.36;
        p.mix.load = 0.26;
        p.mix.store = 0.13;
        p.mix.branch = 0.17;
        p.branch.sites = 1024;
        p.branch.biasedFrac = 0.68;
        p.branch.loopFrac = 0.25;
        p.branch.randomEntropy = 0.08;
        p.code.footprintBytes = 128 * 1024;
        p.code.blockZipf = 0.95;
        p.data.warmFrac = 0.03;
        p.data.coldFrac = 0.001;
        out.push_back(p);
    }

    // twolf: place & route; short dependence chains, frequent hard
    // branches, large cell database -> heavy long D-misses (60% of
    // CPI in Figure 16).
    {
        Profile p = baseProfile("twolf", 0x701F);
        p.dep.meanShortDistance = 2.4;
        p.dep.meanLongDistance = 48.0;
        p.dep.longFrac = 0.40;
        p.dep.twoSourceFrac = 0.45;
        p.mix.load = 0.27;
        p.mix.store = 0.09;
        p.mix.branch = 0.18;
        p.mix.mul = 0.03;
        p.mix.fp = 0.03;
        p.branch.biasedFrac = 0.44;
        p.branch.loopFrac = 0.25;
        p.branch.randomEntropy = 0.20;
        p.code.footprintBytes = 32 * 1024;
        p.code.blockZipf = 1.1;
        p.data.coldBytes = 32 * 1024 * 1024;
        p.data.hotFrac = 0.86;
        p.data.warmFrac = 0.06;
        p.data.coldFrac = 0.012;
        p.data.strideFrac = 0.03;
        p.data.burstColdFrac = 0.50;
        p.data.burstEnterProb = 0.002;
        p.data.burstExitProb = 0.06;
        out.push_back(p);
    }

    // vortex: object database; Table 1 targets alpha=1.2 beta=0.7
    // L=1.6; long independent record-processing chains and very
    // predictable branches, visible I-cache misses.
    {
        Profile p = baseProfile("vortex", 0x0A7E);
        p.paperAlpha = 1.2;
        p.paperBeta = 0.7;
        p.paperAvgLatency = 1.6;
        p.dep.meanShortDistance = 3.6;
        p.dep.meanLongDistance = 140.0;
        p.dep.longFrac = 0.62;
        p.dep.twoSourceFrac = 0.30;
        p.dep.noSourceFrac = 0.15;
        p.mix.load = 0.27;
        p.mix.store = 0.15;
        p.mix.branch = 0.14;
        p.mix.mul = 0.04;
        p.mix.fp = 0.06;
        p.branch.biasedFrac = 0.88;
        p.branch.loopFrac = 0.12;
        p.branch.randomEntropy = 0.02;
        p.code.footprintBytes = 128 * 1024;
        p.code.blockZipf = 0.95;
        p.data.warmFrac = 0.04;
        p.data.coldFrac = 0.0012;
        out.push_back(p);
    }

    // vpr: FPGA place & route; Table 1 targets alpha=1.7 beta=0.3
    // L=2.2 - the low-ILP outlier: very short dependence distances,
    // high-latency fp/div work, hard branches.
    {
        Profile p = baseProfile("vpr", 0x09B);
        p.paperAlpha = 1.7;
        p.paperBeta = 0.3;
        p.paperAvgLatency = 2.2;
        p.dep.meanShortDistance = 2.0;
        p.dep.meanLongDistance = 32.0;
        p.dep.longFrac = 0.12;
        p.dep.twoSourceFrac = 0.55;
        p.dep.noSourceFrac = 0.05;
        p.mix.load = 0.24;
        p.mix.store = 0.10;
        p.mix.branch = 0.16;
        p.mix.mul = 0.05;
        p.mix.div = 0.012;
        p.mix.fp = 0.16;
        p.branch.biasedFrac = 0.44;
        p.branch.loopFrac = 0.28;
        p.branch.randomEntropy = 0.20;
        p.code.footprintBytes = 16 * 1024;
        p.code.blockZipf = 1.2;
        p.data.warmFrac = 0.04;
        p.data.coldFrac = 0.003;
        out.push_back(p);
    }

    for (const Profile &p : out)
        p.validate();
    return out;
}

} // namespace

const std::vector<Profile> &
specProfiles()
{
    static const std::vector<Profile> profiles = buildProfiles();
    return profiles;
}

const Profile &
profileByName(const std::string &name)
{
    for (const Profile &p : specProfiles()) {
        if (p.name == name)
            return p;
    }
    fosm_fatal("unknown workload profile: ", name);
}

std::vector<std::string>
profileNames()
{
    std::vector<std::string> names;
    for (const Profile &p : specProfiles())
        names.push_back(p.name);
    return names;
}

} // namespace fosm
