#include "workload/branch_stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace fosm {

BranchSiteTable::BranchSiteTable(const BranchParams &params, Rng &rng)
    : params_(params), rng_(rng), sites_(params.sites)
{
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        BranchSite &site = sites_[i];
        // Kind assignment uses a deterministic hash of the site index
        // rather than an RNG draw: any contiguous subset of sites (a
        // hot code region) then carries a representative mixture of
        // behaviours, which keeps the workload's misprediction rate
        // stable instead of hostage to which few sites become hot.
        const double kind_draw =
            static_cast<double>((i * 2654435761u) % 65536u) / 65536.0;
        if (kind_draw < params_.biasedFrac) {
            site.kind = BranchSiteKind::Biased;
            // Half the biased sites lean taken, half not-taken.
            site.takenProb = rng_.bernoulli(0.5)
                ? params_.biasedTakenProb
                : 1.0 - params_.biasedTakenProb;
        } else if (kind_draw < params_.biasedFrac + params_.loopFrac) {
            site.kind = BranchSiteKind::Loop;
            site.tripCount = static_cast<std::uint32_t>(
                std::max<std::uint64_t>(
                    2, rng_.geometric(1.0 / params_.meanLoopTrip) + 1));
            site.tripPos = 0;
        } else {
            site.kind = BranchSiteKind::Random;
            // Taken probability uniformly within the entropy band
            // around 0.5: effectively unpredictable.
            site.takenProb = 0.5 +
                params_.randomEntropy * (2.0 * rng_.nextDouble() - 1.0);
        }
    }
}

std::uint32_t
BranchSiteTable::pickSite()
{
    return static_cast<std::uint32_t>(
        rng_.zipf(sites_.size(), params_.siteZipf));
}

bool
BranchSiteTable::nextOutcome(std::uint32_t idx)
{
    fosm_assert(idx < sites_.size(), "branch site out of range");
    BranchSite &site = sites_[idx];
    switch (site.kind) {
      case BranchSiteKind::Biased:
      case BranchSiteKind::Random:
        return rng_.bernoulli(site.takenProb);
      case BranchSiteKind::Loop:
        // Back-edge semantics: taken for tripCount-1 iterations,
        // not-taken on loop exit.
        if (++site.tripPos >= site.tripCount) {
            site.tripPos = 0;
            return false;
        }
        return true;
    }
    fosm_panic("unknown branch site kind");
}

} // namespace fosm
