#include "workload/address_stream.hh"

namespace fosm {

namespace {

/** Stream indices in the samplers. */
enum StreamIdx : std::size_t { Hot = 0, Warm, Cold, Stride };

std::vector<double>
burstWeights(const DataParams &p)
{
    // In the burst state the cold stream takes burstColdFrac of the
    // references; the calm streams share the remainder in their
    // original proportion.
    const double calm_rest = p.hotFrac + p.warmFrac + p.strideFrac;
    const double scale = calm_rest > 0.0
        ? (1.0 - p.burstColdFrac) / calm_rest
        : 0.0;
    return {p.hotFrac * scale, p.warmFrac * scale, p.burstColdFrac,
            p.strideFrac * scale};
}

} // namespace

DataAddressStream::DataAddressStream(const DataParams &params, Rng &rng)
    : params_(params),
      rng_(rng),
      calmSampler_({params.hotFrac, params.warmFrac, params.coldFrac,
                    params.strideFrac}),
      burstSampler_(burstWeights(params))
{
}

Addr
DataAddressStream::regionDraw(Addr base, std::uint64_t bytes)
{
    // Zipf over 64-byte chunks so spatial locality within lines is
    // realistic while reuse is skewed toward a hot subset.
    const std::uint64_t chunks = bytes / 64;
    const std::uint64_t chunk = rng_.zipf(chunks, params_.regionZipf);
    const std::uint64_t offset = rng_.nextBounded(64) & ~7ull;
    return base + chunk * 64 + offset;
}

Addr
DataAddressStream::next()
{
    if (inBurst_) {
        if (rng_.bernoulli(params_.burstExitProb))
            inBurst_ = false;
    } else {
        if (rng_.bernoulli(params_.burstEnterProb))
            inBurst_ = true;
    }

    const std::size_t stream =
        inBurst_ ? burstSampler_(rng_) : calmSampler_(rng_);

    switch (stream) {
      case Hot:
        return regionDraw(hotBase, params_.hotBytes);
      case Warm:
        return regionDraw(warmBase, params_.warmBytes);
      case Cold:
        // Uniform (not Zipf-hot) so cold references keep missing.
        return coldBase +
               (rng_.nextBounded(params_.coldBytes) & ~7ull);
      case Stride:
      default: {
        const Addr addr = strideBase + stridePos_;
        stridePos_ = (stridePos_ + params_.strideStep) %
                     params_.strideBytes;
        return addr;
      }
    }
}

} // namespace fosm
