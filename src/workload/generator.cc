#include "workload/generator.hh"

#include <algorithm>
#include <deque>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "workload/address_stream.hh"
#include "workload/branch_stream.hh"

namespace fosm {

namespace {

/**
 * One slot of the static program image. Real programs have a fixed
 * instruction at every address; modeling that (instead of drawing
 * classes i.i.d. per dynamic instruction) is what makes branch PCs
 * and code working sets repeat, so predictors and the I-cache behave
 * realistically.
 */
struct StaticSlot
{
    InstClass cls = InstClass::IntAlu;
    std::uint32_t branchSite = 0;
    std::uint32_t targetSlot = 0;
};

/**
 * Lay out the static program image: classes per slot, and for branch
 * slots a site id and a static taken-target. Loop back-edges target a
 * short distance backwards (their body becomes a hot loop); other
 * branches jump to a Zipf-selected slot, concentrating jumps on a hot
 * code subset near the start of the footprint.
 */
std::vector<StaticSlot>
buildImage(const Profile &profile, const BranchSiteTable &sites,
           Rng &rng)
{
    const std::uint64_t slots = profile.code.footprintBytes / 4;
    const MixParams &mix = profile.mix;

    // Basic-block layout: a geometric run of non-branch instructions
    // terminated by one branch. This keeps branch spacing uniform
    // across the image, so no hot path can be branch-dense and the
    // dynamic branch fraction tracks the static mix under any visit
    // weighting.
    const double branch_frac = std::max(mix.branch, 1e-6);
    // A floor of two non-branch slots per block prevents
    // adjacent-branch clusters (zipf targets concentrate near slot 0;
    // a branch-only cluster there would trap the flow in a
    // branch-saturated cycle). 2 + Geometric(q) keeps the mean run at
    // (1-fb)/fb so the overall branch density stays fb.
    const double mean_run = (1.0 - branch_frac) / branch_frac;
    constexpr double min_run = 2.0;
    const double q = mean_run > min_run + 1e-9
        ? 1.0 / (mean_run - min_run + 1.0)
        : 1.0;

    std::vector<StaticSlot> image(slots);
    std::uint32_t branch_counter = 0;
    std::uint64_t s = 0;
    while (s < slots) {
        // Non-branch run with mean (1-fb)/fb -> branch density fb.
        // Body slots keep the default (non-branch) class; their
        // dynamic class is drawn at generation time so the dynamic
        // operation mix converges to the profile mix regardless of
        // which code paths are hot.
        s += static_cast<std::uint64_t>(min_run) + rng.geometric(q);
        if (s >= slots)
            break;

        StaticSlot &slot = image[s];
        slot.cls = InstClass::Branch;
        slot.branchSite = branch_counter++ %
                          static_cast<std::uint32_t>(sites.size());
        const BranchSite &site = sites.site(slot.branchSite);
        if (site.kind == BranchSiteKind::Loop) {
            // Back-edge: body a short distance behind this slot. A
            // floor keeps hot loop bodies long enough to carry a
            // representative class mix.
            const std::uint64_t body = 6 + rng.geometric(
                1.0 / profile.code.meanLoopBody);
            slot.targetSlot = static_cast<std::uint32_t>(
                s >= body ? s - body : 0);
        } else {
            slot.targetSlot = static_cast<std::uint32_t>(
                rng.zipf(slots, profile.code.blockZipf));
        }
        ++s;
    }
    return image;
}

/**
 * Tracks the destination registers of recent instructions so source
 * operands can be wired to a producer at a requested dynamic distance.
 */
class WriterHistory
{
  public:
    void
    record(InstSeq seq, RegIndex reg)
    {
        writers_.push_back({seq, reg});
        if (writers_.size() > capacity)
            writers_.pop_front();
    }

    /**
     * Register of the most recent writer at or before target_seq, or
     * invalidReg if history does not reach back that far.
     */
    RegIndex
    producerAtOrBefore(std::int64_t target_seq) const
    {
        for (auto it = writers_.rbegin(); it != writers_.rend(); ++it) {
            if (static_cast<std::int64_t>(it->seq) <= target_seq)
                return it->reg;
        }
        return invalidReg;
    }

  private:
    struct Writer
    {
        InstSeq seq;
        RegIndex reg;
    };

    static constexpr std::size_t capacity = 2 * numArchRegs;
    std::deque<Writer> writers_;
};

} // namespace

Trace
generateTrace(const Profile &profile, std::uint64_t instructions)
{
    profile.validate();

    Rng rng(profile.seed);
    Trace trace(profile.name);
    trace.reserve(instructions);

    DataAddressStream data_stream(profile.data, rng);
    BranchSiteTable branch_sites(profile.branch, rng);
    const std::vector<StaticSlot> image =
        buildImage(profile, branch_sites, rng);
    const std::uint64_t slots = image.size();

    const MixParams &mix = profile.mix;
    DiscreteSampler body_sampler(
        {mix.load, mix.store, mix.mul, mix.div, mix.fp, mix.alu()});
    constexpr InstClass bodyClasses[] = {
        InstClass::Load, InstClass::Store, InstClass::IntMul,
        InstClass::IntDiv, InstClass::FpAlu, InstClass::IntAlu,
    };

    WriterHistory writers;
    // Round-robin destination allocation keeps a producer's register
    // live for numArchRegs subsequent writers; distance draws are
    // capped below that so producers are always resolvable.
    int next_dst = 0;
    const std::uint64_t max_distance = numArchRegs - 16;

    // d = 1 + Geometric(1/mean) has mean `mean`.
    const double short_p = 1.0 / profile.dep.meanShortDistance;
    const double long_p = 1.0 / profile.dep.meanLongDistance;

    auto draw_source = [&](InstSeq seq) -> RegIndex {
        const double p =
            rng.bernoulli(profile.dep.longFrac) ? long_p : short_p;
        const std::uint64_t d = std::min<std::uint64_t>(
            1 + rng.geometric(p), max_distance);
        const std::int64_t target =
            static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(d);
        if (target < 0)
            return invalidReg; // live-in value
        return writers.producerAtOrBefore(target);
    };

    std::uint64_t slot = 0;
    for (InstSeq seq = 0; seq < instructions; ++seq) {
        const StaticSlot &st = image[slot];
        InstRecord inst;
        inst.pc = codeBase + slot * 4;
        inst.cls = st.cls == InstClass::Branch
            ? InstClass::Branch
            : bodyClasses[body_sampler(rng)];

        // Wire register sources.
        switch (inst.cls) {
          case InstClass::Load:
          case InstClass::Branch:
            inst.src1 = draw_source(seq);
            break;
          case InstClass::Store:
            inst.src1 = draw_source(seq);
            inst.src2 = draw_source(seq);
            break;
          default: {
            const double u = rng.nextDouble();
            if (u < profile.dep.noSourceFrac) {
                // immediate-operand instruction: no sources
            } else if (u < profile.dep.noSourceFrac +
                               profile.dep.twoSourceFrac) {
                inst.src1 = draw_source(seq);
                inst.src2 = draw_source(seq);
            } else {
                inst.src1 = draw_source(seq);
            }
            break;
          }
        }

        // Allocate a destination register for value-producing classes.
        if (inst.cls != InstClass::Store &&
            inst.cls != InstClass::Branch) {
            inst.dst = static_cast<RegIndex>(next_dst);
            next_dst = (next_dst + 1) % numArchRegs;
            writers.record(seq, inst.dst);
        }

        // Memory reference address.
        if (inst.isMem())
            inst.effAddr = data_stream.next();

        // Control flow: outcome from the site behaviour, target from
        // the static image.
        if (inst.isBranch()) {
            inst.branchTaken = branch_sites.nextOutcome(st.branchSite);
            if (inst.branchTaken) {
                slot = st.targetSlot;
                inst.effAddr = codeBase + slot * 4;
            } else {
                slot = slot + 1;
                inst.effAddr = codeBase + slot * 4;
            }
        } else {
            ++slot;
        }
        if (slot >= slots)
            slot = 0;

        trace.append(inst);
    }

    return trace;
}

std::uint64_t
traceDigest(const Trace &trace)
{
    // Field by field, never raw struct bytes: InstRecord has padding
    // whose content is indeterminate.
    Fnv1a h;
    h.update(trace.name());
    h.updateInt(static_cast<std::uint64_t>(trace.size()));
    for (const InstRecord &inst : trace) {
        h.updateInt(inst.pc);
        h.updateInt(inst.effAddr);
        h.updateInt(static_cast<std::uint8_t>(inst.cls));
        h.updateInt(static_cast<std::uint8_t>(inst.branchTaken));
        h.updateInt(inst.dst);
        h.updateInt(inst.src1);
        h.updateInt(inst.src2);
    }
    return h.digest();
}

} // namespace fosm
