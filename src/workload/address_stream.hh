/**
 * @file
 * Data address stream generator. Produces the memory reference
 * behaviour described by DataParams: hot/warm/cold working-set draws,
 * a striding stream, and a calm/burst Markov modulation that clusters
 * long-miss accesses (the source of the paper's f_LDM(i) burst
 * distribution, Section 4.3).
 */

#ifndef FOSM_WORKLOAD_ADDRESS_STREAM_HH
#define FOSM_WORKLOAD_ADDRESS_STREAM_HH

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/profile.hh"

namespace fosm {

class DataAddressStream
{
  public:
    DataAddressStream(const DataParams &params, Rng &rng);

    /** Next data reference address. */
    Addr next();

    /** True while the stream is in the bursty (cold-heavy) state. */
    bool inBurst() const { return inBurst_; }

    /** Region base addresses (exposed for tests). */
    static constexpr Addr hotBase = 0x10000000ull;
    static constexpr Addr warmBase = 0x20000000ull;
    static constexpr Addr coldBase = 0x40000000ull;
    static constexpr Addr strideBase = 0x80000000ull;

  private:
    const DataParams &params_;
    Rng &rng_;
    DiscreteSampler calmSampler_;
    DiscreteSampler burstSampler_;
    bool inBurst_ = false;
    Addr stridePos_ = 0;

    Addr regionDraw(Addr base, std::uint64_t bytes);
};

} // namespace fosm

#endif // FOSM_WORKLOAD_ADDRESS_STREAM_HH
