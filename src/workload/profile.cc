#include "workload/profile.hh"

#include "common/logging.hh"

namespace fosm {

double
MixParams::alu() const
{
    return 1.0 - (load + store + branch + mul + div + fp);
}

void
MixParams::validate() const
{
    for (double f : {load, store, branch, mul, div, fp}) {
        if (f < 0.0 || f > 1.0)
            fosm_fatal("mix fraction out of [0,1]: ", f);
    }
    if (alu() < 0.0)
        fosm_fatal("mix fractions sum to more than 1");
}

void
Profile::validate() const
{
    mix.validate();
    if (dep.meanShortDistance < 1.0 || dep.meanLongDistance < 1.0)
        fosm_fatal("profile ", name, ": mean distances must be >= 1");
    if (dep.longFrac < 0.0 || dep.longFrac > 1.0)
        fosm_fatal("profile ", name, ": longFrac must be in [0,1]");
    if (dep.twoSourceFrac < 0.0 || dep.twoSourceFrac > 1.0 ||
        dep.noSourceFrac < 0.0 || dep.noSourceFrac > 1.0 ||
        dep.twoSourceFrac + dep.noSourceFrac > 1.0) {
        fosm_fatal("profile ", name, ": invalid source fractions");
    }
    if (branch.sites == 0)
        fosm_fatal("profile ", name, ": need at least one branch site");
    if (branch.biasedFrac + branch.loopFrac > 1.0)
        fosm_fatal("profile ", name, ": branch kind fractions exceed 1");
    if (branch.biasedTakenProb < 0.0 || branch.biasedTakenProb > 1.0)
        fosm_fatal("profile ", name, ": invalid biasedTakenProb");
    if (branch.randomEntropy < 0.0 || branch.randomEntropy > 0.5)
        fosm_fatal("profile ", name, ": randomEntropy must be in [0,0.5]");
    if (code.footprintBytes < 4096)
        fosm_fatal("profile ", name, ": code footprint too small");
    if (code.meanLoopBody < 2.0)
        fosm_fatal("profile ", name, ": meanLoopBody must be >= 2");
    const double calm = data.hotFrac + data.warmFrac + data.coldFrac +
                        data.strideFrac;
    if (calm <= 0.0)
        fosm_fatal("profile ", name, ": data stream weights must be > 0");
    if (data.burstColdFrac < 0.0 || data.burstColdFrac > 1.0)
        fosm_fatal("profile ", name, ": invalid burstColdFrac");
    for (std::uint64_t bytes :
         {data.hotBytes, data.warmBytes, data.coldBytes,
          data.strideBytes}) {
        if (bytes < 64)
            fosm_fatal("profile ", name, ": data region too small");
    }
}

} // namespace fosm
