/**
 * @file
 * Statistical workload profile: every knob of the synthetic trace
 * generator. The paper evaluates on SPECint2000 traces; we do not have
 * those binaries, so each benchmark is replaced by a profile whose
 * dependence, latency-mix, branch-behaviour and memory-locality
 * parameters are tuned to land near the paper's reported
 * characteristics (DESIGN.md Section 2 records the substitution).
 *
 * The first-order model consumes only statistics of the dynamic
 * stream, so a synthetic stream reproducing those statistics exercises
 * the same model and simulator paths as the original traces.
 */

#ifndef FOSM_WORKLOAD_PROFILE_HH
#define FOSM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fosm {

/** Dynamic operation mix; fractions must sum to <= 1, rest is IntAlu. */
struct MixParams
{
    double load = 0.22;
    double store = 0.12;
    double branch = 0.18;
    double mul = 0.02;
    double div = 0.002;
    double fp = 0.02;

    /** Remaining fraction, assigned to single-cycle integer ALU ops. */
    double alu() const;

    /** Validate ranges; fatal on nonsense. */
    void validate() const;
};

/**
 * Register dependence shape. Producer->consumer distances are drawn
 * from a two-component geometric mixture: a short-range component
 * (chains: low ILP) and a long-range component (independent strands:
 * parallelism that only a large window exposes). The balance controls
 * the IW power-law exponent beta (Section 3, Table 1): mostly-short
 * distances give a flat curve (vpr's beta = 0.3), a heavy long-range
 * component gives a steep one (vortex's beta = 0.7).
 */
struct DependenceParams
{
    /** Mean producer distance of the short-range component. */
    double meanShortDistance = 3.0;
    /** Mean producer distance of the long-range component. */
    double meanLongDistance = 48.0;
    /** Fraction of source operands using the long-range component. */
    double longFrac = 0.35;
    /** Fraction of instructions using two register sources. */
    double twoSourceFrac = 0.35;
    /** Fraction of instructions with no register source. */
    double noSourceFrac = 0.10;
};

/** Behaviour class of one static branch site. */
enum class BranchSiteKind : std::uint8_t
{
    Biased,  ///< almost always one direction
    Loop,    ///< periodic taken-run pattern (loop back-edge)
    Random,  ///< weakly biased, effectively unpredictable
};

/**
 * Branch population. A static site population is generated once per
 * trace; each dynamic branch picks a site by a Zipf draw so a few hot
 * branches dominate, as in real integer code.
 */
struct BranchParams
{
    /** Number of static branch sites. */
    std::uint32_t sites = 512;
    /** Zipf skew of dynamic site selection. */
    double siteZipf = 0.8;
    /** Fraction of sites that are strongly biased. */
    double biasedFrac = 0.55;
    /** Taken probability of a biased site. */
    double biasedTakenProb = 0.97;
    /** Fraction of sites that are loop back-edges. */
    double loopFrac = 0.30;
    /** Mean loop trip count (geometric). */
    double meanLoopTrip = 12.0;
    /**
     * Remaining sites are Random with taken probability uniform in
     * [0.5-e, 0.5+e]. Note that any probability near 0.5 is close to
     * unpredictable, so the workload's misprediction rate is mainly
     * steered by the Random-site *share* (1 - biasedFrac - loopFrac),
     * not by this band width.
     */
    double randomEntropy = 0.15;
};

/**
 * Instruction-address behaviour. The generator lays out a *static
 * program image*: each instruction slot in the footprint has a fixed
 * class, and each branch slot a fixed site and a fixed target. Loop
 * back-edges point a short distance backwards (their body becomes hot
 * code); other taken branches jump to a Zipf-selected slot, so a hot
 * code subset emerges. Footprints whose hot subset exceeds the 4 KB
 * L1I produce instruction cache misses as in gcc, crafty, perl,
 * vortex (Figure 11).
 */
struct CodeParams
{
    /** Total static code footprint in bytes. */
    std::uint64_t footprintBytes = 64 * 1024;
    /** Zipf skew of static branch-target selection. */
    double blockZipf = 1.1;
    /** Mean loop-body length in instructions for back-edges. */
    double meanLoopBody = 12.0;
};

/**
 * Data-address behaviour. Accesses select among four streams:
 *  - hot:    small region, L1-resident (hits)
 *  - warm:   region that fits L2 but not L1 (short misses)
 *  - cold:   region exceeding L2 (long misses)
 *  - stride: sequential streaming walk (compulsory-style misses)
 * A two-state Markov chain (calm/burst) modulates the cold fraction to
 * create the clustered long-miss behaviour that the f_LDM(i)
 * distribution of Section 4.3 captures (pointer-chasing mcf-style
 * phases).
 */
struct DataParams
{
    std::uint64_t hotBytes = 2 * 1024;
    std::uint64_t warmBytes = 64 * 1024;
    std::uint64_t coldBytes = 16 * 1024 * 1024;
    std::uint64_t strideBytes = 1024 * 1024;

    /** Stream-selection weights in the calm state. */
    double hotFrac = 0.80;
    double warmFrac = 0.12;
    double coldFrac = 0.02;
    double strideFrac = 0.06;

    /** Cold fraction while in the burst state. */
    double burstColdFrac = 0.50;
    /** Probability of entering the burst state per access. */
    double burstEnterProb = 0.002;
    /** Probability of leaving the burst state per access. */
    double burstExitProb = 0.05;

    /** Zipf skew within the hot/warm/cold regions. */
    double regionZipf = 0.6;
    /** Stride in bytes for the streaming walk. */
    std::uint32_t strideStep = 8;
};

/** Complete generation profile for one synthetic benchmark. */
struct Profile
{
    std::string name = "generic";
    std::uint64_t seed = 1;

    MixParams mix;
    DependenceParams dep;
    BranchParams branch;
    CodeParams code;
    DataParams data;

    /**
     * Paper-reported reference values this profile targets, used only
     * for documentation and sanity tests (0 when the paper does not
     * report one for this benchmark).
     */
    double paperAlpha = 0.0;
    double paperBeta = 0.0;
    double paperAvgLatency = 0.0;

    /** Validate all parameter groups. */
    void validate() const;
};

/** The 12 SPECint2000-like profiles, in the paper's bar-chart order. */
const std::vector<Profile> &specProfiles();

/** Look up a profile by benchmark name; fatal if unknown. */
const Profile &profileByName(const std::string &name);

/** Names of all available profiles in order. */
std::vector<std::string> profileNames();

} // namespace fosm

#endif // FOSM_WORKLOAD_PROFILE_HH
