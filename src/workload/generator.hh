/**
 * @file
 * Synthetic trace generator. Expands a statistical Profile into a
 * dynamic instruction trace with the register dependences, control
 * flow, and memory reference behaviour the profile describes. This is
 * the stand-in for the paper's SPECint2000 traces (DESIGN.md
 * Section 2): the first-order model consumes only stream statistics,
 * so a synthetic stream with matching statistics drives the same
 * analyses.
 */

#ifndef FOSM_WORKLOAD_GENERATOR_HH
#define FOSM_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "trace/trace.hh"
#include "workload/profile.hh"

namespace fosm {

/**
 * Generate a trace of the given length from the profile. Deterministic
 * in (profile.seed, instructions).
 *
 * Generation model:
 *  - Operation classes are drawn i.i.d. from the profile mix.
 *  - Register dependences: each source operand picks a producer
 *    distance d ~ 1 + Geometric(1/meanDistance), capped below the
 *    architectural register count so round-robin destination
 *    allocation keeps the producer's register live.
 *  - Control flow: the PC advances sequentially; a taken branch jumps
 *    to a Zipf-selected basic-block slot within the code footprint, so
 *    a hot code subset emerges, giving realistic I-cache behaviour.
 *  - Branch outcomes: the static site at (pc hash) runs its profile
 *    behaviour (biased / loop-periodic / random).
 *  - Data addresses come from DataAddressStream (hot/warm/cold/stride
 *    regions with calm/burst modulation).
 */
Trace generateTrace(const Profile &profile, std::uint64_t instructions);

/**
 * Content digest of a trace (FNV-1a over every record, field by
 * field). Persistent characterization entries are keyed by this, so
 * any change to the generator, the profile parameters, or the trace
 * length produces a different key and stale entries are simply never
 * found — no invalidation pass needed.
 */
std::uint64_t traceDigest(const Trace &trace);

/** Base address of the synthetic code region. */
constexpr Addr codeBase = 0x00400000ull;

} // namespace fosm

#endif // FOSM_WORKLOAD_GENERATOR_HH
