/**
 * @file
 * Branch site population and outcome generation. Each static site has
 * a behaviour (biased, loop-periodic, or weakly-biased random) chosen
 * at construction; dynamic branches select sites with a Zipf draw so a
 * few hot branches dominate. Real predictors (gShare etc.) then
 * achieve workload-dependent accuracy organically, which is what the
 * model's misprediction probability B measures.
 */

#ifndef FOSM_WORKLOAD_BRANCH_STREAM_HH
#define FOSM_WORKLOAD_BRANCH_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/profile.hh"

namespace fosm {

/** One static branch site's behaviour state. */
struct BranchSite
{
    BranchSiteKind kind = BranchSiteKind::Biased;
    /** Taken probability (Biased/Random kinds). */
    double takenProb = 0.5;
    /** Loop trip count (Loop kind). */
    std::uint32_t tripCount = 0;
    /** Current iteration within the loop (Loop kind). */
    std::uint32_t tripPos = 0;
};

class BranchSiteTable
{
  public:
    BranchSiteTable(const BranchParams &params, Rng &rng);

    /** Select a site for the next dynamic branch (Zipf draw). */
    std::uint32_t pickSite();

    /** Generate the outcome of one execution of the given site. */
    bool nextOutcome(std::uint32_t site);

    std::size_t size() const { return sites_.size(); }
    const BranchSite &site(std::uint32_t idx) const
    {
        return sites_[idx];
    }

  private:
    const BranchParams &params_;
    Rng &rng_;
    std::vector<BranchSite> sites_;
};

} // namespace fosm

#endif // FOSM_WORKLOAD_BRANCH_STREAM_HH
