/**
 * @file
 * fosm-repl: replication of the persistent result store across the
 * cluster's hash ring. Model results are deterministic and immutable
 * (newest schema version wins, values never change for a key), which
 * makes replication unusually forgiving: there are no conflicting
 * writes to reconcile, only presence to propagate. The layer
 * therefore favors availability — every path is asynchronous and
 * best-effort, with anti-entropy as the catch-all repair:
 *
 *  - Write-behind: the store's commit hook enqueues every committed
 *    r/ (response), c/ (characterization) and t/ (trend row) entry;
 *    a background worker batches them and POSTs binary frames to the
 *    other members of the key's preference list (the owner plus the
 *    next N-1 distinct successors on the ring, the same route() the
 *    gateway walks on failover — so the node the gateway fails over
 *    to is exactly the node that holds the copy).
 *  - Read-repair: on a local store miss for a key this node does NOT
 *    own (i.e. failover traffic), probe the other preference-list
 *    members before recomputing; a hit is written back locally.
 *  - Anti-entropy: each node periodically pulls from every peer the
 *    entries that belong on it with an origin LSN above its recorded
 *    watermark for that peer. Watermarks are persisted in the local
 *    store (w/<peer>), and the origin store's per-segment LSN
 *    watermarks let a caught-up replica's pull cost one comparison
 *    per segment instead of a replay. A store-id epoch detects a
 *    wiped origin whose LSNs restarted and resets the watermark.
 *
 * Consistency: eventual, converging within one anti-entropy interval
 * of any failure; because values are deterministic, a stale replica
 * can only miss entries (recompute: correct, slower), never serve a
 * wrong one. See docs/REPLICATION.md.
 */

#ifndef FOSM_REPL_REPLICATOR_HH
#define FOSM_REPL_REPLICATOR_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/hash_ring.hh"
#include "repl/codec.hh"
#include "server/http.hh"
#include "server/json.hh"
#include "server/metrics.hh"
#include "store/store.hh"

namespace fosm::repl {

/** Replication tuning knobs (fosm-serve --peers/--replication). */
struct ReplConfig
{
    /** This node's own label, e.g. "127.0.0.1:8801"; must appear in
     *  peers. */
    std::string self;

    /** Full cluster membership, gateway backend labels. */
    std::vector<std::string> peers;

    /** Copies per entry: the owner plus replication-1 successors. */
    std::size_t replication = 2;

    /** Ring positions per node; MUST match the gateway's --vnodes or
     *  the two sides disagree about ownership. */
    std::size_t vnodes = 128;

    /** Pending write-behind entries before the oldest are dropped
     *  (anti-entropy repairs drops). */
    std::size_t queueMax = 65536;

    /** Per-request batch caps; keep under the receiving server's
     *  1 MiB body limit with headroom for keys and framing. */
    std::size_t batchMaxEntries = 256;
    std::size_t batchMaxBytes = 512u << 10;

    /** Write-behind worker wakeup cadence when idle. */
    int flushIntervalMs = 20;

    int connectTimeoutMs = 250;
    int requestTimeoutMs = 2000;

    /** Anti-entropy sweep cadence; 0 disables the background sweep
     *  (catchUp() still works for tests and startup). */
    int antiEntropyIntervalMs = 5000;

    /** Per-pull caps (the puller loops while the origin has more). */
    std::size_t pullMaxEntries = 256;
    std::size_t pullMaxBytes = 512u << 10;

    /** Read-repair probe budget per peer (keep well under the
     *  recompute cost it is trying to beat). */
    int readRepairTimeoutMs = 150;

    /** Pending corruption-repair keys before new findings are
     *  dropped (the scrubber re-announces standing quarantine marks
     *  every pass, so a drop only delays the repair). */
    std::size_t repairQueueMax = 4096;

    /** Per-peer probe budget for a corruption repair; repairs are
     *  background work, so this can exceed readRepairTimeoutMs. */
    int repairTimeoutMs = 1000;
};

/** Snapshot of the replication counters (status endpoint, tests). */
struct ReplCounters
{
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t batchesSent = 0;
    std::uint64_t entriesSent = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t sendFailures = 0;
    std::uint64_t entriesApplied = 0;
    std::uint64_t entriesSkipped = 0;
    std::uint64_t bytesApplied = 0;
    std::uint64_t pulls = 0;
    std::uint64_t pullFailures = 0;
    std::uint64_t catchupEntries = 0;
    std::uint64_t catchupBytes = 0;
    std::uint64_t watermarkResets = 0;
    std::uint64_t readRepairHits = 0;
    std::uint64_t readRepairMisses = 0;
    std::uint64_t repairEnqueued = 0;
    std::uint64_t repairSuccess = 0;
    std::uint64_t repairFailures = 0;
    std::uint64_t repairBytes = 0;
    std::uint64_t repairDropped = 0;
};

/** Owned/replica/foreign split of the local store's live entries. */
struct OwnershipCounts
{
    std::uint64_t owned = 0;   ///< self is the key's ring owner
    std::uint64_t replica = 0; ///< self is a non-owner successor
    std::uint64_t foreign = 0; ///< self is off the preference list
    std::uint64_t meta = 0;    ///< w/ and m/ bookkeeping keys
};

/**
 * The replication engine for one fosm-serve node. Construct, then
 * start() (which registers the store commit hook and spawns the
 * write-behind worker and anti-entropy threads); stop() drains the
 * queue with a final flush — the drain-handoff path — and joins.
 * All public methods are thread-safe after start().
 */
class Replicator
{
  public:
    Replicator(ReplConfig config,
               std::shared_ptr<store::PersistentStore> store,
               server::MetricsRegistry &metrics);
    ~Replicator();

    Replicator(const Replicator &) = delete;
    Replicator &operator=(const Replicator &) = delete;

    void start();

    /** Final flush (bounded by deadlineMs), then join the threads. */
    void stop(int deadlineMs = 2000);

    /**
     * Synchronously drain the write-behind queue (up to deadlineMs).
     * Returns true when the queue emptied. The drain-with-flush
     * handoff: call before retiring a node so its successors hold
     * everything it computed.
     */
    bool flush(int deadlineMs = 2000);

    /**
     * One synchronous anti-entropy round against every peer; returns
     * entries applied. Run at startup (rejoin catch-up before the
     * node starts serving) and from tests.
     */
    std::size_t catchUp();

    /** Whether this request path belongs to the repl endpoints. */
    static bool handles(const std::string &path);

    /**
     * Dispatch one /admin/repl request (apply, pull, get, status).
     * fosm-serve routes these ahead of the model service handler.
     */
    server::HttpResponse handle(const server::HttpRequest &request);

    /**
     * Read-repair probe: ask the other preference-list members of
     * this store key for its value. On a hit the value is also
     * written back to the local store. Intended for keys this node
     * does not own (failover traffic); callers may skip owned keys.
     */
    bool fetchFromPeers(const std::string &storeKey,
                        std::string &value);

    /**
     * Queue a corrupt (quarantined) key for repair from its
     * preference list. Fed by the scrubber's corrupt handler and by
     * corrupt-on-read; deduplicated and bounded (a dropped finding
     * is re-announced on the next scrub pass). Unlike read-repair
     * this also covers keys this node OWNS: the owner's copy went
     * bad, the successors are now the authority. Non-replicated
     * keys are ignored — they heal by recompute-and-rewrite.
     */
    void enqueueRepair(const std::string &storeKey);

    /**
     * Synchronously repair one key: probe the other preference-list
     * members, verify the returned bytes against the X-Fosm-Crc32c
     * trailer, re-commit locally (which clears the q/ quarantine
     * mark). Returns true when a verified copy was committed.
     * Public for tests and the repair worker.
     */
    bool repairKey(const std::string &storeKey);

    /** Corruption-repair keys waiting for the repair worker. */
    std::size_t repairQueueDepth() const;

    /** Whether self is the ring owner of this store key. */
    bool ownsKey(const std::string &storeKey) const;

    /** Replication enabled (>= 2 copies and >= 2 peers)? */
    bool active() const;

    /** Digest a store key onto the ring: r/ entries hash their
     *  embedded cache key (matching the gateway's shardDigest);
     *  everything else hashes the full key. */
    static std::uint64_t keyDigest(std::string_view storeKey);

    /** Preference-ordered labels (owner first) for a store key. */
    std::vector<std::string>
    preferenceFor(const std::string &storeKey) const;

    ReplCounters counters() const;

    /** Live-entry ownership split (scans the in-memory index). */
    OwnershipCounts ownershipCounts() const;

    /** Status document for /admin/repl/status and store stats. */
    json::Value statusJson() const;

    const ReplConfig &config() const { return config_; }

  private:
    struct Pending
    {
        std::string key;
        std::string value;
        std::uint64_t lsn = 0;
    };

    void onCommit(const std::string &key, std::string_view value,
                  std::uint64_t lsn);
    void workerLoop();
    void antiEntropyLoop();
    void repairLoop();
    bool drainOnce(); ///< one batch cycle; true when work was done
    void sendBatch(const std::string &peer,
                   std::vector<store::LiveEntry> entries);
    std::size_t pullFromPeer(const std::string &peer);
    bool applyEntries(const std::vector<store::LiveEntry> &entries,
                      std::uint64_t &applied, std::uint64_t &skipped,
                      std::uint64_t &bytes);
    static bool replicable(std::string_view key);

    /** Recorded watermark for a peer: (storeId, lsn). */
    std::pair<std::uint64_t, std::uint64_t>
    watermarkFor(const std::string &peer) const;
    void putWatermark(const std::string &peer, std::uint64_t storeId,
                      std::uint64_t lsn);

    server::HttpResponse handleApply(const server::HttpRequest &);
    server::HttpResponse handlePull(const server::HttpRequest &);
    server::HttpResponse handleGet(const server::HttpRequest &);
    server::HttpResponse handleStatus(const server::HttpRequest &);

    ReplConfig config_;
    std::shared_ptr<store::PersistentStore> store_;
    cluster::HashRing ring_;
    std::uint64_t storeId_ = 0; ///< this store's epoch

    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;  ///< wakes the worker
    std::condition_variable drainCv_;  ///< wakes flush() waiters
    std::deque<Pending> queue_;
    std::size_t queueBytes_ = 0;
    bool stopping_ = false;
    bool started_ = false;
    std::thread worker_;
    std::thread antiEntropy_;

    // Corruption-repair queue (scrub findings, corrupt-on-read).
    mutable std::mutex repairMutex_;
    std::condition_variable repairCv_;
    std::deque<std::string> repairQueue_;
    std::unordered_set<std::string> repairPending_; ///< dedup
    bool repairStopping_ = false;
    std::thread repairWorker_;

    // fosm_repl_* metrics (registry-owned).
    server::Counter &enqueued_;
    server::Counter &dropped_;
    server::Counter &batchesSent_;
    server::Counter &entriesSent_;
    server::Counter &bytesSent_;
    server::Counter &sendFailures_;
    server::Counter &entriesApplied_;
    server::Counter &entriesSkipped_;
    server::Counter &bytesApplied_;
    server::Counter &pulls_;
    server::Counter &pullFailures_;
    server::Counter &catchupEntries_;
    server::Counter &catchupBytes_;
    server::Counter &watermarkResets_;
    server::Counter &readRepairHits_;
    server::Counter &readRepairMisses_;
    server::Counter &repairEnqueued_;
    server::Counter &repairSuccess_;
    server::Counter &repairFailures_;
    server::Counter &repairBytes_;
    server::Counter &repairDropped_;
};

} // namespace fosm::repl

#endif // FOSM_REPL_REPLICATOR_HH
