/**
 * @file
 * Wire format for fosm-repl batches: the payload of the internal
 * POST /admin/repl/apply hop (owner write-behind to its ring
 * successors) and of /admin/repl/pull responses (anti-entropy
 * catch-up). Binary for the same reason the gateway's batch hop is —
 * these are internal replica-to-replica transfers of data that is
 * already serialized JSON; re-wrapping it in JSON would double-escape
 * every value — and framed defensively: a CRC32C over the payload
 * plus strict structural validation, so a truncated or corrupted
 * batch is rejected whole instead of half-applied.
 *
 * Layout (all integers little-endian):
 *
 *   0  char[8] magic "FOSMREPL"
 *   8  u32     format version (1)
 *   12 u32     CRC32C of bytes [16, end)
 *   16 u32     entry count
 *   20 u32     origin label length
 *   24 u64     upto: highest origin LSN this batch advances the
 *              receiver's watermark to (pull responses; 0 in apply
 *              batches, whose receivers do not track watermarks)
 *   32 u64     origin store id (epoch; detects a wiped/recreated
 *              origin store whose LSNs restarted)
 *   40 u8      more (pull responses: further entries remain)
 *   41 origin label bytes
 *   then per entry:
 *      u32 key length, u32 value length, u64 origin LSN,
 *      key bytes, value bytes
 */

#ifndef FOSM_REPL_CODEC_HH
#define FOSM_REPL_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "store/store.hh"

namespace fosm::repl {

/** Content type of every repl hop. */
inline constexpr const char *replContentType =
    "application/x-fosm-repl";

/** One decoded batch (apply payload or pull response). */
struct Batch
{
    std::string origin;       ///< sender's "host:port" label
    std::uint64_t upto = 0;   ///< watermark to adopt (pulls only)
    std::uint64_t storeId = 0;///< sender's store epoch
    bool more = false;        ///< pull responses: pull again
    std::vector<store::LiveEntry> entries;
};

/** Serialize a batch into its wire form. */
std::string encodeBatch(const Batch &batch);

/**
 * Parse a wire batch. Returns false (with a diagnostic in error)
 * for anything structurally wrong or CRC-mismatched; out is only
 * valid on true.
 */
bool decodeBatch(std::string_view wire, Batch &out,
                 std::string &error);

} // namespace fosm::repl

#endif // FOSM_REPL_CODEC_HH
