#include "repl/codec.hh"

#include <cstring>

#include "store/crc32c.hh"

namespace fosm::repl {

namespace {

constexpr char replMagic[8] = {'F', 'O', 'S', 'M',
                               'R', 'E', 'P', 'L'};
constexpr std::uint32_t replFormatVersion = 1;
constexpr std::size_t headerSize = 41;
constexpr std::size_t entryHeaderSize = 16;
constexpr std::uint32_t maxLabelLen = 1u << 10;
constexpr std::uint32_t maxKeyLen = 1u << 20;
constexpr std::uint32_t maxValueLen = 1u << 30;

void
putU32(std::string &s, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        s.push_back(static_cast<char>(v >> (8 * i)));
}

void
putU64(std::string &s, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        s.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::string
encodeBatch(const Batch &batch)
{
    std::string wire;
    std::size_t payload = batch.origin.size();
    for (const store::LiveEntry &e : batch.entries)
        payload += entryHeaderSize + e.key.size() + e.value.size();
    wire.reserve(headerSize + payload);

    wire.append(replMagic, sizeof(replMagic));
    putU32(wire, replFormatVersion);
    putU32(wire, 0); // CRC placeholder
    putU32(wire, static_cast<std::uint32_t>(batch.entries.size()));
    putU32(wire, static_cast<std::uint32_t>(batch.origin.size()));
    putU64(wire, batch.upto);
    putU64(wire, batch.storeId);
    wire.push_back(batch.more ? 1 : 0);
    wire.append(batch.origin);
    for (const store::LiveEntry &e : batch.entries) {
        putU32(wire, static_cast<std::uint32_t>(e.key.size()));
        putU32(wire, static_cast<std::uint32_t>(e.value.size()));
        putU64(wire, e.lsn);
        wire.append(e.key);
        wire.append(e.value);
    }

    const std::uint32_t crc =
        store::crc32c(wire.data() + 16, wire.size() - 16);
    for (unsigned i = 0; i < 4; ++i)
        wire[12 + i] = static_cast<char>(crc >> (8 * i));
    return wire;
}

bool
decodeBatch(std::string_view wire, Batch &out, std::string &error)
{
    const auto *data =
        reinterpret_cast<const unsigned char *>(wire.data());
    if (wire.size() < headerSize ||
        std::memcmp(data, replMagic, sizeof(replMagic)) != 0) {
        error = "missing repl batch header";
        return false;
    }
    if (getU32(data + 8) != replFormatVersion) {
        error = "unsupported repl format version " +
                std::to_string(getU32(data + 8));
        return false;
    }
    if (store::crc32c(wire.data() + 16, wire.size() - 16) !=
        getU32(data + 12)) {
        error = "repl batch CRC mismatch";
        return false;
    }
    const std::uint32_t count = getU32(data + 16);
    const std::uint32_t originLen = getU32(data + 20);
    if (originLen > maxLabelLen) {
        error = "implausible origin label length";
        return false;
    }
    out.upto = getU64(data + 24);
    out.storeId = getU64(data + 32);
    out.more = data[40] != 0;

    std::size_t off = headerSize;
    if (off + originLen > wire.size()) {
        error = "truncated origin label";
        return false;
    }
    out.origin.assign(wire.data() + off, originLen);
    off += originLen;

    out.entries.clear();
    out.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (off + entryHeaderSize > wire.size()) {
            error = "truncated entry header at index " +
                    std::to_string(i);
            return false;
        }
        const std::uint32_t keyLen = getU32(data + off);
        const std::uint32_t valueLen = getU32(data + off + 4);
        if (keyLen > maxKeyLen || valueLen > maxValueLen) {
            error = "implausible entry lengths at index " +
                    std::to_string(i);
            return false;
        }
        store::LiveEntry entry;
        entry.lsn = getU64(data + off + 8);
        off += entryHeaderSize;
        if (off + keyLen + valueLen > wire.size()) {
            error = "truncated entry body at index " +
                    std::to_string(i);
            return false;
        }
        entry.key.assign(wire.data() + off, keyLen);
        off += keyLen;
        entry.value.assign(wire.data() + off, valueLen);
        off += valueLen;
        out.entries.push_back(std::move(entry));
    }
    if (off != wire.size()) {
        error = "trailing bytes after last entry";
        return false;
    }
    return true;
}

} // namespace fosm::repl
