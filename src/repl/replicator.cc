#include "repl/replicator.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <unordered_map>

#include "common/hash.hh"
#include "common/logging.hh"
#include "server/client.hh"
#include "store/crc32c.hh"

namespace fosm::repl {

namespace {

/** Suppresses the commit hook while a thread applies replicated
 *  entries, so an apply never re-enters the write-behind queue
 *  (the origin already fanned the entry out to every successor). */
thread_local bool applyingReplicated = false;

struct ApplyGuard
{
    ApplyGuard() { applyingReplicated = true; }
    ~ApplyGuard() { applyingReplicated = false; }
};

constexpr const char *storeIdKey = "m/replStoreId";
constexpr const char *watermarkPrefix = "w/";

bool
splitHostPort(const std::string &label, std::string &host,
              std::uint16_t &port)
{
    const auto colon = label.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= label.size())
        return false;
    host = label.substr(0, colon);
    const long p = std::strtol(label.c_str() + colon + 1, nullptr, 10);
    if (p <= 0 || p > 65535)
        return false;
    port = static_cast<std::uint16_t>(p);
    return true;
}

std::uint64_t
parseU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

/** End-to-end value checksum for /admin/repl/get responses: a
 *  repair must never re-commit bytes that were damaged on the peer
 *  or in flight. */
constexpr const char *valueCrcHeader = "X-Fosm-Crc32c";

std::string
crcHex(std::string_view value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x",
                  store::crc32c(value.data(), value.size()));
    return buf;
}

} // namespace

Replicator::Replicator(ReplConfig config,
                       std::shared_ptr<store::PersistentStore> store,
                       server::MetricsRegistry &metrics)
    : config_(std::move(config)), store_(std::move(store)),
      ring_(config_.vnodes),
      enqueued_(metrics.counter(
          "fosm_repl_entries_enqueued_total",
          "Committed entries queued for write-behind replication")),
      dropped_(metrics.counter(
          "fosm_repl_entries_dropped_total",
          "Write-behind entries dropped to queue overflow "
          "(anti-entropy repairs these)")),
      batchesSent_(metrics.counter(
          "fosm_repl_batches_sent_total",
          "Write-behind batches POSTed to successors")),
      entriesSent_(metrics.counter(
          "fosm_repl_entries_sent_total",
          "Entries shipped in write-behind batches")),
      bytesSent_(metrics.counter(
          "fosm_repl_bytes_sent_total",
          "Value bytes shipped in write-behind batches")),
      sendFailures_(metrics.counter(
          "fosm_repl_send_failures_total",
          "Write-behind batches that failed to deliver")),
      entriesApplied_(metrics.counter(
          "fosm_repl_entries_applied_total",
          "Replicated entries applied to the local store")),
      entriesSkipped_(metrics.counter(
          "fosm_repl_entries_skipped_total",
          "Replicated entries already present locally")),
      bytesApplied_(metrics.counter(
          "fosm_repl_bytes_applied_total",
          "Value bytes applied from replicated entries")),
      pulls_(metrics.counter(
          "fosm_repl_catchup_pulls_total",
          "Anti-entropy pull requests issued")),
      pullFailures_(metrics.counter(
          "fosm_repl_pull_failures_total",
          "Anti-entropy pulls that failed (peer down or bad "
          "response)")),
      catchupEntries_(metrics.counter(
          "fosm_repl_catchup_entries_total",
          "Entries applied via anti-entropy catch-up")),
      catchupBytes_(metrics.counter(
          "fosm_repl_catchup_bytes_total",
          "Value bytes applied via anti-entropy catch-up")),
      watermarkResets_(metrics.counter(
          "fosm_repl_watermark_resets_total",
          "Peer watermarks reset after a store-id epoch change")),
      readRepairHits_(metrics.counter(
          "fosm_repl_read_repair_hits_total",
          "Local misses served from a preference-list peer")),
      readRepairMisses_(metrics.counter(
          "fosm_repl_read_repair_misses_total",
          "Read-repair probes where no peer had the entry")),
      repairEnqueued_(metrics.counter(
          "fosm_repair_enqueued_total",
          "Corrupt keys queued for repair from the preference "
          "list")),
      repairSuccess_(metrics.counter(
          "fosm_repair_success_total",
          "Corrupt keys re-committed from a CRC-verified peer "
          "copy")),
      repairFailures_(metrics.counter(
          "fosm_repair_failures_total",
          "Repair attempts where no peer produced a verified "
          "copy (retried on the next scrub pass)")),
      repairBytes_(metrics.counter(
          "fosm_repair_bytes_total",
          "Value bytes re-committed by corruption repairs")),
      repairDropped_(metrics.counter(
          "fosm_repair_dropped_total",
          "Repair findings dropped to a full repair queue"))
{
    for (const std::string &peer : config_.peers)
        ring_.add(peer);
    metrics.addCallbackGauge(
        "fosm_repl_queue_depth",
        "Write-behind entries waiting to be shipped", [this] {
            std::lock_guard<std::mutex> lock(queueMutex_);
            return static_cast<double>(queue_.size());
        });
}

Replicator::~Replicator() { stop(0); }

bool
Replicator::active() const
{
    return config_.replication >= 2 && ring_.nodes() >= 2 &&
           !config_.self.empty() && store_ != nullptr;
}

void
Replicator::start()
{
    if (started_ || !store_)
        return;

    // Pin this store's epoch: a wiped-and-recreated store restarts
    // its LSNs, which would silently satisfy peers' old watermarks.
    std::string id;
    if (store_->get(storeIdKey, id) && parseU64(id) != 0) {
        storeId_ = parseU64(id);
    } else {
        std::random_device rd;
        do {
            storeId_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
        } while (storeId_ == 0);
        ApplyGuard guard;
        store_->put(storeIdKey, std::to_string(storeId_));
    }

    started_ = true;
    if (!active())
        return;
    store_->setCommitHook([this](const std::string &key,
                                 std::string_view value,
                                 std::uint64_t lsn) {
        onCommit(key, value, lsn);
    });
    worker_ = std::thread([this] { workerLoop(); });
    if (config_.antiEntropyIntervalMs > 0)
        antiEntropy_ = std::thread([this] { antiEntropyLoop(); });
    repairWorker_ = std::thread([this] { repairLoop(); });
}

void
Replicator::stop(int deadlineMs)
{
    bool wasStarted;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        wasStarted = started_;
        if (stopping_) {
            wasStarted = false; // someone already stopped us
        }
    }
    if (wasStarted && deadlineMs > 0)
        flush(deadlineMs);
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    {
        std::lock_guard<std::mutex> lock(repairMutex_);
        repairStopping_ = true;
    }
    repairCv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    if (antiEntropy_.joinable())
        antiEntropy_.join();
    if (repairWorker_.joinable())
        repairWorker_.join();
    if (wasStarted && store_)
        store_->setCommitHook(nullptr);
}

bool
Replicator::replicable(std::string_view key)
{
    return key.rfind("r/", 0) == 0 || key.rfind("c/", 0) == 0 ||
           key.rfind("t/", 0) == 0;
}

std::uint64_t
Replicator::keyDigest(std::string_view storeKey)
{
    // r/ entries embed the canonical cache key the gateway digests
    // for routing; hashing the same bytes keeps this node's notion
    // of "owner" identical to the gateway's.
    if (storeKey.rfind("r/", 0) == 0)
        return fnv1a64(storeKey.substr(2));
    return fnv1a64(storeKey);
}

std::vector<std::string>
Replicator::preferenceFor(const std::string &storeKey) const
{
    std::vector<std::string> labels;
    if (ring_.nodes() == 0)
        return labels;
    const auto route =
        ring_.route(keyDigest(storeKey), config_.replication);
    labels.reserve(route.size());
    for (const std::uint32_t index : route)
        labels.push_back(ring_.name(index));
    return labels;
}

bool
Replicator::ownsKey(const std::string &storeKey) const
{
    if (ring_.nodes() == 0)
        return true;
    return ring_.name(ring_.primary(keyDigest(storeKey))) ==
           config_.self;
}

void
Replicator::onCommit(const std::string &key, std::string_view value,
                     std::uint64_t lsn)
{
    if (applyingReplicated || !replicable(key))
        return;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopping_)
            return;
        while (queue_.size() >= config_.queueMax) {
            queueBytes_ -= queue_.front().value.size();
            queue_.pop_front();
            dropped_.inc(1);
        }
        Pending p;
        p.key = key;
        p.value.assign(value.data(), value.size());
        p.lsn = lsn;
        queueBytes_ += p.value.size();
        queue_.push_back(std::move(p));
    }
    enqueued_.inc(1);
    queueCv_.notify_one();
}

void
Replicator::workerLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait_for(
                lock,
                std::chrono::milliseconds(config_.flushIntervalMs),
                [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                drainCv_.notify_all();
                if (stopping_)
                    return;
                continue;
            }
        }
        drainOnce();
    }
}

bool
Replicator::drainOnce()
{
    // Take one batch off the queue.
    std::vector<Pending> chunk;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        std::size_t bytes = 0;
        while (!queue_.empty() &&
               chunk.size() < config_.batchMaxEntries &&
               (chunk.empty() ||
                bytes + queue_.front().value.size() <=
                    config_.batchMaxBytes)) {
            bytes += queue_.front().value.size();
            queueBytes_ -= queue_.front().value.size();
            chunk.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
    }
    if (chunk.empty())
        return false;

    // Fan each entry out to the other members of its preference
    // list (owner-computed entries go to the successors; an entry
    // computed off-list — failover traffic — also converges onto
    // the list, owner included).
    std::unordered_map<std::string, std::vector<store::LiveEntry>>
        perPeer;
    for (Pending &p : chunk) {
        const auto prefs = preferenceFor(p.key);
        for (const std::string &label : prefs) {
            if (label == config_.self)
                continue;
            store::LiveEntry entry;
            entry.key = p.key;
            entry.value = p.value;
            entry.lsn = p.lsn;
            perPeer[label].push_back(std::move(entry));
        }
    }
    for (auto &[peer, entries] : perPeer)
        sendBatch(peer, std::move(entries));

    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (queue_.empty())
            drainCv_.notify_all();
    }
    return true;
}

void
Replicator::sendBatch(const std::string &peer,
                      std::vector<store::LiveEntry> entries)
{
    std::string host;
    std::uint16_t port = 0;
    if (!splitHostPort(peer, host, port)) {
        sendFailures_.inc(1);
        return;
    }
    Batch batch;
    batch.origin = config_.self;
    batch.storeId = storeId_;
    std::uint64_t valueBytes = 0;
    for (const store::LiveEntry &e : entries)
        valueBytes += e.value.size();
    batch.entries = std::move(entries);

    server::HttpClient client(host, port);
    client.setTimeoutMs(config_.requestTimeoutMs);
    server::ClientResponse response;
    const bool ok = client.request(
        "POST", "/admin/repl/apply", encodeBatch(batch),
        {{"Content-Type", replContentType}}, response);
    if (!ok || response.status != 200) {
        // Best-effort by design: the peer may be down or draining.
        // Anti-entropy pulls repair whatever this batch carried.
        sendFailures_.inc(1);
        return;
    }
    batchesSent_.inc(1);
    entriesSent_.inc(batch.entries.size());
    bytesSent_.inc(valueBytes);
}

bool
Replicator::flush(int deadlineMs)
{
    queueCv_.notify_all();
    std::unique_lock<std::mutex> lock(queueMutex_);
    return drainCv_.wait_for(
        lock, std::chrono::milliseconds(deadlineMs),
        [this] { return queue_.empty(); });
}

// -- Anti-entropy --------------------------------------------------

void
Replicator::antiEntropyLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait_for(lock,
                              std::chrono::milliseconds(
                                  config_.antiEntropyIntervalMs),
                              [this] { return stopping_; });
            if (stopping_)
                return;
        }
        for (const std::string &peer : config_.peers) {
            if (peer == config_.self)
                continue;
            {
                std::lock_guard<std::mutex> lock(queueMutex_);
                if (stopping_)
                    return;
            }
            pullFromPeer(peer);
        }
    }
}

std::size_t
Replicator::catchUp()
{
    std::size_t applied = 0;
    for (const std::string &peer : config_.peers) {
        if (peer == config_.self)
            continue;
        applied += pullFromPeer(peer);
    }
    return applied;
}

std::pair<std::uint64_t, std::uint64_t>
Replicator::watermarkFor(const std::string &peer) const
{
    std::string value;
    if (!store_ || !store_->get(watermarkPrefix + peer, value))
        return {0, 0};
    const auto colon = value.find(':');
    if (colon == std::string::npos)
        return {0, 0};
    return {parseU64(value.substr(0, colon)),
            parseU64(value.substr(colon + 1))};
}

void
Replicator::putWatermark(const std::string &peer,
                         std::uint64_t storeId, std::uint64_t lsn)
{
    if (!store_)
        return;
    ApplyGuard guard;
    store_->put(watermarkPrefix + peer,
                std::to_string(storeId) + ":" + std::to_string(lsn));
}

std::size_t
Replicator::pullFromPeer(const std::string &peer)
{
    std::string host;
    std::uint16_t port = 0;
    if (!splitHostPort(peer, host, port))
        return 0;

    std::size_t totalApplied = 0;
    // Bounded: a peer with an enormous backlog hands us at most
    // maxRounds * pullMaxEntries per sweep; the next sweep resumes
    // from the advanced watermark.
    for (int round = 0; round < 4096; ++round) {
        const auto [recordedId, recordedLsn] = watermarkFor(peer);
        json::Value body = json::Value::object();
        body.set("requester", config_.self);
        body.set("since",
                 json::Value(static_cast<std::uint64_t>(recordedLsn)));
        body.set("storeId", std::to_string(recordedId));

        server::HttpClient client(host, port);
        client.setTimeoutMs(config_.requestTimeoutMs);
        server::ClientResponse response;
        pulls_.inc(1);
        if (!client.request("POST", "/admin/repl/pull", body.dump(),
                            response) ||
            response.status != 200) {
            pullFailures_.inc(1);
            break;
        }
        Batch batch;
        std::string error;
        if (!decodeBatch(response.body, batch, error)) {
            warn("fosm-repl: bad pull response from ", peer, ": ",
                 error);
            pullFailures_.inc(1);
            break;
        }
        if (recordedId != 0 && batch.storeId != recordedId) {
            // The peer's store was recreated; its LSNs restarted and
            // it already answered from zero (the origin ignores our
            // stale watermark on epoch mismatch).
            watermarkResets_.inc(1);
        }
        std::uint64_t applied = 0, skipped = 0, bytes = 0;
        applyEntries(batch.entries, applied, skipped, bytes);
        catchupEntries_.inc(applied);
        catchupBytes_.inc(bytes);
        entriesSkipped_.inc(skipped);
        totalApplied += applied;
        putWatermark(peer, batch.storeId, batch.upto);
        if (!batch.more)
            break;
    }
    return totalApplied;
}

bool
Replicator::applyEntries(
    const std::vector<store::LiveEntry> &entries,
    std::uint64_t &applied, std::uint64_t &skipped,
    std::uint64_t &bytes)
{
    if (!store_)
        return false;
    ApplyGuard guard;
    for (const store::LiveEntry &entry : entries) {
        if (!replicable(entry.key)) {
            ++skipped;
            continue;
        }
        if (store_->contains(entry.key)) {
            // Deterministic values: same key means same bytes, so
            // presence is sufficiency.
            ++skipped;
            continue;
        }
        store_->put(entry.key, entry.value);
        ++applied;
        bytes += entry.value.size();
    }
    return true;
}

// -- Read-repair ---------------------------------------------------

bool
Replicator::fetchFromPeers(const std::string &storeKey,
                           std::string &value)
{
    if (!active() || !replicable(storeKey))
        return false;
    json::Value body = json::Value::object();
    body.set("key", storeKey);
    const std::string request = body.dump();
    for (const std::string &label : preferenceFor(storeKey)) {
        if (label == config_.self)
            continue;
        std::string host;
        std::uint16_t port = 0;
        if (!splitHostPort(label, host, port))
            continue;
        server::HttpClient client(host, port);
        client.setTimeoutMs(config_.readRepairTimeoutMs);
        server::ClientResponse response;
        if (!client.request("POST", "/admin/repl/get", request,
                            response) ||
            response.status != 200)
            continue;
        const std::string &crc = response.header("x-fosm-crc32c");
        if (!crc.empty() && crc != crcHex(response.body))
            continue; // damaged in flight; try the next peer
        value = response.body;
        ApplyGuard guard;
        store_->put(storeKey, value);
        readRepairHits_.inc(1);
        return true;
    }
    readRepairMisses_.inc(1);
    return false;
}

// -- Corruption repair ---------------------------------------------

void
Replicator::enqueueRepair(const std::string &storeKey)
{
    // Non-replicated keys have no authoritative peer copy; they heal
    // when the serving layer recomputes and rewrites them.
    if (!active() || !replicable(storeKey))
        return;
    {
        std::lock_guard<std::mutex> lock(repairMutex_);
        if (repairStopping_ ||
            repairPending_.count(storeKey) > 0)
            return;
        if (repairQueue_.size() >= config_.repairQueueMax) {
            repairDropped_.inc(1);
            return;
        }
        repairPending_.insert(storeKey);
        repairQueue_.push_back(storeKey);
    }
    repairEnqueued_.inc(1);
    repairCv_.notify_one();
}

bool
Replicator::repairKey(const std::string &storeKey)
{
    if (!active() || !replicable(storeKey) || !store_)
        return false;
    json::Value body = json::Value::object();
    body.set("key", storeKey);
    const std::string request = body.dump();
    // The whole preference list minus self is authoritative — for a
    // key this node owns, the successors hold the warm copies.
    for (const std::string &label : preferenceFor(storeKey)) {
        if (label == config_.self)
            continue;
        std::string host;
        std::uint16_t port = 0;
        if (!splitHostPort(label, host, port))
            continue;
        server::HttpClient client(host, port);
        client.setTimeoutMs(config_.repairTimeoutMs);
        server::ClientResponse response;
        if (!client.request("POST", "/admin/repl/get", request,
                            response) ||
            response.status != 200)
            continue;
        const std::string &crc = response.header("x-fosm-crc32c");
        if (!crc.empty() && crc != crcHex(response.body)) {
            warn("fosm-repair: CRC mismatch on copy of ", storeKey,
                 " from ", label);
            continue;
        }
        {
            // Re-commit: the put() clears the q/ quarantine mark.
            ApplyGuard guard;
            store_->put(storeKey, response.body);
        }
        repairSuccess_.inc(1);
        repairBytes_.inc(response.body.size());
        return true;
    }
    repairFailures_.inc(1);
    return false;
}

std::size_t
Replicator::repairQueueDepth() const
{
    std::lock_guard<std::mutex> lock(repairMutex_);
    return repairQueue_.size();
}

void
Replicator::repairLoop()
{
    while (true) {
        std::string key;
        {
            std::unique_lock<std::mutex> lock(repairMutex_);
            repairCv_.wait(lock, [this] {
                return repairStopping_ || !repairQueue_.empty();
            });
            if (repairStopping_)
                return;
            key = std::move(repairQueue_.front());
            repairQueue_.pop_front();
        }
        repairKey(key);
        {
            // A finding that arrives mid-repair is deduped away;
            // if this attempt failed, the next scrub pass
            // re-announces the standing quarantine mark.
            std::lock_guard<std::mutex> lock(repairMutex_);
            repairPending_.erase(key);
        }
    }
}

// -- HTTP endpoints ------------------------------------------------

bool
Replicator::handles(const std::string &path)
{
    return path.rfind("/admin/repl/", 0) == 0;
}

server::HttpResponse
Replicator::handle(const server::HttpRequest &request)
{
    const std::string path = request.path();
    if (request.method != "POST" && path != "/admin/repl/status")
        return server::HttpResponse::text(405,
                                          "method not allowed\n");
    if (path == "/admin/repl/apply")
        return handleApply(request);
    if (path == "/admin/repl/pull")
        return handlePull(request);
    if (path == "/admin/repl/get")
        return handleGet(request);
    if (path == "/admin/repl/status")
        return handleStatus(request);
    return server::HttpResponse::text(404, "not found\n");
}

server::HttpResponse
Replicator::handleApply(const server::HttpRequest &request)
{
    Batch batch;
    std::string error;
    if (!decodeBatch(request.body, batch, error))
        return server::HttpResponse::text(400, error + "\n");
    std::uint64_t applied = 0, skipped = 0, bytes = 0;
    if (!applyEntries(batch.entries, applied, skipped, bytes))
        return server::HttpResponse::text(503, "store disabled\n");
    entriesApplied_.inc(applied);
    entriesSkipped_.inc(skipped);
    bytesApplied_.inc(bytes);
    json::Value out = json::Value::object();
    out.set("applied", json::Value(applied));
    out.set("skipped", json::Value(skipped));
    return server::HttpResponse::json(200, out.dump());
}

server::HttpResponse
Replicator::handlePull(const server::HttpRequest &request)
{
    json::Value body;
    std::string error;
    if (!json::parse(request.body, body, &error))
        return server::HttpResponse::text(400, error + "\n");
    const json::Value *requester = body.find("requester");
    if (!requester || !requester->isString())
        return server::HttpResponse::text(400,
                                          "missing requester\n");
    const std::string &who = requester->asString();
    if (std::find(config_.peers.begin(), config_.peers.end(), who) ==
        config_.peers.end())
        return server::HttpResponse::text(403, "unknown peer\n");
    const json::Value *sinceField = body.find("since");
    std::uint64_t since =
        sinceField ? static_cast<std::uint64_t>(
                         sinceField->asInt(0))
                   : 0;
    const json::Value *idField = body.find("storeId");
    const std::uint64_t requesterView =
        idField ? parseU64(idField->asString()) : 0;
    if (requesterView != 0 && requesterView != storeId_) {
        // The requester's watermark references a previous life of
        // this store; answer from the beginning of this one.
        since = 0;
    }

    const std::uint64_t snapshotMax = store_->maxLsn();
    bool more = false;
    auto entries = store_->collectSince(
        since, config_.pullMaxEntries, config_.pullMaxBytes,
        [this, &who](const std::string &key) {
            if (!replicable(key))
                return false;
            const auto prefs = preferenceFor(key);
            return std::find(prefs.begin(), prefs.end(), who) !=
                   prefs.end();
        },
        more);

    Batch batch;
    batch.origin = config_.self;
    batch.storeId = storeId_;
    batch.more = more;
    const std::uint64_t lastLsn =
        entries.empty() ? since : entries.back().lsn;
    batch.upto = more ? lastLsn : std::max(lastLsn, snapshotMax);
    batch.entries = std::move(entries);

    server::HttpResponse response;
    response.status = 200;
    response.body = encodeBatch(batch);
    response.setHeader("Content-Type", replContentType);
    return response;
}

server::HttpResponse
Replicator::handleGet(const server::HttpRequest &request)
{
    json::Value body;
    std::string error;
    if (!json::parse(request.body, body, &error))
        return server::HttpResponse::text(400, error + "\n");
    const json::Value *key = body.find("key");
    if (!key || !key->isString())
        return server::HttpResponse::text(400, "missing key\n");
    std::string value;
    if (!store_ || !store_->get(key->asString(), value))
        return server::HttpResponse::text(404, "miss\n");
    // Never export damage: a peer asking for this copy may be
    // repairing its own, so re-verify the record even when
    // verify-on-read is off (and report our own copy corrupt).
    std::uint64_t lsn = 0;
    if (store_->verifyRecord(key->asString(), lsn) ==
        store::RecordCheck::Corrupt)
        return server::HttpResponse::text(404, "corrupt\n");
    server::HttpResponse response;
    response.status = 200;
    response.setHeader(valueCrcHeader, crcHex(value));
    response.body = std::move(value);
    response.setHeader("Content-Type", "application/octet-stream");
    return response;
}

server::HttpResponse
Replicator::handleStatus(const server::HttpRequest &)
{
    return server::HttpResponse::json(200, statusJson().dump());
}

// -- Introspection -------------------------------------------------

ReplCounters
Replicator::counters() const
{
    ReplCounters c;
    c.enqueued = enqueued_.value();
    c.dropped = dropped_.value();
    c.batchesSent = batchesSent_.value();
    c.entriesSent = entriesSent_.value();
    c.bytesSent = bytesSent_.value();
    c.sendFailures = sendFailures_.value();
    c.entriesApplied = entriesApplied_.value();
    c.entriesSkipped = entriesSkipped_.value();
    c.bytesApplied = bytesApplied_.value();
    c.pulls = pulls_.value();
    c.pullFailures = pullFailures_.value();
    c.catchupEntries = catchupEntries_.value();
    c.catchupBytes = catchupBytes_.value();
    c.watermarkResets = watermarkResets_.value();
    c.readRepairHits = readRepairHits_.value();
    c.readRepairMisses = readRepairMisses_.value();
    c.repairEnqueued = repairEnqueued_.value();
    c.repairSuccess = repairSuccess_.value();
    c.repairFailures = repairFailures_.value();
    c.repairBytes = repairBytes_.value();
    c.repairDropped = repairDropped_.value();
    return c;
}

OwnershipCounts
Replicator::ownershipCounts() const
{
    OwnershipCounts counts;
    if (!store_)
        return counts;
    store_->forEachLiveKey([this, &counts](const std::string &key,
                                           std::uint64_t) {
        if (!replicable(key)) {
            ++counts.meta;
            return;
        }
        const auto prefs = preferenceFor(key);
        if (prefs.empty() || prefs.front() == config_.self) {
            ++counts.owned;
        } else if (std::find(prefs.begin(), prefs.end(),
                             config_.self) != prefs.end()) {
            ++counts.replica;
        } else {
            ++counts.foreign;
        }
    });
    return counts;
}

json::Value
Replicator::statusJson() const
{
    json::Value out = json::Value::object();
    out.set("self", config_.self);
    out.set("replication",
            json::Value(static_cast<std::uint64_t>(
                config_.replication)));
    out.set("vnodes", json::Value(static_cast<std::uint64_t>(
                          config_.vnodes)));
    out.set("active", json::Value(active()));
    out.set("storeId", std::to_string(storeId_));
    json::Value peers = json::Value::array();
    for (const std::string &peer : config_.peers)
        peers.push(json::Value(peer));
    out.set("peers", std::move(peers));
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        out.set("queueDepth", json::Value(static_cast<std::uint64_t>(
                                  queue_.size())));
        out.set("queueBytes", json::Value(static_cast<std::uint64_t>(
                                  queueBytes_)));
    }

    const ReplCounters c = counters();
    json::Value counters = json::Value::object();
    counters.set("enqueued", json::Value(c.enqueued));
    counters.set("dropped", json::Value(c.dropped));
    counters.set("batchesSent", json::Value(c.batchesSent));
    counters.set("entriesSent", json::Value(c.entriesSent));
    counters.set("bytesSent", json::Value(c.bytesSent));
    counters.set("sendFailures", json::Value(c.sendFailures));
    counters.set("entriesApplied", json::Value(c.entriesApplied));
    counters.set("entriesSkipped", json::Value(c.entriesSkipped));
    counters.set("bytesApplied", json::Value(c.bytesApplied));
    counters.set("pulls", json::Value(c.pulls));
    counters.set("pullFailures", json::Value(c.pullFailures));
    counters.set("catchupEntries", json::Value(c.catchupEntries));
    counters.set("catchupBytes", json::Value(c.catchupBytes));
    counters.set("watermarkResets",
                 json::Value(c.watermarkResets));
    counters.set("readRepairHits", json::Value(c.readRepairHits));
    counters.set("readRepairMisses",
                 json::Value(c.readRepairMisses));
    counters.set("repairEnqueued", json::Value(c.repairEnqueued));
    counters.set("repairSuccess", json::Value(c.repairSuccess));
    counters.set("repairFailures", json::Value(c.repairFailures));
    counters.set("repairBytes", json::Value(c.repairBytes));
    counters.set("repairDropped", json::Value(c.repairDropped));
    out.set("counters", std::move(counters));

    json::Value marks = json::Value::object();
    for (const std::string &peer : config_.peers) {
        if (peer == config_.self)
            continue;
        const auto [id, lsn] = watermarkFor(peer);
        json::Value mark = json::Value::object();
        mark.set("storeId", std::to_string(id));
        mark.set("lsn", json::Value(lsn));
        marks.set(peer, std::move(mark));
    }
    out.set("watermarks", std::move(marks));

    const OwnershipCounts o = ownershipCounts();
    json::Value ownership = json::Value::object();
    ownership.set("owned", json::Value(o.owned));
    ownership.set("replica", json::Value(o.replica));
    ownership.set("foreign", json::Value(o.foreign));
    ownership.set("meta", json::Value(o.meta));
    out.set("ownership", std::move(ownership));
    return out;
}

} // namespace fosm::repl
