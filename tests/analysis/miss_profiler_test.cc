/** @file Unit tests for the functional miss-event profiler. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "analysis/miss_profiler.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace fosm {
namespace {

ProfilerConfig
tinyConfig()
{
    ProfilerConfig c;
    c.hierarchy.l1i = {"l1i", 1024, 2, 64, ReplPolicyKind::Lru};
    c.hierarchy.l1d = {"l1d", 1024, 2, 64, ReplPolicyKind::Lru};
    c.hierarchy.l2 = {"l2", 8192, 4, 64, ReplPolicyKind::Lru};
    return c;
}

TEST(MissProfiler, CountsLoadsAndStores)
{
    test::TraceBuilder b;
    b.load(1, 0x100).store(0x200).load(2, 0x100).alu(3);
    const MissProfile p = profileTrace(b.take(), tinyConfig());
    EXPECT_EQ(p.instructions, 4u);
    EXPECT_EQ(p.loads, 2u);
    EXPECT_EQ(p.stores, 1u);
}

TEST(MissProfiler, ColdLoadsAreLongMisses)
{
    test::TraceBuilder b;
    // Three loads to distinct lines far apart: all cold -> memory.
    b.load(1, 0x100000).load(2, 0x200000).load(3, 0x300000);
    const MissProfile p = profileTrace(b.take(), tinyConfig());
    EXPECT_EQ(p.longLoadMisses, 3u);
    EXPECT_EQ(p.shortLoadMisses, 0u);
}

TEST(MissProfiler, L2HitIsShortMiss)
{
    test::TraceBuilder b;
    // Two conflicting L1 lines (1KB 2-way 64B -> set stride 512B),
    // third access evicted from L1 but still in L2.
    b.load(1, 0x0).load(2, 0x200).load(3, 0x400).load(4, 0x0);
    const MissProfile p = profileTrace(b.take(), tinyConfig());
    EXPECT_EQ(p.longLoadMisses, 3u);
    EXPECT_EQ(p.shortLoadMisses, 1u);
}

TEST(MissProfiler, LdmGapsRecorded)
{
    test::TraceBuilder b;
    b.load(1, 0x100000); // long miss at index 0
    b.alu(2);
    b.alu(3);
    b.load(4, 0x200000); // long miss at index 3
    const MissProfile p = profileTrace(b.take(), tinyConfig());
    ASSERT_EQ(p.ldmGaps.size(), 1u);
    EXPECT_EQ(p.ldmGaps[0], 3u);
}

TEST(MissProfile, GroupFractionsIsolated)
{
    MissProfile p;
    p.longLoadMisses = 3;
    p.ldmGaps = {500, 500}; // all gaps exceed any small ROB
    const std::vector<double> f = p.ldmGroupFractions(128);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_NEAR(f[0], 1.0, 1e-12);
    EXPECT_NEAR(p.ldmOverlapFactor(128), 1.0, 1e-12);
}

TEST(MissProfile, GroupFractionsPaired)
{
    MissProfile p;
    p.longLoadMisses = 4;
    p.ldmGaps = {10, 500, 10}; // two pairs
    const std::vector<double> f = p.ldmGroupFractions(128);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_NEAR(f[0], 0.0, 1e-12);
    EXPECT_NEAR(f[1], 1.0, 1e-12);
    // Equation (7): paired misses each cost half the isolated
    // penalty, so the overlap factor is 1/2.
    EXPECT_NEAR(p.ldmOverlapFactor(128), 0.5, 1e-12);
}

TEST(MissProfile, GroupAnchoredAtFirstMiss)
{
    // Chain of misses each 100 apart: chained grouping would merge
    // them all, but the ROB only reaches rob_size past the FIRST miss
    // of the group, so with rob_size 128 a group holds just 2 misses
    // (span 100 then 200 > 128).
    MissProfile p;
    p.longLoadMisses = 6;
    p.ldmGaps = {100, 100, 100, 100, 100};
    const std::vector<double> f = p.ldmGroupFractions(128);
    ASSERT_GE(f.size(), 2u);
    EXPECT_NEAR(f[1], 1.0, 1e-12); // all in groups of 2
    EXPECT_NEAR(p.ldmOverlapFactor(128), 0.5, 1e-12);
}

TEST(MissProfile, OverlapFactorEqualsGroupsOverMisses)
{
    MissProfile p;
    p.longLoadMisses = 5;
    p.ldmGaps = {10, 10, 500, 10}; // group of 3, group of 2
    // Groups: {0,1,2} (span 20 < 128), {3,4}.
    EXPECT_NEAR(p.ldmOverlapFactor(128), 2.0 / 5.0, 1e-12);
}

TEST(MissProfile, NoMissesFactorIsOne)
{
    MissProfile p;
    EXPECT_NEAR(p.ldmOverlapFactor(128), 1.0, 1e-12);
    EXPECT_TRUE(p.ldmGroupFractions(128).empty() ||
                p.ldmGroupFractions(128)[0] == 0.0);
}

TEST(MissProfiler, BranchStatsWithIdealPredictor)
{
    test::TraceBuilder b;
    b.branch(true).branch(false).alu(1);
    ProfilerConfig c = tinyConfig();
    c.predictor = PredictorKind::Ideal;
    const MissProfile p = profileTrace(b.take(), c);
    EXPECT_EQ(p.branches, 2u);
    EXPECT_EQ(p.mispredictions, 0u);
    EXPECT_EQ(p.mispredictRate(), 0.0);
}

TEST(MissProfiler, AvgLatencyIncludesShortMisses)
{
    // One load that is a short miss (L1 conflict, L2 hit): latency
    // becomes loadHit + l2Latency.
    test::TraceBuilder b;
    b.load(1, 0x0).load(2, 0x200).load(3, 0x400).load(4, 0x0);
    ProfilerConfig c = tinyConfig();
    const MissProfile p = profileTrace(b.take(), c);
    // Three long misses count the base load latency (2); the short
    // miss counts 2 + 8 = 10. Mean = (2+2+2+10)/4 = 4.
    EXPECT_NEAR(p.avgLatency, 4.0, 1e-12);
}

TEST(MissProfiler, IcacheMissOnColdCode)
{
    test::TraceBuilder b;
    b.alu(1).at(0x1000);
    b.alu(2).at(0x1004); // same line: hit
    b.alu(3).at(0x8000); // new line: miss
    const MissProfile p = profileTrace(b.take(), tinyConfig());
    EXPECT_EQ(p.icacheL1Misses, 2u);
}

TEST(MissProfiler, RatesPerInstruction)
{
    test::TraceBuilder b;
    for (int i = 0; i < 10; ++i)
        b.alu(1).at(0x1000 + (i % 2) * 4);
    const MissProfile p = profileTrace(b.take(), tinyConfig());
    EXPECT_NEAR(p.icacheMissesPerInst(), 0.1, 1e-12);
}

TEST(MissProfiler, RealWorkloadSanity)
{
    const Trace t = generateTrace(profileByName("gzip"), 50000);
    const MissProfile p = profileTrace(t);
    EXPECT_EQ(p.instructions, 50000u);
    EXPECT_GT(p.branches, 1000u);
    EXPECT_GT(p.mispredictRate(), 0.005);
    EXPECT_LT(p.mispredictRate(), 0.30);
    EXPECT_GT(p.avgLatency, 1.0);
    EXPECT_LT(p.avgLatency, 4.0);
    EXPECT_GT(p.instsBetweenMispredicts(), 10.0);
}

TEST(MissProfiler, McfHasClusteredLongMisses)
{
    const Trace t = generateTrace(profileByName("mcf"), 50000);
    const MissProfile p = profileTrace(t);
    EXPECT_GT(p.longLoadMisses, 100u);
    // Clustering: overlap factor well below 1 at the baseline ROB.
    EXPECT_LT(p.ldmOverlapFactor(128), 0.8);
}

} // namespace
} // namespace fosm
