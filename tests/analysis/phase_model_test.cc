/** @file Tests for phase segmentation and the phase model. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "analysis/phase_model.hh"
#include "experiments/workbench.hh"

namespace fosm {
namespace {

TEST(SliceTrace, ExtractsRange)
{
    const Trace t = test::independentStream(100);
    const Trace slice = sliceTrace(t, 10, 20);
    ASSERT_EQ(slice.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(slice[i].pc, t[10 + i].pc);
}

TEST(SliceTrace, EmptyAndFullRanges)
{
    const Trace t = test::independentStream(50);
    EXPECT_EQ(sliceTrace(t, 5, 5).size(), 0u);
    EXPECT_EQ(sliceTrace(t, 0, 50).size(), 50u);
}

TEST(SliceTraceDeath, RejectsBadBounds)
{
    const Trace t = test::independentStream(10);
    EXPECT_DEATH(sliceTrace(t, 5, 20), "out of range");
}

TEST(ConcatTraces, PreservesOrderAndSize)
{
    const Trace a = test::serialChain(30);
    const Trace b = test::independentStream(40);
    const Trace c = concatTraces({&a, &b, &a}, "abc");
    ASSERT_EQ(c.size(), 100u);
    EXPECT_EQ(c.name(), "abc");
    EXPECT_EQ(c[0].pc, a[0].pc);
    EXPECT_EQ(c[30].pc, b[0].pc);
    EXPECT_EQ(c[70].pc, a[0].pc);
}

TEST(ProfilePhases, SegmentsCoverTrace)
{
    const Trace t = generateTrace(profileByName("gzip"), 50000);
    const std::vector<PhaseData> phases = profilePhases(t, 12000);
    ASSERT_GE(phases.size(), 3u);
    EXPECT_EQ(phases.front().begin, 0u);
    EXPECT_EQ(phases.back().end, t.size());
    for (std::size_t p = 1; p < phases.size(); ++p)
        EXPECT_EQ(phases[p].begin, phases[p - 1].end);

    std::uint64_t insts = 0;
    for (const PhaseData &phase : phases) {
        insts += phase.profile.instructions;
        EXPECT_EQ(phase.profile.instructions,
                  phase.end - phase.begin);
        EXPECT_EQ(phase.iwPoints.size(), 5u);
    }
    EXPECT_EQ(insts, t.size());
}

TEST(ProfilePhases, ShortTailMerged)
{
    const Trace t = test::independentStream(24000);
    // 10k segments with a 4k tail (< half a phase): merged -> 2
    // phases of 10k and 14k.
    const std::vector<PhaseData> phases = profilePhases(t, 10000);
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[1].end - phases[1].begin, 14000u);
}

TEST(ProfilePhases, StateCarriesAcrossSegments)
{
    // Second visit to the same code/data is warm even when it falls
    // in a new segment: segment 2's I-cache misses must be far below
    // segment 1's compulsory misses.
    test::TraceBuilder b;
    for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 4000; ++i)
            b.alu(static_cast<RegIndex>(i % 32))
                .at(0x10000 + i * 4);
    }
    const std::vector<PhaseData> phases =
        profilePhases(b.take(), 4000);
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_GT(phases[0].profile.icacheL1Misses, 50u);
    EXPECT_LT(phases[1].profile.icacheL2Misses,
              phases[0].profile.icacheL2Misses / 4);
}

TEST(PhaseModel, DetectsAlternatingBehaviour)
{
    const Trace quiet = generateTrace(profileByName("eon"), 40000);
    const Trace missy = generateTrace(profileByName("mcf"), 40000);
    const Trace program =
        concatTraces({&quiet, &missy}, "two-phase");
    const std::vector<PhaseData> phases =
        profilePhases(program, 40000);
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_GT(phases[1].profile.longLoadMissesPerInst(),
              5.0 * phases[0].profile.longLoadMissesPerInst());
}

TEST(PhaseModel, WeightedCpiTracksSimulation)
{
    const Trace a = generateTrace(profileByName("vortex"), 50000);
    const Trace b = generateTrace(profileByName("twolf"), 50000);
    const Trace program = concatTraces({&a, &b}, "phased");
    const SimStats sim =
        simulateTrace(program, Workbench::baselineSimConfig());

    const MachineConfig machine = Workbench::baselineMachine();
    const FirstOrderModel model(machine);
    const std::vector<PhaseData> phases =
        profilePhases(program, 50000);
    double weighted = 0.0;
    for (const PhaseData &phase : phases) {
        const IWCharacteristic iw = IWCharacteristic::fromPoints(
            phase.iwPoints, phase.profile.avgLatency, machine.width);
        weighted += model.evaluate(iw, phase.profile).total() *
                    static_cast<double>(phase.profile.instructions) /
                    static_cast<double>(program.size());
    }
    EXPECT_LT(relativeError(weighted, sim.cpi()), 0.25);
}

} // namespace
} // namespace fosm
