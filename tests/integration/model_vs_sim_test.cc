/** @file Integration tests: the first-order model against the
 *  detailed simulator on the 12 workloads (the Figure 15 claim). */

#include <gtest/gtest.h>

#include <cstdlib>

#include "experiments/workbench.hh"

namespace fosm {
namespace {

/** Shared workbench so traces build once per process. */
Workbench &
bench()
{
    static Workbench wb;
    return wb;
}

/** Per-benchmark model-vs-sim error for the baseline machine. */
double
benchmarkError(const std::string &name)
{
    const WorkloadData &data = bench().workload(name);
    const FirstOrderModel model(Workbench::baselineMachine());
    const CpiBreakdown cpi = model.evaluate(data.iw, data.missProfile);
    const SimStats sim =
        simulateTrace(data.trace, Workbench::baselineSimConfig());
    return relativeError(cpi.total(), sim.cpi());
}

class ModelAccuracy : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelAccuracy, PerBenchmarkErrorBounded)
{
    // The paper's worst case is 13%; allow headroom for our shorter
    // synthetic traces.
    EXPECT_LT(benchmarkError(GetParam()), 0.25) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Spec, ModelAccuracy,
    ::testing::Values("bzip", "crafty", "eon", "gap", "gcc", "gzip",
                      "mcf", "parser", "perl", "twolf", "vortex",
                      "vpr"));

TEST(ModelAccuracy, MeanErrorNearPaper)
{
    // Paper: "performance estimates that, on average, are within
    // 5.8% of detailed simulation".
    double sum = 0.0;
    for (const std::string &name : Workbench::benchmarks())
        sum += benchmarkError(name);
    const double mean = sum / Workbench::benchmarks().size();
    EXPECT_LT(mean, 0.10);
}

TEST(ModelAccuracy, IdealIpcMatchesIdealSim)
{
    // The steady-state component alone against the all-ideal
    // simulator.
    for (const char *name : {"gzip", "vortex", "crafty"}) {
        const WorkloadData &data = bench().workload(name);
        SimConfig cfg = Workbench::baselineSimConfig();
        cfg.options.idealBranchPredictor = true;
        cfg.options.idealIcache = true;
        cfg.options.idealDcache = true;
        const SimStats ideal = simulateTrace(data.trace, cfg);
        const TransientAnalyzer transient(
            data.iw, Workbench::baselineMachine());
        EXPECT_NEAR(transient.steadyIpc(), ideal.ipc(), 0.5)
            << name;
    }
}

TEST(ModelAccuracy, StackComponentsAllNonNegative)
{
    const FirstOrderModel model(Workbench::baselineMachine());
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &data = bench().workload(name);
        const CpiBreakdown b =
            model.evaluate(data.iw, data.missProfile);
        EXPECT_GT(b.ideal, 0.0) << name;
        EXPECT_GE(b.brmisp, 0.0) << name;
        EXPECT_GE(b.icacheL1, 0.0) << name;
        EXPECT_GE(b.icacheL2, 0.0) << name;
        EXPECT_GE(b.dcacheLong, 0.0) << name;
    }
}

TEST(ModelAccuracy, McfDominatedByLongMisses)
{
    // Figure 16: mcf's CPI stack is mostly long D-cache misses.
    const WorkloadData &data = bench().workload("mcf");
    const FirstOrderModel model(Workbench::baselineMachine());
    const CpiBreakdown b = model.evaluate(data.iw, data.missProfile);
    EXPECT_GT(b.dcacheLong / b.total(), 0.4);
}

TEST(ModelAccuracy, GzipDominatedByBranches)
{
    // Figure 16: gzip's CPI loss is mostly branch mispredictions.
    const WorkloadData &data = bench().workload("gzip");
    const FirstOrderModel model(Workbench::baselineMachine());
    const CpiBreakdown b = model.evaluate(data.iw, data.missProfile);
    const double loss = b.total() - b.ideal;
    EXPECT_GT(b.brmisp / loss, 0.4);
}

TEST(ModelAccuracy, Table1BetaOrdering)
{
    // Table 1: beta(vpr) < beta(gzip) < beta(vortex).
    const double beta_vpr = bench().workload("vpr").iw.beta();
    const double beta_gzip = bench().workload("gzip").iw.beta();
    const double beta_vortex = bench().workload("vortex").iw.beta();
    EXPECT_LT(beta_vpr, beta_gzip);
    EXPECT_LT(beta_gzip, beta_vortex);
    // And the ranges are near the paper's values.
    EXPECT_NEAR(beta_vpr, 0.3, 0.15);
    EXPECT_NEAR(beta_gzip, 0.5, 0.15);
    EXPECT_NEAR(beta_vortex, 0.7, 0.15);
}

TEST(ModelAccuracy, Table1LatencyOrdering)
{
    // Table 1: L(gzip) < L(vortex) < L(vpr), roughly 1.5/1.6/2.2.
    const double l_gzip =
        bench().workload("gzip").missProfile.avgLatency;
    const double l_vpr =
        bench().workload("vpr").missProfile.avgLatency;
    EXPECT_LT(l_gzip, l_vpr);
    EXPECT_NEAR(l_vpr, 2.2, 0.4);
}

} // namespace
} // namespace fosm
