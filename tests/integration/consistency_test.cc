/**
 * @file
 * Cross-component consistency: the functional profiler and the
 * detailed simulator share the cache/predictor implementations and
 * walk the same trace, so their *functional* counts must agree - the
 * profiler being a faithful cheap stand-in for the simulator's miss
 * streams is what makes the model's inputs valid.
 */

#include <gtest/gtest.h>

#include "experiments/workbench.hh"

namespace fosm {
namespace {

class Consistency : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Consistency, ProfilerMatchesSimulatorCounts)
{
    const Trace t =
        generateTrace(profileByName(GetParam()), 60000);
    const MissProfile profile =
        profileTrace(t, Workbench::baselineProfilerConfig());
    const SimStats sim =
        simulateTrace(t, Workbench::baselineSimConfig());

    // Fetch is in trace order in both: I-cache streams identical.
    EXPECT_EQ(profile.icacheL1Misses, sim.icacheL1Misses);
    EXPECT_EQ(profile.icacheL2Misses, sim.icacheL2Misses);

    // Branch stream identical (same predictor, same order).
    EXPECT_EQ(profile.branches, sim.branches);
    EXPECT_EQ(profile.mispredictions, sim.mispredictions);

    // Data accesses happen at issue in the simulator, so out-of-order
    // issue can permute them; counts agree within a small tolerance.
    const double short_ratio =
        static_cast<double>(sim.shortLoadMisses) /
        static_cast<double>(profile.shortLoadMisses);
    const double long_ratio =
        static_cast<double>(sim.longLoadMisses) /
        static_cast<double>(profile.longLoadMisses);
    EXPECT_NEAR(short_ratio, 1.0, 0.15) << GetParam();
    EXPECT_NEAR(long_ratio, 1.0, 0.15) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Spec, Consistency,
                         ::testing::Values("gzip", "gcc", "mcf",
                                           "vortex", "twolf"));

TEST(Consistency, ProfilerPhaseSumsMatchWholeTrace)
{
    // Segment counts must add up to the whole-trace counts when the
    // engine carries state (same accesses, same structures).
    const Trace t = generateTrace(profileByName("parser"), 60000);
    const MissProfile whole = profileTrace(t);

    MissProfilerEngine engine{Workbench::baselineProfilerConfig()};
    std::uint64_t mispredicts = 0, icache = 0, ldm = 0, shorts = 0;
    for (std::uint64_t begin = 0; begin < t.size(); begin += 15000) {
        const MissProfile part = engine.profileRange(
            t, begin, std::min<std::uint64_t>(begin + 15000,
                                              t.size()));
        mispredicts += part.mispredictions;
        icache += part.icacheL1Misses;
        ldm += part.longLoadMisses;
        shorts += part.shortLoadMisses;
    }
    EXPECT_EQ(mispredicts, whole.mispredictions);
    EXPECT_EQ(icache, whole.icacheL1Misses);
    EXPECT_EQ(ldm, whole.longLoadMisses);
    EXPECT_EQ(shorts, whole.shortLoadMisses);
}

TEST(Consistency, TraceSaveLoadPreservesSimResult)
{
    const Trace t = generateTrace(profileByName("eon"), 30000);
    const std::string path =
        ::testing::TempDir() + "/consistency_trace.bin";
    saveTrace(t, path);
    const Trace loaded = loadTrace(path);
    std::remove(path.c_str());

    const SimStats a =
        simulateTrace(t, Workbench::baselineSimConfig());
    const SimStats b =
        simulateTrace(loaded, Workbench::baselineSimConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
}

} // namespace
} // namespace fosm
