/** @file Integration tests for the Section 7 future-work extensions:
 *  limited FUs, TLB misses, fetch buffers, and the statistical
 *  simulation baseline. */

#include <gtest/gtest.h>

#include "branch/synthetic.hh"
#include "experiments/workbench.hh"
#include "statsim/profile_estimator.hh"
#include "../test_util.hh"

namespace fosm {
namespace {

Workbench &
bench()
{
    static Workbench wb;
    return wb;
}

TEST(LimitedFu, SimRespectsMemPortBound)
{
    // Pure load stream with one memory port: one load per cycle.
    test::TraceBuilder b;
    for (int i = 0; i < 4000; ++i)
        b.load(static_cast<RegIndex>(i % 64), 0x10000000ull);
    SimConfig c = Workbench::baselineSimConfig();
    c.options.idealBranchPredictor = true;
    c.options.idealIcache = true;
    c.options.idealDcache = true;
    c.fuPools.memPort = {1, true};
    const SimStats s = simulateTrace(b.take(), c);
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);
}

TEST(LimitedFu, UnpipelinedDivSerializes)
{
    // Independent divides with one unpipelined divider: one result
    // per 12 cycles.
    test::TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.add(InstClass::IntDiv, static_cast<RegIndex>(i % 64));
    SimConfig c = Workbench::baselineSimConfig();
    c.options.idealBranchPredictor = true;
    c.options.idealIcache = true;
    c.options.idealDcache = true;
    c.fuPools.intDiv = {1, false};
    const SimStats serialized = simulateTrace(b.take(), c);
    EXPECT_NEAR(serialized.ipc(), 1.0 / 12.0, 0.01);

    // A pipelined divider sustains one per cycle.
    test::TraceBuilder b2;
    for (int i = 0; i < 500; ++i)
        b2.add(InstClass::IntDiv, static_cast<RegIndex>(i % 64));
    c.fuPools.intDiv = {1, true};
    const SimStats pipelined = simulateTrace(b2.take(), c);
    EXPECT_NEAR(pipelined.ipc(), 1.0, 0.05);
}

TEST(LimitedFu, ModelTracksStarvedSim)
{
    const WorkloadData &data = bench().workload("crafty");
    FuPoolConfig starved;
    starved.memPort = {1, true};

    ModelOptions options;
    options.fuPools = starved;
    const FirstOrderModel model(Workbench::baselineMachine(),
                                options);
    const CpiBreakdown cpi =
        model.evaluate(data.iw, data.missProfile);

    SimConfig sim_config = Workbench::baselineSimConfig();
    sim_config.fuPools = starved;
    const SimStats sim = simulateTrace(data.trace, sim_config);
    EXPECT_LT(relativeError(cpi.total(), sim.cpi()), 0.25);
    // The bound must actually bite vs the unbounded machine.
    const SimStats base = simulateTrace(
        data.trace, Workbench::baselineSimConfig());
    EXPECT_GT(sim.cpi(), base.cpi() * 1.02);
}

TEST(TlbExtension, WalksChargedAndModeled)
{
    const WorkloadData &data = bench().workload("twolf");
    TlbConfig tlb;
    tlb.enabled = true;
    tlb.entries = 64;
    tlb.walkLatency = 30;

    ProfilerConfig pconfig = Workbench::baselineProfilerConfig();
    pconfig.dtlb = tlb;
    const MissProfile profile = profileTrace(data.trace, pconfig);
    ASSERT_GT(profile.dtlbLoadMisses, 100u);

    SimConfig sim_config = Workbench::baselineSimConfig();
    sim_config.dtlb = tlb;
    sim_config.syncMissDelays();
    const SimStats with = simulateTrace(data.trace, sim_config);
    const SimStats without = simulateTrace(
        data.trace, Workbench::baselineSimConfig());
    EXPECT_GT(with.cycles, without.cycles);
    EXPECT_GT(with.dtlbLoadMisses, 100u);

    const FirstOrderModel model(Workbench::baselineMachine());
    const CpiBreakdown cpi = model.evaluate(data.iw, profile);
    EXPECT_GT(cpi.dtlb, 0.0);
    EXPECT_LT(relativeError(cpi.total(), with.cpi()), 0.25);
}

TEST(TlbExtension, DisabledLeavesBaselineUntouched)
{
    const WorkloadData &data = bench().workload("gzip");
    const MissProfile &profile = data.missProfile;
    EXPECT_EQ(profile.dtlbLoadMisses, 0u);
    const FirstOrderModel model(Workbench::baselineMachine());
    EXPECT_EQ(model.evaluate(data.iw, profile).dtlb, 0.0);
}

TEST(FetchBuffer, HidesIcachePenaltyInSim)
{
    const WorkloadData &data = bench().workload("gcc");
    SimConfig base = Workbench::baselineSimConfig();
    base.options.idealBranchPredictor = true;
    base.options.idealDcache = true;
    const SimStats no_buffer = simulateTrace(data.trace, base);

    SimConfig buffered = base;
    buffered.options.fetchBufferEntries = 64;
    buffered.options.fetchBandwidth = 8;
    const SimStats with_buffer = simulateTrace(data.trace, buffered);
    EXPECT_LT(with_buffer.cycles, no_buffer.cycles);
}

TEST(FetchBuffer, ModelReductionMonotone)
{
    const WorkloadData &data = bench().workload("gcc");
    double prev = 1e18;
    for (std::uint32_t buffer : {0u, 16u, 64u, 256u}) {
        ModelOptions options;
        options.fetchBufferEntries = buffer;
        const FirstOrderModel model(Workbench::baselineMachine(),
                                    options);
        const CpiBreakdown b =
            model.evaluate(data.iw, data.missProfile);
        const double icache = b.icacheL1 + b.icacheL2;
        EXPECT_LE(icache, prev + 1e-12) << "buffer " << buffer;
        prev = icache;
    }
    EXPECT_GE(prev, 0.0);
}

TEST(SyntheticPredictor, MatchesConfiguredRate)
{
    SyntheticPredictor p(0.07);
    for (int i = 0; i < 100000; ++i)
        p.predictAndUpdate(0x1000, i % 2 == 0);
    EXPECT_NEAR(p.stats().mispredictRate(), 0.07, 0.005);
}

TEST(SyntheticPredictor, RateZeroAndOne)
{
    SyntheticPredictor never(0.0);
    SyntheticPredictor always(1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(never.predictAndUpdate(0, true));
        EXPECT_FALSE(always.predictAndUpdate(0, true));
    }
}

TEST(StatSim, EstimatedProfileMatchesMix)
{
    const WorkloadData &data = bench().workload("parser");
    const Profile est = estimateProfile(data.trace);
    est.validate();
    EXPECT_NEAR(est.mix.load, data.missProfile.mix.of(InstClass::Load),
                1e-9);
    EXPECT_NEAR(est.mix.branch,
                data.missProfile.mix.of(InstClass::Branch), 1e-9);
    EXPECT_EQ(est.name, "parser-clone");
}

TEST(StatSim, CloneReproducesMissRatesApproximately)
{
    const WorkloadData &data = bench().workload("twolf");
    const Profile est = estimateProfile(data.trace);
    const Trace clone = generateTrace(est, data.trace.size());
    const MissProfile cp =
        profileTrace(clone, Workbench::baselineProfilerConfig());
    const MissProfile &orig = data.missProfile;

    // Long-miss rate within 2x (first-order stream matching).
    EXPECT_GT(cp.longLoadMissesPerInst(),
              orig.longLoadMissesPerInst() * 0.4);
    EXPECT_LT(cp.longLoadMissesPerInst(),
              orig.longLoadMissesPerInst() * 2.5);
    // Average latency within 20%.
    EXPECT_NEAR(cp.avgLatency, orig.avgLatency,
                0.2 * orig.avgLatency);
}

TEST(StatSim, CloneCpiWithinBand)
{
    // The paper: statistical simulation accuracy is "similar" to the
    // model's. Loose band: within 35% per benchmark tested here.
    for (const char *name : {"crafty", "twolf", "vpr"}) {
        const WorkloadData &data = bench().workload(name);
        const SimStats original = simulateTrace(
            data.trace, Workbench::baselineSimConfig());
        const Profile est = estimateProfile(data.trace);
        const Trace clone = generateTrace(est, data.trace.size());
        SimConfig clone_config = Workbench::baselineSimConfig();
        clone_config.syntheticMispredictRate =
            data.missProfile.mispredictRate();
        const SimStats cloned = simulateTrace(clone, clone_config);
        EXPECT_LT(relativeError(cloned.cpi(), original.cpi()), 0.35)
            << name;
    }
}

TEST(StatSimDeath, RejectsEmptyTrace)
{
    EXPECT_DEATH(estimateProfile(Trace("empty")), "empty");
}

} // namespace
} // namespace fosm
