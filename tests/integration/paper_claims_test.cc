/** @file Integration tests for the paper's headline claims
 *  (Section 7's summary observations), verified end-to-end against
 *  the detailed simulator on generated workloads. */

#include <gtest/gtest.h>

#include "experiments/workbench.hh"

namespace fosm {
namespace {

Workbench &
bench()
{
    static Workbench wb;
    return wb;
}

/** Average penalty per branch misprediction from paired runs. */
double
simBranchPenalty(const Trace &trace, std::uint32_t depth)
{
    SimConfig real = Workbench::baselineSimConfig();
    real.machine.frontEndDepth = depth;
    real.options.idealIcache = true;
    real.options.idealDcache = true;
    const SimStats with = simulateTrace(trace, real);

    SimConfig ideal = real;
    ideal.options.idealBranchPredictor = true;
    const SimStats base = simulateTrace(trace, ideal);
    return (static_cast<double>(with.cycles) -
            static_cast<double>(base.cycles)) /
           static_cast<double>(with.mispredictions);
}

TEST(PaperClaims, BranchPenaltyExceedsFrontEndDepth)
{
    // Conclusion 1: "The branch misprediction penalty is often
    // significantly larger than the front-end pipeline depth."
    const Trace &t = bench().workload("gzip").trace;
    const double penalty = simBranchPenalty(t, 5);
    EXPECT_GT(penalty, 5.0);
    EXPECT_LT(penalty, 20.0);
}

TEST(PaperClaims, BranchPenaltyInModelRange)
{
    // Section 4.1: "for the baseline processor we would expect the
    // penalty to be between 5 and 10 cycles" (Figure 9 measures up
    // to ~15 for outliers).
    for (const char *name : {"gzip", "crafty", "parser"}) {
        const double penalty =
            simBranchPenalty(bench().workload(name).trace, 5);
        EXPECT_GT(penalty, 4.0) << name;
        EXPECT_LT(penalty, 16.0) << name;
    }
}

TEST(PaperClaims, IcachePenaltyNearMissDelayAndDepthIndependent)
{
    // Conclusion 2 / Figure 11: the I-cache penalty per miss is about
    // the miss service delay (DeltaI for L2 hits, the memory latency
    // for compulsory L2 misses) and independent of front-end depth.
    const Trace &t = bench().workload("gcc").trace;

    struct Run
    {
        double perMiss;
        double expectedPerMiss;
    };
    auto penalty = [&](std::uint32_t depth) {
        SimConfig real = Workbench::baselineSimConfig();
        real.machine.frontEndDepth = depth;
        real.options.idealBranchPredictor = true;
        real.options.idealDcache = true;
        const SimStats with = simulateTrace(t, real);
        SimConfig ideal = real;
        ideal.options.idealIcache = true;
        const SimStats base = simulateTrace(t, ideal);
        Run run;
        run.perMiss = (static_cast<double>(with.cycles) -
                       static_cast<double>(base.cycles)) /
                      static_cast<double>(with.icacheL1Misses);
        run.expectedPerMiss =
            (static_cast<double>(with.icacheL2Misses) * 200.0 +
             static_cast<double>(with.icacheL1Misses -
                                 with.icacheL2Misses) * 8.0) /
            static_cast<double>(with.icacheL1Misses);
        return run;
    };

    const Run r5 = penalty(5);
    const Run r9 = penalty(9);
    EXPECT_NEAR(r5.perMiss, r5.expectedPerMiss,
                0.35 * r5.expectedPerMiss);
    EXPECT_NEAR(r5.perMiss, r9.perMiss, 0.15 * r5.perMiss + 1.0);
}

TEST(PaperClaims, MissEventPenaltiesRoughlyIndependent)
{
    // The Figure 2 experiment: summing independently measured
    // penalties approximates the combined run.
    const Trace &t = bench().workload("parser").trace;
    const SimConfig base = Workbench::baselineSimConfig();

    SimConfig all_ideal = base;
    all_ideal.options.idealBranchPredictor = true;
    all_ideal.options.idealIcache = true;
    all_ideal.options.idealDcache = true;

    SimConfig bp_only = all_ideal;
    bp_only.options.idealBranchPredictor = false;
    SimConfig ic_only = all_ideal;
    ic_only.options.idealIcache = false;
    SimConfig dc_only = all_ideal;
    dc_only.options.idealDcache = false;

    const double ideal =
        static_cast<double>(simulateTrace(t, all_ideal).cycles);
    const double combined =
        static_cast<double>(simulateTrace(t, base).cycles);
    const double independent_sum = ideal +
        (simulateTrace(t, bp_only).cycles - ideal) +
        (simulateTrace(t, ic_only).cycles - ideal) +
        (simulateTrace(t, dc_only).cycles - ideal);

    // Paper: average error 5%, worst 16%.
    EXPECT_NEAR(independent_sum / combined, 1.0, 0.16);
}

TEST(PaperClaims, OverlappedMissGroupsHalvePenalty)
{
    // Conclusion 3: misses within a ROB-size window share a single
    // miss delay; the model's equation (8) captures the measured
    // per-miss penalty.
    const WorkloadData &mcf = bench().workload("mcf");
    SimConfig real = Workbench::baselineSimConfig();
    real.options.idealBranchPredictor = true;
    real.options.idealIcache = true;
    const SimStats with = simulateTrace(mcf.trace, real);
    SimConfig ideal = real;
    ideal.options.idealDcache = true;
    const SimStats base = simulateTrace(mcf.trace, ideal);

    const double sim_penalty =
        (static_cast<double>(with.cycles) -
         static_cast<double>(base.cycles)) /
        static_cast<double>(with.longLoadMisses);
    // Well below the isolated 200 cycles thanks to overlap.
    EXPECT_LT(sim_penalty, 150.0);
    EXPECT_GT(sim_penalty, 10.0);

    const double model_penalty =
        200.0 * mcf.missProfile.ldmOverlapFactor(128);
    // Figure 14: "reasonably close, although not as close as other
    // parts of the model".
    EXPECT_NEAR(model_penalty, sim_penalty,
                0.8 * sim_penalty + 10.0);
}

TEST(PaperClaims, PredictorQualityMustScaleWithIssueWidth)
{
    // Conclusion: branch prediction must improve as the square of
    // the issue width (Figure 18) - verified at the model level in
    // trends_test; here we check the end-to-end machinery agrees
    // directionally: the wider machine loses more IPC fraction to
    // the same misprediction rate.
    const Trace &t = bench().workload("gzip").trace;
    auto ipc_ratio = [&](std::uint32_t width) {
        SimConfig real = Workbench::baselineSimConfig();
        real.machine.width = width;
        real.machine.windowSize = 48 * width / 4;
        real.machine.robSize = 128 * width / 4;
        real.options.idealIcache = true;
        real.options.idealDcache = true;
        SimConfig ideal = real;
        ideal.options.idealBranchPredictor = true;
        return simulateTrace(t, real).ipc() /
               simulateTrace(t, ideal).ipc();
    };
    EXPECT_LT(ipc_ratio(8), ipc_ratio(2) + 0.02);
}

} // namespace
} // namespace fosm
