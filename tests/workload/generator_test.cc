/** @file Unit and property tests for the synthetic trace generator. */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/trace_stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace fosm {
namespace {

TEST(Generator, DeterministicForSameSeed)
{
    const Profile &p = profileByName("gzip");
    const Trace a = generateTrace(p, 5000);
    const Trace b = generateTrace(p, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].cls, b[i].cls);
        EXPECT_EQ(a[i].effAddr, b[i].effAddr);
        EXPECT_EQ(a[i].src1, b[i].src1);
        EXPECT_EQ(a[i].branchTaken, b[i].branchTaken);
    }
}

TEST(Generator, RequestedLength)
{
    const Trace t = generateTrace(profileByName("bzip"), 12345);
    EXPECT_EQ(t.size(), 12345u);
}

TEST(Generator, PcsStayInFootprint)
{
    const Profile &p = profileByName("gzip");
    const Trace t = generateTrace(p, 20000);
    for (const InstRecord &inst : t) {
        EXPECT_GE(inst.pc, codeBase);
        EXPECT_LT(inst.pc, codeBase + p.code.footprintBytes);
    }
}

TEST(Generator, TakenBranchTargetMatchesNextPc)
{
    const Trace t = generateTrace(profileByName("gcc"), 20000);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].isBranch())
            continue;
        EXPECT_EQ(t[i + 1].pc, t[i].effAddr)
            << "control-flow discontinuity at " << i;
    }
}

TEST(Generator, NonBranchesFallThrough)
{
    const Profile &p = profileByName("gzip");
    const Trace t = generateTrace(p, 20000);
    const Addr end = codeBase + p.code.footprintBytes;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].isBranch())
            continue;
        const Addr expect =
            t[i].pc + 4 >= end ? codeBase : t[i].pc + 4;
        EXPECT_EQ(t[i + 1].pc, expect);
    }
}

TEST(Generator, MixApproximatelyMatchesProfile)
{
    const Profile &p = profileByName("parser");
    const TraceStats s =
        collectTraceStats(generateTrace(p, 100000));
    // Hot-loop weighting perturbs the dynamic mix; allow slack.
    EXPECT_NEAR(s.loadFraction(), p.mix.load, 0.08);
    EXPECT_NEAR(s.branchFraction(), p.mix.branch, 0.08);
    EXPECT_NEAR(s.classFraction(InstClass::Store), p.mix.store, 0.08);
}

TEST(Generator, MemOpsHaveAddresses)
{
    const Trace t = generateTrace(profileByName("mcf"), 20000);
    for (const InstRecord &inst : t) {
        if (inst.isMem()) {
            EXPECT_NE(inst.effAddr, 0u);
        }
    }
}

TEST(Generator, DestinationsOnlyOnValueProducers)
{
    const Trace t = generateTrace(profileByName("gzip"), 20000);
    for (const InstRecord &inst : t) {
        if (inst.isStore() || inst.isBranch())
            EXPECT_EQ(inst.dst, invalidReg);
        else
            EXPECT_NE(inst.dst, invalidReg);
    }
}

TEST(Generator, SourceRegistersInRange)
{
    const Trace t = generateTrace(profileByName("vortex"), 20000);
    for (const InstRecord &inst : t) {
        for (RegIndex src : {inst.src1, inst.src2}) {
            if (src != invalidReg) {
                EXPECT_GE(src, 0);
                EXPECT_LT(src, numArchRegs);
            }
        }
    }
}

TEST(Generator, BranchPcsRepeat)
{
    // Static program image: the same branch sites must re-execute
    // many times, or predictors cannot train.
    const TraceStats s = collectTraceStats(
        generateTrace(profileByName("gzip"), 100000));
    const std::uint64_t branches =
        s.classCount[static_cast<std::size_t>(InstClass::Branch)];
    ASSERT_GT(s.staticBranches, 0u);
    const double execs_per_site =
        static_cast<double>(branches) /
        static_cast<double>(s.staticBranches);
    EXPECT_GT(execs_per_site, 20.0);
}

TEST(Profiles, AllTwelvePresent)
{
    const std::vector<std::string> names = profileNames();
    ASSERT_EQ(names.size(), 12u);
    EXPECT_EQ(names.front(), "bzip");
    EXPECT_EQ(names.back(), "vpr");
}

TEST(Profiles, AllValidate)
{
    for (const Profile &p : specProfiles()) {
        p.validate();
        EXPECT_FALSE(p.name.empty());
    }
    SUCCEED();
}

TEST(Profiles, UnknownNameFatal)
{
    EXPECT_EXIT(profileByName("doom"), ::testing::ExitedWithCode(1),
                "unknown workload profile");
}

TEST(Profiles, SeedsAreDistinct)
{
    const auto &profiles = specProfiles();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j)
            EXPECT_NE(profiles[i].seed, profiles[j].seed);
    }
}

TEST(MixParams, AluIsRemainder)
{
    MixParams m;
    m.load = 0.3;
    m.store = 0.1;
    m.branch = 0.2;
    m.mul = 0.0;
    m.div = 0.0;
    m.fp = 0.0;
    EXPECT_NEAR(m.alu(), 0.4, 1e-12);
}

TEST(MixParams, ValidationRejectsOverflow)
{
    MixParams m;
    m.load = 0.9;
    m.store = 0.9;
    EXPECT_EXIT(m.validate(), ::testing::ExitedWithCode(1),
                "more than 1");
}

/** Dependence-distance means shift with the profile's parameters. */
TEST(Generator, DependenceDistanceTracksProfile)
{
    Profile chains = profileByName("vpr");      // short distances
    Profile strands = profileByName("vortex");  // long distances
    const TraceStats cs =
        collectTraceStats(generateTrace(chains, 60000));
    const TraceStats ss =
        collectTraceStats(generateTrace(strands, 60000));
    EXPECT_LT(cs.depDistance.mean(), ss.depDistance.mean());
}

/** Parameterized: every profile generates a well-formed trace. */
class AllProfiles : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllProfiles, GeneratesWellFormedTrace)
{
    const Profile &p = profileByName(GetParam());
    const Trace t = generateTrace(p, 30000);
    EXPECT_EQ(t.size(), 30000u);
    const TraceStats s = collectTraceStats(t);
    EXPECT_GT(s.branchFraction(), 0.03);
    EXPECT_LT(s.branchFraction(), 0.40);
    EXPECT_GT(s.loadFraction(), 0.05);
    EXPECT_GT(s.staticBranches, 4u);
    EXPECT_GT(s.takenFraction, 0.1);
    EXPECT_LT(s.takenFraction, 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Spec, AllProfiles,
    ::testing::Values("bzip", "crafty", "eon", "gap", "gcc", "gzip",
                      "mcf", "parser", "perl", "twolf", "vortex",
                      "vpr"));

} // namespace
} // namespace fosm
