/** @file Determinism and prefix properties of trace generation. */

#include <gtest/gtest.h>

#include "workload/generator.hh"
#include "workload/profile.hh"

namespace fosm {
namespace {

TEST(Determinism, ShorterTraceIsPrefixOfLonger)
{
    // Generation consumes randomness strictly per instruction after
    // the static image is built, so a shorter trace of the same
    // profile is an exact prefix of a longer one. This is what makes
    // FOSM_TRACE_INSTS a pure zoom knob.
    const Profile &p = profileByName("crafty");
    const Trace small = generateTrace(p, 5000);
    const Trace large = generateTrace(p, 20000);
    for (std::size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(small[i].pc, large[i].pc) << i;
        EXPECT_EQ(small[i].cls, large[i].cls) << i;
        EXPECT_EQ(small[i].effAddr, large[i].effAddr) << i;
        EXPECT_EQ(small[i].src1, large[i].src1) << i;
        EXPECT_EQ(small[i].src2, large[i].src2) << i;
        EXPECT_EQ(small[i].branchTaken, large[i].branchTaken) << i;
    }
}

TEST(Determinism, SeedChangesStream)
{
    Profile a = profileByName("gzip");
    Profile b = a;
    b.seed ^= 0xDEADBEEF;
    const Trace ta = generateTrace(a, 5000);
    const Trace tb = generateTrace(b, 5000);
    int diff = 0;
    for (std::size_t i = 0; i < ta.size(); ++i) {
        if (ta[i].pc != tb[i].pc || ta[i].cls != tb[i].cls)
            ++diff;
    }
    EXPECT_GT(diff, 1000);
}

TEST(Determinism, ProfilesProduceDistinctStreams)
{
    const Trace a = generateTrace(profileByName("gzip"), 5000);
    const Trace b = generateTrace(profileByName("mcf"), 5000);
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].pc != b[i].pc || a[i].effAddr != b[i].effAddr)
            ++diff;
    }
    EXPECT_GT(diff, 1000);
}

} // namespace
} // namespace fosm
