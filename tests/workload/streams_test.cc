/** @file Unit tests for address and branch outcome streams. */

#include <gtest/gtest.h>

#include <set>

#include "workload/address_stream.hh"
#include "workload/branch_stream.hh"

namespace fosm {
namespace {

TEST(DataAddressStream, AddressesLandInKnownRegions)
{
    DataParams params;
    Rng rng(1);
    DataAddressStream stream(params, rng);
    for (int i = 0; i < 20000; ++i) {
        const Addr a = stream.next();
        const bool in_hot = a >= DataAddressStream::hotBase &&
            a < DataAddressStream::hotBase + params.hotBytes;
        const bool in_warm = a >= DataAddressStream::warmBase &&
            a < DataAddressStream::warmBase + params.warmBytes;
        const bool in_cold = a >= DataAddressStream::coldBase &&
            a < DataAddressStream::coldBase + params.coldBytes;
        const bool in_stride = a >= DataAddressStream::strideBase &&
            a < DataAddressStream::strideBase + params.strideBytes;
        EXPECT_TRUE(in_hot || in_warm || in_cold || in_stride)
            << "stray address " << std::hex << a;
    }
}

TEST(DataAddressStream, HotRegionDominatesCalmState)
{
    DataParams params;
    params.hotFrac = 0.9;
    params.warmFrac = 0.05;
    params.coldFrac = 0.01;
    params.strideFrac = 0.04;
    params.burstEnterProb = 0.0; // never burst
    Rng rng(2);
    DataAddressStream stream(params, rng);
    int hot = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const Addr a = stream.next();
        if (a >= DataAddressStream::hotBase &&
            a < DataAddressStream::hotBase + params.hotBytes)
            ++hot;
    }
    EXPECT_NEAR(hot / static_cast<double>(n), 0.9, 0.02);
}

TEST(DataAddressStream, BurstStateRaisesColdFraction)
{
    DataParams params;
    params.burstEnterProb = 1.0; // always in burst
    params.burstExitProb = 0.0;
    params.burstColdFrac = 0.7;
    Rng rng(3);
    DataAddressStream stream(params, rng);
    int cold = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const Addr a = stream.next();
        if (a >= DataAddressStream::coldBase &&
            a < DataAddressStream::coldBase + params.coldBytes)
            ++cold;
    }
    EXPECT_TRUE(stream.inBurst());
    EXPECT_NEAR(cold / static_cast<double>(n), 0.7, 0.02);
}

TEST(DataAddressStream, StrideWalksSequentially)
{
    DataParams params;
    params.hotFrac = 0.0;
    params.warmFrac = 0.0;
    params.coldFrac = 0.0;
    params.strideFrac = 1.0;
    params.burstEnterProb = 0.0;
    params.strideStep = 16;
    Rng rng(4);
    DataAddressStream stream(params, rng);
    Addr prev = stream.next();
    for (int i = 0; i < 100; ++i) {
        const Addr cur = stream.next();
        EXPECT_EQ(cur, prev + 16);
        prev = cur;
    }
}

TEST(BranchSiteTable, KindFractionsRespected)
{
    BranchParams params;
    params.sites = 4000;
    params.biasedFrac = 0.5;
    params.loopFrac = 0.3;
    Rng rng(5);
    BranchSiteTable table(params, rng);
    int biased = 0, loop = 0, random = 0;
    for (std::uint32_t i = 0; i < params.sites; ++i) {
        switch (table.site(i).kind) {
          case BranchSiteKind::Biased: ++biased; break;
          case BranchSiteKind::Loop: ++loop; break;
          case BranchSiteKind::Random: ++random; break;
        }
    }
    EXPECT_NEAR(biased / 4000.0, 0.5, 0.03);
    EXPECT_NEAR(loop / 4000.0, 0.3, 0.03);
    EXPECT_NEAR(random / 4000.0, 0.2, 0.03);
}

TEST(BranchSiteTable, LoopSitePeriodicPattern)
{
    BranchParams params;
    params.sites = 64;
    params.biasedFrac = 0.0;
    params.loopFrac = 1.0;
    Rng rng(6);
    BranchSiteTable table(params, rng);

    const std::uint32_t trips = table.site(0).tripCount;
    ASSERT_GE(trips, 2u);
    // Pattern: taken (trips-1) times, then not-taken, repeating.
    for (int rounds = 0; rounds < 3; ++rounds) {
        for (std::uint32_t i = 0; i + 1 < trips; ++i)
            EXPECT_TRUE(table.nextOutcome(0));
        EXPECT_FALSE(table.nextOutcome(0));
    }
}

TEST(BranchSiteTable, BiasedSiteFollowsProbability)
{
    BranchParams params;
    params.sites = 16;
    params.biasedFrac = 1.0;
    params.loopFrac = 0.0;
    params.biasedTakenProb = 0.95;
    Rng rng(7);
    BranchSiteTable table(params, rng);
    int taken = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        taken += table.nextOutcome(3) ? 1 : 0;
    const double rate = taken / static_cast<double>(n);
    // Either strongly taken or strongly not-taken.
    EXPECT_TRUE(rate > 0.9 || rate < 0.1) << "rate " << rate;
}

TEST(BranchSiteTable, PickSiteInRange)
{
    BranchParams params;
    params.sites = 128;
    Rng rng(8);
    BranchSiteTable table(params, rng);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const std::uint32_t s = table.pickSite();
        EXPECT_LT(s, 128u);
        seen.insert(s);
    }
    EXPECT_GT(seen.size(), 32u);
}

} // namespace
} // namespace fosm
