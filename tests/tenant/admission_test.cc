/**
 * @file
 * Admission control: bearer-token parsing, the 401/429 decisions,
 * token-bucket refill, inflight accounting, exempt paths, and the
 * disabled-registry passthrough that keeps the default deployment
 * byte-compatible with the pre-tenant stack.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "server/http.hh"
#include "server/metrics.hh"
#include "tenant/admission.hh"
#include "tenant/registry.hh"

namespace fosm::tenant {
namespace {

server::HttpRequest
request(const std::string &path, const std::string &auth = "")
{
    server::HttpRequest req;
    req.method = "POST";
    req.target = path;
    if (!auth.empty())
        req.headers.emplace_back("authorization", auth);
    return req;
}

Registry &
loadedRegistry(Registry &registry, const std::string &doc)
{
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::parse(doc, v, &error)) << error;
    std::vector<TenantSpec> specs;
    EXPECT_TRUE(Registry::parseTenants(v, specs, error)) << error;
    EXPECT_TRUE(registry.replace(std::move(specs), error)) << error;
    return registry;
}

TEST(TenantAdmission, BearerTokenParsing)
{
    EXPECT_EQ(Admission::bearerToken(
                  request("/v1/cpi", "Bearer tok")),
              "tok");
    EXPECT_EQ(Admission::bearerToken(
                  request("/v1/cpi", "bearer tok")),
              "tok");
    EXPECT_EQ(Admission::bearerToken(
                  request("/v1/cpi", "BEARER   spaced")),
              "spaced");
    EXPECT_EQ(Admission::bearerToken(
                  request("/v1/cpi", "Basic dXNlcjpwdw==")),
              "");
    EXPECT_EQ(Admission::bearerToken(request("/v1/cpi")), "");
    EXPECT_EQ(Admission::bearerToken(
                  request("/v1/cpi", "Bearer")),
              "");
}

TEST(TenantAdmission, ExemptPaths)
{
    EXPECT_TRUE(Admission::exemptPath("/healthz"));
    EXPECT_TRUE(Admission::exemptPath("/metrics"));
    EXPECT_TRUE(Admission::exemptPath("/v1/store/stats"));
    EXPECT_TRUE(Admission::exemptPath("/admin/tenants"));
    EXPECT_TRUE(Admission::exemptPath("/admin/backends"));
    EXPECT_FALSE(Admission::exemptPath("/v1/cpi"));
    EXPECT_FALSE(Admission::exemptPath("/v1/batch"));
}

TEST(TenantAdmission, EmptyRegistryAdmitsEverythingAsClassZero)
{
    Registry registry;
    Admission admission(registry, nullptr, {});
    const AdmitDecision d = admission.admit(request("/v1/cpi"));
    EXPECT_TRUE(d.admitted());
    EXPECT_EQ(d.classId, 0u);
    EXPECT_TRUE(d.tenantId.empty());
}

TEST(TenantAdmission, AuthRequiredWhenTenantsExist)
{
    Registry registry;
    loadedRegistry(
        registry,
        R"({"tenants": [{"id": "acme", "token": "tok-a"}]})");
    server::MetricsRegistry metrics;
    Admission admission(registry, &metrics, {});

    const AdmitDecision missing =
        admission.admit(request("/v1/cpi"));
    EXPECT_EQ(missing.status, 401);

    const AdmitDecision wrong =
        admission.admit(request("/v1/cpi", "Bearer nope"));
    EXPECT_EQ(wrong.status, 401);

    const AdmitDecision ok =
        admission.admit(request("/v1/cpi", "Bearer tok-a"));
    EXPECT_TRUE(ok.admitted());
    EXPECT_EQ(ok.tenantId, "acme");
    EXPECT_NE(ok.classId, 0u);

    // Health probes keep working without a token.
    EXPECT_TRUE(admission.admit(request("/healthz")).admitted());

    const std::string rendered = metrics.renderPrometheus();
    EXPECT_NE(rendered.find("fosm_tenant_auth_failures_total 2"),
              std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find(
                  "fosm_tenant_admitted_total{tenant=\"acme\"} 1"),
              std::string::npos)
        << rendered;
}

TEST(TenantAdmission, RateLimitAnswers429WithRetryAfter)
{
    Registry registry;
    loadedRegistry(registry,
                   R"({"tenants": [{"id": "slow", "token": "t",
                                    "rate_rps": 0.5, "burst": 2}]})");
    AdmissionOptions options;
    options.enforceRate = true;
    Admission admission(registry, nullptr, options);

    const auto req = request("/v1/cpi", "Bearer t");
    EXPECT_TRUE(admission.admit(req).admitted()); // burst token 1
    EXPECT_TRUE(admission.admit(req).admitted()); // burst token 2
    const AdmitDecision limited = admission.admit(req);
    EXPECT_EQ(limited.status, 429);
    EXPECT_GE(limited.retryAfterSeconds, 1);
    // At 0.5 rps the bucket needs ~2s for the next whole token.
    EXPECT_LE(limited.retryAfterSeconds, 3);
}

TEST(TenantAdmission, BucketRefillsAtTheDeclaredRate)
{
    Registry registry;
    loadedRegistry(registry,
                   R"({"tenants": [{"id": "fast", "token": "t",
                                    "rate_rps": 200, "burst": 1}]})");
    AdmissionOptions options;
    options.enforceRate = true;
    Admission admission(registry, nullptr, options);

    const auto req = request("/v1/cpi", "Bearer t");
    EXPECT_TRUE(admission.admit(req).admitted());
    EXPECT_EQ(admission.admit(req).status, 429);
    // 200 rps refills a whole token in 5ms; 100ms is safely past.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(admission.admit(req).admitted());
}

TEST(TenantAdmission, RateNotEnforcedWhenDisabled)
{
    Registry registry;
    loadedRegistry(registry,
                   R"({"tenants": [{"id": "a", "token": "t",
                                    "rate_rps": 0.1}]})");
    Admission admission(registry, nullptr, {}); // serve-style
    const auto req = request("/v1/cpi", "Bearer t");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(admission.admit(req).admitted());
}

TEST(TenantAdmission, InflightQuotaHoldsAndReleases)
{
    Registry registry;
    loadedRegistry(registry,
                   R"({"tenants": [{"id": "a", "token": "t",
                                    "max_inflight": 2}]})");
    AdmissionOptions options;
    options.enforceInflight = true;
    Admission admission(registry, nullptr, options);

    const auto req = request("/v1/cpi", "Bearer t");
    AdmitDecision first = admission.admit(req);
    AdmitDecision second = admission.admit(req);
    EXPECT_TRUE(first.admitted());
    EXPECT_TRUE(first.inflightHeld);
    EXPECT_TRUE(second.admitted());

    const AdmitDecision third = admission.admit(req);
    EXPECT_EQ(third.status, 429);
    EXPECT_EQ(third.retryAfterSeconds, 1);

    // Finishing one request frees a slot.
    admission.release(first);
    EXPECT_TRUE(admission.admit(req).admitted());

    // release() of a non-held decision is a no-op, not an underflow.
    admission.release(third);
}

TEST(TenantAdmission, QuotaStateSurvivesRegistryEdits)
{
    Registry registry;
    loadedRegistry(registry,
                   R"({"tenants": [{"id": "a", "token": "t",
                                    "rate_rps": 0.5, "burst": 1}]})");
    AdmissionOptions options;
    options.enforceRate = true;
    Admission admission(registry, nullptr, options);

    const auto req = request("/v1/cpi", "Bearer t");
    EXPECT_TRUE(admission.admit(req).admitted());
    EXPECT_EQ(admission.admit(req).status, 429);

    // A live edit (same tenant, new weight) must not refill the
    // bucket: the drained state carries over by tenant id.
    loadedRegistry(registry,
                   R"({"tenants": [{"id": "a", "token": "t",
                                    "weight": 5,
                                    "rate_rps": 0.5, "burst": 1}]})");
    EXPECT_EQ(admission.admit(req).status, 429);
}

} // namespace
} // namespace fosm::tenant
