/**
 * @file
 * The from-scratch SHA-256 / HMAC-SHA256 against published test
 * vectors (FIPS 180-4 examples, RFC 4231), plus the constant-time
 * token comparison's functional contract. Timing itself is not
 * asserted — that property rests on the double-HMAC construction —
 * but equality/inequality across lengths and contents is.
 */

#include <gtest/gtest.h>

#include <string>

#include "tenant/auth.hh"

namespace fosm::tenant {
namespace {

TEST(TenantAuth, Sha256KnownVectors)
{
    // FIPS 180-4 / NIST example vectors.
    EXPECT_EQ(toHex(sha256("abc")),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(toHex(sha256("")),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    // Two-block message (56 bytes forces the padding split).
    EXPECT_EQ(toHex(sha256("abcdbcdecdefdefgefghfghighijhijk"
                           "ijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
    // > 64 bytes: exercises multi-block streaming.
    EXPECT_EQ(toHex(sha256(std::string(1000000, 'a'))),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(TenantAuth, HmacSha256Rfc4231Vectors)
{
    // RFC 4231 test case 1.
    EXPECT_EQ(toHex(hmacSha256(std::string(20, '\x0b'),
                               "Hi There")),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
    // Test case 2: key shorter than the block size.
    EXPECT_EQ(toHex(hmacSha256(
                  "Jefe", "what do ya want for nothing?")),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
    // Test case 6: key longer than the 64-byte block (forces the
    // key-hashing path).
    EXPECT_EQ(toHex(hmacSha256(
                  std::string(131, '\xaa'),
                  "Test Using Larger Than Block-Size Key - "
                  "Hash Key First")),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(TenantAuth, TokenEquals)
{
    EXPECT_TRUE(tokenEquals("secret", "secret"));
    EXPECT_TRUE(tokenEquals("", ""));
    EXPECT_FALSE(tokenEquals("secret", "secrets"));
    EXPECT_FALSE(tokenEquals("secrets", "secret"));
    EXPECT_FALSE(tokenEquals("secret", "Secret"));
    EXPECT_FALSE(tokenEquals("", "x"));
    // Long tokens with a single differing byte, at both ends.
    const std::string base(256, 'k');
    std::string head = base, tail = base;
    head[0] = 'K';
    tail[255] = 'K';
    EXPECT_TRUE(tokenEquals(base, base));
    EXPECT_FALSE(tokenEquals(head, base));
    EXPECT_FALSE(tokenEquals(tail, base));
}

TEST(TenantAuth, TokenFingerprint)
{
    // Deterministic, 16 hex chars, and clearly not the token.
    const std::string fp = tokenFingerprint("abc");
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp, "ba7816bf8f01cfea"); // sha256("abc") prefix
    EXPECT_EQ(fp, tokenFingerprint("abc"));
    EXPECT_NE(fp, tokenFingerprint("abd"));
}

} // namespace
} // namespace fosm::tenant
