/**
 * @file
 * Tenant registry: document parsing/validation, constant-time
 * verification against the live snapshot, RCU snapshot swap
 * semantics, class-id stability across live edits, and the
 * /admin/tenants handler (which must never echo a secret back).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/http.hh"
#include "server/json.hh"
#include "tenant/auth.hh"
#include "tenant/registry.hh"

namespace fosm::tenant {
namespace {

json::Value
parsedOrDie(const std::string &text)
{
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::parse(text, v, &error)) << error;
    return v;
}

std::vector<TenantSpec>
specsOf(const std::string &doc)
{
    std::vector<TenantSpec> out;
    std::string error;
    EXPECT_TRUE(Registry::parseTenants(parsedOrDie(doc), out, error))
        << error;
    return out;
}

std::string
parseError(const std::string &doc)
{
    std::vector<TenantSpec> out;
    std::string error;
    EXPECT_FALSE(
        Registry::parseTenants(parsedOrDie(doc), out, error));
    return error;
}

server::HttpRequest
adminRequest(const std::string &method, const std::string &body = "")
{
    server::HttpRequest req;
    req.method = method;
    req.target = "/admin/tenants";
    req.body = body;
    return req;
}

TEST(TenantRegistry, ParsesFullDocument)
{
    const auto specs = specsOf(
        R"({"tenants": [
             {"id": "acme", "token": "tok-a", "weight": 2.5,
              "rate_rps": 100, "burst": 300, "max_inflight": 8},
             {"id": "beta", "token": "tok-b"}]})");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].id, "acme");
    EXPECT_EQ(specs[0].token, "tok-a");
    EXPECT_DOUBLE_EQ(specs[0].weight, 2.5);
    EXPECT_DOUBLE_EQ(specs[0].rateRps, 100.0);
    EXPECT_DOUBLE_EQ(specs[0].burst, 300.0);
    EXPECT_EQ(specs[0].maxInflight, 8u);
    // Defaults: weight 1, no limits, burst = 2*rate (= 0 here).
    EXPECT_DOUBLE_EQ(specs[1].weight, 1.0);
    EXPECT_DOUBLE_EQ(specs[1].rateRps, 0.0);
    EXPECT_EQ(specs[1].maxInflight, 0u);
}

TEST(TenantRegistry, RejectsMalformedDocuments)
{
    EXPECT_NE(parseError(R"({})").find("tenants"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"tenants": [{"token": "t"}]})")
                  .find("id"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"tenants": [{"id": "a"}]})")
                  .find("token"),
              std::string::npos);
    EXPECT_NE(
        parseError(
            R"({"tenants": [{"id": "bad id!", "token": "t"}]})")
            .find("id"),
        std::string::npos);
    EXPECT_NE(
        parseError(R"({"tenants": [
                        {"id": "a", "token": "t"},
                        {"id": "a", "token": "u"}]})")
            .find("duplicate"),
        std::string::npos);
    EXPECT_NE(parseError(R"({"tenants": [{"id": "a", "token": "t",
                                          "weight": 0}]})")
                  .find("weight"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"tenants": [{"id": "a", "token": "t",
                                          "rate_rps": -1}]})")
                  .find("rate"),
              std::string::npos);
}

TEST(TenantRegistry, VerifyMatchesOnlyTheRightToken)
{
    Registry registry;
    std::string error;
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [
                     {"id": "acme", "token": "tok-a"},
                     {"id": "beta", "token": "tok-b"}]})"),
        error))
        << error;

    const auto snap = registry.snapshot();
    ASSERT_TRUE(snap->enabled());
    const TenantSpec *acme = snap->verify("tok-a");
    ASSERT_NE(acme, nullptr);
    EXPECT_EQ(acme->id, "acme");
    const TenantSpec *beta = snap->verify("tok-b");
    ASSERT_NE(beta, nullptr);
    EXPECT_EQ(beta->id, "beta");
    EXPECT_EQ(snap->verify("tok-c"), nullptr);
    EXPECT_EQ(snap->verify(""), nullptr);
    EXPECT_NE(snap->byId("acme"), nullptr);
    EXPECT_EQ(snap->byId("nope"), nullptr);
}

TEST(TenantRegistry, SnapshotSurvivesReplace)
{
    Registry registry;
    std::string error;
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "a", "token": "t1"}]})"),
        error));
    const auto old = registry.snapshot();
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "b", "token": "t2"}]})"),
        error));
    // The old snapshot is immutable and still verifies the old set;
    // the registry's current one verifies only the new.
    EXPECT_NE(old->verify("t1"), nullptr);
    EXPECT_EQ(registry.snapshot()->verify("t1"), nullptr);
    EXPECT_NE(registry.snapshot()->verify("t2"), nullptr);
}

TEST(TenantRegistry, ClassIdsAreStableAndNeverReused)
{
    Registry registry;
    std::string error;
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "a", "token": "t"},
                                {"id": "b", "token": "u"}]})"),
        error));
    const auto first = registry.snapshot();
    const std::uint32_t aClass = first->byId("a")->classId;
    const std::uint32_t bClass = first->byId("b")->classId;
    EXPECT_NE(aClass, 0u); // 0 is the unauthenticated class
    EXPECT_NE(bClass, 0u);
    EXPECT_NE(aClass, bClass);

    // Drop b, add c; then bring b back. a keeps its id throughout,
    // b gets its original id back, and c got a fresh one.
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "a", "token": "t"},
                                {"id": "c", "token": "v"}]})"),
        error));
    const std::uint32_t cClass =
        registry.snapshot()->byId("c")->classId;
    EXPECT_EQ(registry.snapshot()->byId("a")->classId, aClass);
    EXPECT_NE(cClass, aClass);
    EXPECT_NE(cClass, bClass);

    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "b", "token": "u"}]})"),
        error));
    EXPECT_EQ(registry.snapshot()->byId("b")->classId, bClass);
    EXPECT_EQ(registry.classCount(), 4u); // 0, a, b, c
}

TEST(TenantRegistry, OnNewClassFiresForExistingAndFutureTenants)
{
    Registry registry;
    std::string error;
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "a", "token": "t"}]})"),
        error));
    std::vector<std::string> seen;
    registry.onNewClass(
        [&seen](const TenantSpec &spec) { seen.push_back(spec.id); });
    EXPECT_EQ(seen, std::vector<std::string>{"a"});

    // A replace that re-lists a and first-sees b fires only for b.
    ASSERT_TRUE(registry.replace(
        specsOf(R"({"tenants": [{"id": "a", "token": "t"},
                                {"id": "b", "token": "u"}]})"),
        error));
    EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
}

TEST(TenantRegistry, AdminGetRedactsTokens)
{
    Registry registry;
    std::string error;
    ASSERT_TRUE(registry.replace(
        specsOf(
            R"({"tenants": [{"id": "acme", "token": "hunter2",
                             "weight": 2, "rate_rps": 10}]})"),
        error));
    const server::HttpResponse response =
        registry.handleAdmin(adminRequest("GET"));
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body.find("hunter2"), std::string::npos);
    EXPECT_NE(
        response.body.find(tokenFingerprint("hunter2")),
        std::string::npos);
    EXPECT_NE(response.body.find("\"auth_enabled\":true"),
              std::string::npos)
        << response.body;
}

TEST(TenantRegistry, AdminPostReplacesOrRejects)
{
    Registry registry;
    // Valid POST publishes and answers with the new listing.
    const server::HttpResponse ok = registry.handleAdmin(
        adminRequest("POST",
                     R"({"tenants": [{"id": "a", "token": "t"}]})"));
    EXPECT_EQ(ok.status, 200);
    EXPECT_TRUE(registry.enabled());
    EXPECT_NE(registry.snapshot()->verify("t"), nullptr);

    // Invalid POST answers 400 and changes nothing.
    const server::HttpResponse bad = registry.handleAdmin(
        adminRequest("POST", R"({"tenants": [{"id": "x"}]})"));
    EXPECT_EQ(bad.status, 400);
    EXPECT_NE(registry.snapshot()->verify("t"), nullptr);

    const server::HttpResponse wrongMethod =
        registry.handleAdmin(adminRequest("DELETE"));
    EXPECT_EQ(wrongMethod.status, 405);
}

TEST(TenantRegistry, EmptyRegistryDisablesAuth)
{
    Registry registry;
    EXPECT_FALSE(registry.enabled());
    EXPECT_EQ(registry.snapshot()->verify("anything"), nullptr);
    // And an explicit empty replace keeps it that way.
    std::string error;
    ASSERT_TRUE(registry.replace({}, error));
    EXPECT_FALSE(registry.enabled());
}

} // namespace
} // namespace fosm::tenant
