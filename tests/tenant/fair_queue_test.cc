/**
 * @file
 * The weighted-fair (DRR) admission queue. The load-bearing
 * properties: single-class use is exactly the old FIFO; backlogged
 * classes drain in proportion to their weights; an idle class's
 * first request is served within one DRR round of the backlog (no
 * starvation behind a saturating tenant); each class sheds on its
 * own capacity; and the close/drain contract the worker pool relies
 * on holds under concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "tenant/fair_queue.hh"

namespace fosm::tenant {
namespace {

TEST(FairQueue, SingleClassIsFifo)
{
    FairQueue<int> q(64);
    for (int i = 0; i < 40; ++i)
        ASSERT_TRUE(q.tryPush(i));
    std::vector<int> out;
    int expect = 0;
    while (expect < 40) {
        ASSERT_TRUE(q.popBatch(out, 7));
        for (int v : out)
            EXPECT_EQ(v, expect++);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(FairQueue, PerClassCapacityShedsTheNoisyClassOnly)
{
    FairQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(q.tryPush(i, 1, 1.0));
    // Class 1 is full: its pushes shed, class 2's are untouched.
    EXPECT_FALSE(q.tryPush(99, 1, 1.0));
    EXPECT_TRUE(q.tryPush(7, 2, 1.0));
    const auto counts = q.classCounts();
    ASSERT_GE(counts.size(), 3u);
    EXPECT_EQ(counts[1].shedFull, 1u);
    EXPECT_EQ(counts[1].depth, 4u);
    EXPECT_EQ(counts[2].shedFull, 0u);
    EXPECT_EQ(counts[2].depth, 1u);
}

/**
 * Keep both classes permanently backlogged, drain a few thousand
 * items, and check each class's drained share converges to
 * weight/Σweights.
 */
TEST(FairQueue, DrainShareConvergesToWeights)
{
    const double weights[2] = {3.0, 1.0};
    FairQueue<int> q(512);
    std::map<int, int> drained;
    const auto topUp = [&] {
        for (int cls = 1; cls <= 2; ++cls) {
            const auto counts = q.classCounts();
            std::size_t depth =
                counts.size() > std::size_t(cls)
                    ? counts[cls].depth
                    : 0;
            while (depth < 64) {
                ASSERT_TRUE(
                    q.tryPush(cls, cls, weights[cls - 1]));
                ++depth;
            }
        }
    };

    topUp();
    int total = 0;
    std::vector<int> out;
    while (total < 4000) {
        ASSERT_TRUE(q.popBatch(out, 8));
        for (int cls : out) {
            ++drained[cls];
            ++total;
        }
        topUp();
    }
    const double share1 =
        double(drained[1]) / double(drained[1] + drained[2]);
    // weight 3 of 4 => 0.75, within a couple of quanta of slop.
    EXPECT_NEAR(share1, 0.75, 0.03)
        << "class1=" << drained[1] << " class2=" << drained[2];
}

/** Fractional weights need several rotations but still get share. */
TEST(FairQueue, FractionalWeightsStillProgress)
{
    FairQueue<int> q(512);
    std::map<int, int> drained;
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(q.tryPush(1, 1, 1.0));
        ASSERT_TRUE(q.tryPush(2, 2, 0.25));
    }
    std::vector<int> out;
    int total = 0;
    while (total < 250) {
        ASSERT_TRUE(q.popBatch(out, 4));
        for (int cls : out) {
            ++drained[cls];
            ++total;
        }
    }
    EXPECT_GT(drained[2], 0);
    // 1:0.25 weights => class 2 gets about a fifth of the drain.
    EXPECT_NEAR(double(drained[2]) / total, 0.2, 0.06);
}

/**
 * Starvation bound: with a saturating class holding the ring, an
 * idle class's first request is served within one round — i.e. it
 * appears among the next ceil(quantum)+1 drained items, not after
 * the backlog clears.
 */
TEST(FairQueue, IdleClassServedWithinOneRound)
{
    FairQueue<int> q(512);
    for (int i = 0; i < 400; ++i)
        ASSERT_TRUE(q.tryPush(1, 1, 4.0));

    // Let the hog's quantum cycle start.
    std::vector<int> out;
    ASSERT_TRUE(q.popBatch(out, 2));

    // The interactive request arrives mid-backlog...
    ASSERT_TRUE(q.tryPush(2, 2, 4.0));

    // ...and must be drained before the hog can spend more than the
    // remainder of its current quantum plus one fresh quantum (4.0),
    // so within the next ~9 items, far below the 398 still queued.
    int position = -1;
    int seen = 0;
    while (position < 0 && seen < 30) {
        ASSERT_TRUE(q.popBatch(out, 1));
        for (int cls : out) {
            ++seen;
            if (cls == 2)
                position = seen;
        }
    }
    ASSERT_GT(position, 0) << "interactive request starved";
    EXPECT_LE(position, 9);
}

TEST(FairQueue, CloseDrainsThenReleasesWorkers)
{
    FairQueue<int> q(16);
    ASSERT_TRUE(q.tryPush(1));
    ASSERT_TRUE(q.tryPush(2));
    q.close();
    EXPECT_FALSE(q.tryPush(3)); // closed: push refused
    std::vector<int> out;
    ASSERT_TRUE(q.popBatch(out, 16)); // queued items still drain
    EXPECT_EQ(out.size(), 2u);
    EXPECT_FALSE(q.popBatch(out, 16)); // then the exit signal
    int one;
    EXPECT_FALSE(q.pop(one));
}

/**
 * Producers across several classes against consumer threads, with
 * the weight churning mid-stream (live registry edits do this).
 * Everything pushed must come out exactly once; run under TSan in
 * CI for the data-race half of the claim.
 */
TEST(FairQueue, ConcurrentPushPopDeliversEverythingOnce)
{
    FairQueue<int> q(4096);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 2000;

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int value = p * kPerProducer + i;
                // Churn the weight to exercise the ride-along path.
                const double weight = 0.5 + (i % 7);
                while (!q.tryPush(value, p % 3, weight))
                    std::this_thread::yield();
            }
        });
    }

    std::atomic<int> received{0};
    std::vector<std::uint8_t> seen(kProducers * kPerProducer, 0);
    std::mutex seenMutex;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            std::vector<int> out;
            while (q.popBatch(out, 16)) {
                std::lock_guard<std::mutex> lock(seenMutex);
                for (int v : out) {
                    EXPECT_EQ(seen[v], 0);
                    seen[v] = 1;
                    received.fetch_add(1);
                }
            }
        });
    }

    for (auto &t : producers)
        t.join();
    while (received.load() < kProducers * kPerProducer)
        std::this_thread::yield();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(received.load(), kProducers * kPerProducer);
    for (std::uint8_t s : seen)
        EXPECT_EQ(s, 1);
}

} // namespace
} // namespace fosm::tenant
