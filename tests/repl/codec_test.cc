/**
 * @file
 * Wire-format tests for the replication batch codec: lossless round
 * trips (binary-safe keys and values included), strict rejection of
 * truncation, corruption, trailing bytes and absurd lengths — the
 * frame arrives over plain HTTP bodies, so decode must never trust a
 * length field it hasn't bounds-checked.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "repl/codec.hh"

namespace fosm::repl {
namespace {

Batch
sampleBatch()
{
    Batch batch;
    batch.origin = "127.0.0.1:8801";
    batch.storeId = 0xdeadbeefcafe1234ull;
    batch.upto = 4242;
    batch.more = true;
    store::LiveEntry a;
    a.key = "r/cpi-key-1";
    a.value = "{\"cpi\":1.06}";
    a.lsn = 17;
    store::LiveEntry b;
    b.key = std::string("c/v3.bin\0ary", 12);
    b.value = std::string("\x00\x01\xff\xfe", 4);
    b.lsn = 18;
    store::LiveEntry c;
    c.key = "t/v2/empty-value";
    c.value = "";
    c.lsn = 4242;
    batch.entries = {a, b, c};
    return batch;
}

TEST(ReplCodec, RoundTripsEveryField)
{
    const Batch in = sampleBatch();
    const std::string wire = encodeBatch(in);

    Batch out;
    std::string error;
    ASSERT_TRUE(decodeBatch(wire, out, error)) << error;
    EXPECT_EQ(out.origin, in.origin);
    EXPECT_EQ(out.storeId, in.storeId);
    EXPECT_EQ(out.upto, in.upto);
    EXPECT_EQ(out.more, in.more);
    ASSERT_EQ(out.entries.size(), in.entries.size());
    for (std::size_t i = 0; i < in.entries.size(); ++i) {
        EXPECT_EQ(out.entries[i].key, in.entries[i].key);
        EXPECT_EQ(out.entries[i].value, in.entries[i].value);
        EXPECT_EQ(out.entries[i].lsn, in.entries[i].lsn);
    }
}

TEST(ReplCodec, EmptyBatchRoundTrips)
{
    Batch in;
    in.origin = "n1:1";
    in.storeId = 7;
    in.upto = 0;
    in.more = false;
    const std::string wire = encodeBatch(in);
    Batch out;
    std::string error;
    ASSERT_TRUE(decodeBatch(wire, out, error)) << error;
    EXPECT_TRUE(out.entries.empty());
    EXPECT_EQ(out.origin, "n1:1");
    EXPECT_FALSE(out.more);
}

TEST(ReplCodec, EveryTruncationFailsCleanly)
{
    const std::string wire = encodeBatch(sampleBatch());
    for (std::size_t n = 0; n < wire.size(); ++n) {
        Batch out;
        std::string error;
        EXPECT_FALSE(
            decodeBatch(wire.substr(0, n), out, error))
            << "decoded a " << n << "-byte prefix of "
            << wire.size();
    }
}

TEST(ReplCodec, SingleByteCorruptionIsDetected)
{
    const std::string wire = encodeBatch(sampleBatch());
    // Flip one bit in every byte past the magic; the CRC (or the
    // magic/version check for the leading bytes) must catch each.
    for (std::size_t i = 0; i < wire.size(); ++i) {
        std::string bad = wire;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        Batch out;
        std::string error;
        EXPECT_FALSE(decodeBatch(bad, out, error))
            << "corruption at byte " << i << " went undetected";
    }
}

TEST(ReplCodec, TrailingBytesRejected)
{
    std::string wire = encodeBatch(sampleBatch());
    wire += "x";
    Batch out;
    std::string error;
    EXPECT_FALSE(decodeBatch(wire, out, error));
}

TEST(ReplCodec, GarbageAndEmptyInputRejected)
{
    Batch out;
    std::string error;
    EXPECT_FALSE(decodeBatch("", out, error));
    EXPECT_FALSE(decodeBatch("NOTAFRAME", out, error));
    EXPECT_FALSE(
        decodeBatch(std::string(1024, '\0'), out, error));
}

} // namespace
} // namespace fosm::repl
