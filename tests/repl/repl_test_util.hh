/**
 * @file
 * Scaffolding for the replication tests: a Node bundles one store,
 * one HTTP server (serving only the /admin/repl endpoints, the way
 * fosm-serve dispatches them ahead of the model service) and one
 * Replicator, on an ephemeral port. Tests compose Nodes into small
 * clusters, kill and restart them, and assert on store contents and
 * replication counters.
 */

#ifndef FOSM_TESTS_REPL_REPL_TEST_UTIL_HH
#define FOSM_TESTS_REPL_REPL_TEST_UTIL_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../store/store_test_util.hh"
#include "repl/replicator.hh"
#include "server/http.hh"
#include "server/metrics.hh"
#include "store/store.hh"

namespace fosm::repl::test {

/** Poll a condition until it holds or ~3 s pass. */
inline bool
waitFor(const std::function<bool()> &condition, int timeoutMs = 3000)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
        if (condition())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return condition();
}

/** One cluster member: store + repl endpoints + replicator. */
struct Node
{
    fosm::test::TempDir dir;
    std::shared_ptr<store::PersistentStore> store;
    std::unique_ptr<server::HttpServer> server;
    std::unique_ptr<server::MetricsRegistry> metrics;
    std::unique_ptr<Replicator> repl;
    /** What the server handler dispatches to; swapped atomically so
     *  a replicator can be wired after the socket is open. */
    std::atomic<Replicator *> handlerRepl{nullptr};
    std::string label;

    Node() { openStore(); }

    void
    openStore()
    {
        store::StoreConfig config;
        config.dir = dir.path();
        config.backgroundCompaction = false;
        store = std::make_shared<store::PersistentStore>(config);
    }

    /** port 0 = ephemeral; restarts pass their previous port so the
     *  node's label stays valid in its peers' membership lists. */
    void
    startServer(std::uint16_t port = 0)
    {
        server::HttpServerConfig config;
        config.port = port;
        config.workers = 2;
        server = std::make_unique<server::HttpServer>(
            config, [this](const server::HttpRequest &request) {
                Replicator *r = handlerRepl.load();
                if (r && Replicator::handles(request.path()))
                    return r->handle(request);
                return server::HttpResponse::text(404,
                                                  "not found\n");
            });
        server->start();
        label = "127.0.0.1:" + std::to_string(server->port());
    }

    std::uint16_t port() const { return server->port(); }

    void
    startRepl(const std::vector<std::string> &peers,
              std::size_t replication = 2)
    {
        metrics = std::make_unique<server::MetricsRegistry>();
        ReplConfig config;
        config.self = label;
        config.peers = peers;
        config.replication = replication;
        config.flushIntervalMs = 5;
        // Tests drive anti-entropy explicitly through catchUp().
        config.antiEntropyIntervalMs = 0;
        config.readRepairTimeoutMs = 500;
        repl = std::make_unique<Replicator>(config, store, *metrics);
        repl->start();
        handlerRepl.store(repl.get());
    }

    /** SIGKILL stand-in: stop serving and replicating, nothing
     *  flushed, the store directory left as-is. */
    void
    kill()
    {
        handlerRepl.store(nullptr);
        // Join the server before destroying the replicator: a
        // worker may still be inside a dispatched handle() call.
        if (server) {
            server->requestStop();
            server->join();
            server.reset();
        }
        if (repl) {
            repl->stop(0);
            repl.reset();
        }
        store.reset();
    }

    /** Process restart on the same port and store directory. */
    void
    restart(std::uint16_t port,
            const std::vector<std::string> &peers,
            std::size_t replication = 2)
    {
        openStore();
        startServer(port);
        startRepl(peers, replication);
    }

    ~Node() { kill(); }
};

} // namespace fosm::repl::test

#endif // FOSM_TESTS_REPL_REPL_TEST_UTIL_HH
