/**
 * @file
 * Replicator behavior over real sockets: write-behind shipping to
 * ring successors, read-repair of local misses from the preference
 * list, LSN-watermarked anti-entropy catch-up (including the fast
 * path once caught up), store-epoch detection, and the key-digest
 * rule that keeps the store's notion of ownership identical to the
 * gateway's.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "repl/replicator.hh"
#include "repl_test_util.hh"

namespace fosm::repl {
namespace {

using test::Node;
using test::waitFor;

TEST(ReplDigest, ResponseKeysHashTheEmbeddedCacheKey)
{
    // r/ entries strip the prefix so the digest equals the
    // gateway's shardDigest of the canonical cache key; other
    // prefixes hash the whole store key.
    EXPECT_EQ(Replicator::keyDigest("r/v3|/v1/cpi|{}"),
              fnv1a64("v3|/v1/cpi|{}"));
    EXPECT_EQ(Replicator::keyDigest("c/v3.gcc.12345"),
              fnv1a64("c/v3.gcc.12345"));
    EXPECT_EQ(Replicator::keyDigest("t/v2/depth"),
              fnv1a64("t/v2/depth"));
}

TEST(Repl, WriteBehindShipsCommittedEntriesToTheSuccessor)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    for (int i = 0; i < 32; ++i)
        a.store->put("r/key-" + std::to_string(i),
                     "value-" + std::to_string(i));
    ASSERT_TRUE(a.repl->flush(3000));

    // With N=2 and two nodes, every replicable entry lands on the
    // other node regardless of which one owns it.
    ASSERT_TRUE(waitFor([&] {
        for (int i = 0; i < 32; ++i)
            if (!b.store->contains("r/key-" + std::to_string(i)))
                return false;
        return true;
    }));
    std::string value;
    ASSERT_TRUE(b.store->get("r/key-7", value));
    EXPECT_EQ(value, "value-7");

    const ReplCounters ac = a.repl->counters();
    EXPECT_EQ(ac.enqueued, 32u);
    EXPECT_EQ(ac.entriesSent, 32u);
    EXPECT_GE(ac.batchesSent, 1u);
    EXPECT_EQ(ac.dropped, 0u);
    EXPECT_EQ(b.repl->counters().entriesApplied, 32u);
}

TEST(Repl, BookkeepingAndForeignKeysAreNotReplicated)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    a.store->put("x/not-replicable", "nope");
    a.store->put("w/127.0.0.1:9999", "1:2"); // a watermark
    a.store->put("r/yes", "shipped");
    ASSERT_TRUE(a.repl->flush(3000));
    ASSERT_TRUE(
        waitFor([&] { return b.store->contains("r/yes"); }));

    EXPECT_FALSE(b.store->contains("x/not-replicable"));
    EXPECT_FALSE(b.store->contains("w/127.0.0.1:9999"));
    EXPECT_EQ(a.repl->counters().enqueued, 1u);
}

TEST(Repl, ReadRepairFetchesAMissFromThePreferenceList)
{
    Node a, b;
    a.startServer();
    b.startServer();
    // Seed A's store before replication starts: no commit hook yet,
    // so the entry exists only on A.
    a.store->put("r/only-on-a", "repaired-value");
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    ASSERT_FALSE(b.store->contains("r/only-on-a"));
    std::string value;
    ASSERT_TRUE(b.repl->fetchFromPeers("r/only-on-a", value));
    EXPECT_EQ(value, "repaired-value");
    // The hit is written back locally: the next miss never probes.
    EXPECT_TRUE(b.store->contains("r/only-on-a"));
    EXPECT_EQ(b.repl->counters().readRepairHits, 1u);

    // A key nobody has is a miss, not an error.
    EXPECT_FALSE(b.repl->fetchFromPeers("r/nowhere", value));
    EXPECT_EQ(b.repl->counters().readRepairMisses, 1u);
}

TEST(Repl, CatchUpPullsMissedEntriesAndAdvancesTheWatermark)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    // B serves no repl endpoints yet: A's write-behind sends fail,
    // exactly like a SIGKILLed successor.
    for (int i = 0; i < 64; ++i)
        a.store->put("r/missed-" + std::to_string(i), "v");
    ASSERT_TRUE(a.repl->flush(3000));
    EXPECT_GE(a.repl->counters().sendFailures, 1u);

    b.startRepl(peers);
    ASSERT_FALSE(b.store->contains("r/missed-0"));

    // Rejoin catch-up: one sweep pulls the backlog.
    const std::size_t applied = b.repl->catchUp();
    EXPECT_EQ(applied, 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_TRUE(
            b.store->contains("r/missed-" + std::to_string(i)));
    const ReplCounters bc = b.repl->counters();
    EXPECT_EQ(bc.catchupEntries, 64u);
    EXPECT_GE(bc.catchupBytes, 64u);
    EXPECT_TRUE(b.store->contains("w/" + a.label));

    // Caught up: the next sweep is the watermark fast path — a
    // pull happens but nothing is transferred or applied.
    EXPECT_EQ(b.repl->catchUp(), 0u);
    const ReplCounters after = b.repl->counters();
    EXPECT_GT(after.pulls, bc.pulls);
    EXPECT_EQ(after.catchupEntries, 64u);
}

TEST(Repl, EpochMismatchResetsTheWatermarkAndReconverges)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    for (int i = 0; i < 8; ++i)
        a.store->put("r/epoch-" + std::to_string(i), "v");
    // Flush before B's replicator exists so every write-behind send
    // has already failed: catch-up is the only way B converges.
    ASSERT_TRUE(a.repl->flush(3000));
    b.startRepl(peers);
    ASSERT_EQ(b.repl->catchUp(), 8u);

    // Poison B's recorded watermark with a stale epoch and an LSN
    // far past A's head — the shape left behind when A's store was
    // wiped and recreated. The origin must ignore the stale LSN and
    // answer from zero; B must count a reset and re-adopt A's epoch.
    b.store->put("w/" + a.label, "12345:999999");
    const std::size_t applied = b.repl->catchUp();
    EXPECT_EQ(applied, 0u); // everything already present: skipped
    EXPECT_GE(b.repl->counters().watermarkResets, 1u);
    std::string mark;
    ASSERT_TRUE(b.store->get("w/" + a.label, mark));
    const json::Value status = a.repl->statusJson();
    const json::Value *id = status.find("storeId");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(mark.substr(0, mark.find(':')), id->asString());
}

TEST(Repl, StopWithDeadlineFlushesTheQueueFirst)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    for (int i = 0; i < 128; ++i)
        a.store->put("r/drain-" + std::to_string(i), "v");
    // The drain-with-flush handoff: stop() ships the backlog before
    // joining, so a retiring node leaves its successors warm.
    a.repl->stop(5000);
    ASSERT_TRUE(waitFor([&] {
        for (int i = 0; i < 128; ++i)
            if (!b.store->contains("r/drain-" +
                                   std::to_string(i)))
                return false;
        return true;
    }));
}

TEST(Repl, InactiveWithoutPeersAndNeverSelfSends)
{
    Node a;
    a.startServer();
    a.startRepl({a.label});
    EXPECT_FALSE(a.repl->active());
    a.store->put("r/lonely", "v");
    EXPECT_EQ(a.repl->counters().enqueued, 0u);
    std::string value;
    EXPECT_FALSE(a.repl->fetchFromPeers("r/lonely", value));
}

TEST(Repl, OwnershipCountsSplitOwnedReplicaForeign)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    for (int i = 0; i < 16; ++i)
        a.store->put("r/own-" + std::to_string(i), "v");
    ASSERT_TRUE(a.repl->flush(3000));
    ASSERT_TRUE(waitFor([&] {
        return b.repl->counters().entriesApplied == 16u;
    }));

    // Two nodes, N=2: every entry is on both, owned on one side and
    // replica on the other; the m/ and w/ keys count as meta.
    const OwnershipCounts ac = a.repl->ownershipCounts();
    const OwnershipCounts bc = b.repl->ownershipCounts();
    EXPECT_EQ(ac.owned + ac.replica, 16u);
    EXPECT_EQ(bc.owned + bc.replica, 16u);
    EXPECT_EQ(ac.owned, bc.replica);
    EXPECT_EQ(ac.replica, bc.owned);
    EXPECT_EQ(ac.foreign, 0u);
    EXPECT_GE(ac.meta, 1u);
}

} // namespace
} // namespace fosm::repl
