/**
 * @file
 * The repair half of the self-healing loop: a scrub finding on one
 * node is re-fetched from its preference list, CRC-verified on the
 * wire, and re-committed — which clears the quarantine. Also pins
 * the two safety properties: an owned key repairs from its successor
 * (the owner's copy went bad, the successors are the authority), and
 * a peer's corrupt copy is never imported.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "repl_test_util.hh"
#include "store/scrubber.hh"

namespace fosm::repl {
namespace {

using fosm::repl::test::Node;
using fosm::repl::test::waitFor;

std::string
segmentPath(const std::string &dir, std::uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llu.seg",
                  static_cast<unsigned long long>(id));
    return dir + "/" + buf;
}

/** XOR one byte of `key`'s live VALUE on disk, store still open. */
void
corruptKeyOnDisk(store::PersistentStore &st, const std::string &key)
{
    st.flush();
    for (const store::SegmentLsnInfo &info : st.segmentLsns()) {
        for (const store::ScrubEntry &e :
             st.liveEntriesInSegment(info.id, 0)) {
            if (e.key != key)
                continue;
            const std::string path =
                segmentPath(st.config().dir, info.id);
            // 32-byte record header, then the key, then the value.
            const std::streamoff off =
                static_cast<std::streamoff>(e.offset + 32 +
                                            key.size());
            std::fstream f(path, std::ios::in | std::ios::out |
                                     std::ios::binary);
            ASSERT_TRUE(f.is_open()) << path;
            f.seekg(off);
            char byte = 0;
            f.read(&byte, 1);
            byte = static_cast<char>(byte ^ 0x01);
            f.seekp(off);
            f.write(&byte, 1);
            return;
        }
    }
    FAIL() << "no live record for " << key;
}

TEST(Repair, RepairsQuarantinedBitFlipFromPeer)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers{a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    const std::string value(512, 'p');
    a.store->put("r/k1", value);
    ASSERT_TRUE(waitFor([&] {
        std::string v;
        return b.store->get("r/k1", v);
    }));

    corruptKeyOnDisk(*b.store, "r/k1");

    // The serving wiring: scrub finding -> quarantine -> repair
    // queue; the repair worker pulls the good copy from a.
    store::Scrubber scrubber(b.store, store::ScrubConfig{});
    scrubber.setCorruptHandler(
        [&](const std::string &key, std::uint64_t) {
            b.repl->enqueueRepair(key);
        });
    const store::Scrubber::PassResult pass = scrubber.scrubOnce(true);
    EXPECT_EQ(pass.corrupt, 1u);
    EXPECT_EQ(pass.quarantined, 1u);

    ASSERT_TRUE(waitFor(
        [&] { return b.repl->counters().repairSuccess >= 1; }));
    std::string repaired;
    ASSERT_TRUE(b.store->get("r/k1", repaired));
    EXPECT_EQ(repaired, value); // bit-identical to the original
    EXPECT_FALSE(b.store->get(
        store::PersistentStore::quarantineKey("r/k1"), repaired));
    EXPECT_EQ(b.store->stats().quarantineLive, 0u);
    EXPECT_GE(b.repl->counters().repairEnqueued, 1u);
}

TEST(Repair, CoversKeysTheNodeOwns)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers{a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    // Unlike read-repair, corruption repair must not skip owned
    // keys: pick one b itself owns, then break b's copy of it.
    std::string key;
    for (int i = 0; i < 64 && key.empty(); ++i) {
        const std::string candidate =
            "r/owned" + std::to_string(i);
        if (b.repl->ownsKey(candidate))
            key = candidate;
    }
    ASSERT_FALSE(key.empty());

    const std::string value = "authoritative-value";
    a.store->put(key, value);
    ASSERT_TRUE(waitFor([&] {
        std::string v;
        return b.store->get(key, v);
    }));
    corruptKeyOnDisk(*b.store, key);

    store::Scrubber scrubber(b.store, store::ScrubConfig{});
    scrubber.setCorruptHandler(
        [&](const std::string &k, std::uint64_t) {
            b.repl->enqueueRepair(k);
        });
    ASSERT_EQ(scrubber.scrubOnce(true).quarantined, 1u);

    ASSERT_TRUE(waitFor(
        [&] { return b.repl->counters().repairSuccess >= 1; }));
    std::string repaired;
    ASSERT_TRUE(b.store->get(key, repaired));
    EXPECT_EQ(repaired, value);
}

TEST(Repair, NeverImportsAPeersCorruptCopy)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers{a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    const std::string value(128, 'q');
    a.store->put("r/bad", value);
    ASSERT_TRUE(waitFor([&] {
        std::string v;
        return b.store->get("r/bad", v);
    }));

    // Both copies rot. a's is corrupt but NOT quarantined — its
    // handleGet must detect that itself (re-verify + CRC trailer)
    // and answer 404 rather than hand b the damage.
    corruptKeyOnDisk(*a.store, "r/bad");
    corruptKeyOnDisk(*b.store, "r/bad");

    std::uint64_t lsn = 0;
    ASSERT_EQ(b.store->verifyRecord("r/bad", lsn),
              store::RecordCheck::Corrupt);
    ASSERT_TRUE(b.store->quarantine("r/bad", lsn));

    EXPECT_FALSE(b.repl->repairKey("r/bad"));
    EXPECT_GE(b.repl->counters().repairFailures, 1u);
    std::string v;
    EXPECT_FALSE(b.store->get("r/bad", v));
    // The quarantine mark stands, so the next scrub pass retries.
    EXPECT_TRUE(b.store->get(
        store::PersistentStore::quarantineKey("r/bad"), v));
}

TEST(Repair, FailsCleanlyWithPeerDown)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers{a.label, b.label};
    a.startRepl(peers);
    b.startRepl(peers);

    const std::string value = "only-copy-left-is-corrupt";
    a.store->put("r/alone", value);
    ASSERT_TRUE(waitFor([&] {
        std::string v;
        return b.store->get("r/alone", v);
    }));
    corruptKeyOnDisk(*b.store, "r/alone");
    a.kill();

    std::uint64_t lsn = 0;
    ASSERT_EQ(b.store->verifyRecord("r/alone", lsn),
              store::RecordCheck::Corrupt);
    ASSERT_TRUE(b.store->quarantine("r/alone", lsn));

    EXPECT_FALSE(b.repl->repairKey("r/alone"));
    EXPECT_GE(b.repl->counters().repairFailures, 1u);
    // Still a miss, mark still standing: honest degradation until
    // the peer returns or the value is recomputed and re-put.
    std::string v;
    EXPECT_FALSE(b.store->get("r/alone", v));
    EXPECT_TRUE(b.store->get(
        store::PersistentStore::quarantineKey("r/alone"), v));
}

} // namespace
} // namespace fosm::repl
