/**
 * @file
 * Table-driven topology tests for the replicated store: preference-
 * list invariants every cluster shape must satisfy (owner first,
 * distinct members, every node computing the identical list),
 * successor-list recomputation under membership changes, and the
 * cluster-event scenarios — owner kill with a warm successor, drain
 * with a final flush, rejoin catch-up, and the documented double-
 * failure limit of N=2 — run against real stores and sockets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/hash_ring.hh"
#include "common/hash.hh"
#include "repl/replicator.hh"
#include "repl_test_util.hh"
#include "server/metrics.hh"

namespace fosm::repl {
namespace {

using test::Node;
using test::waitFor;

/** A replicator with routing only (no store, no threads). */
std::unique_ptr<Replicator>
routingOnly(const std::string &self,
            const std::vector<std::string> &peers,
            std::size_t replication,
            server::MetricsRegistry &metrics)
{
    ReplConfig config;
    config.self = self;
    config.peers = peers;
    config.replication = replication;
    return std::make_unique<Replicator>(config, nullptr, metrics);
}

// -- Preference-list invariants, one row per cluster shape ---------

struct ShapeCase
{
    const char *name;
    std::vector<std::string> peers;
    std::size_t replication;
};

const ShapeCase kShapes[] = {
    {"pair-n2", {"n0:1", "n1:1"}, 2},
    {"trio-n2", {"n0:1", "n1:1", "n2:1"}, 2},
    {"trio-n3", {"n0:1", "n1:1", "n2:1"}, 3},
    {"quad-n2", {"n0:1", "n1:1", "n2:1", "n3:1"}, 2},
    {"quad-n3", {"n0:1", "n1:1", "n2:1", "n3:1"}, 3},
    {"five-n2",
     {"n0:1", "n1:1", "n2:1", "n3:1", "n4:1"},
     2},
    {"over-replicated", {"n0:1", "n1:1"}, 5},
};

TEST(ReplTopology, PreferenceListsSatisfyTheInvariants)
{
    for (const ShapeCase &shape : kShapes) {
        SCOPED_TRACE(shape.name);
        server::MetricsRegistry metrics;
        // One replicator per member: all must agree on every list,
        // or owners and replicas diverge silently.
        std::vector<std::unique_ptr<Replicator>> views;
        for (const std::string &self : shape.peers)
            views.push_back(routingOnly(self, shape.peers,
                                        shape.replication,
                                        metrics));
        const std::size_t expectLen =
            std::min(shape.replication, shape.peers.size());
        for (int k = 0; k < 50; ++k) {
            const std::string key =
                "r/design-point-" + std::to_string(k);
            const auto reference = views[0]->preferenceFor(key);
            ASSERT_EQ(reference.size(), expectLen);
            // Distinct members, all drawn from the membership.
            const std::set<std::string> distinct(reference.begin(),
                                                 reference.end());
            EXPECT_EQ(distinct.size(), reference.size());
            for (const std::string &label : reference)
                EXPECT_NE(std::find(shape.peers.begin(),
                                    shape.peers.end(), label),
                          shape.peers.end());
            std::size_t owners = 0;
            for (std::size_t v = 0; v < views.size(); ++v) {
                // Identical list from every member's perspective.
                EXPECT_EQ(views[v]->preferenceFor(key), reference);
                if (views[v]->ownsKey(key))
                    ++owners;
            }
            // Exactly one owner, and it heads the list.
            EXPECT_EQ(owners, 1u);
            EXPECT_TRUE(
                views[0]->ownsKey(key) ==
                (reference.front() == shape.peers[0]));
        }
    }
}

TEST(ReplTopology, RemovingTheOwnerPromotesItsFirstSuccessor)
{
    const std::vector<std::string> members = {"n0:1", "n1:1",
                                              "n2:1", "n3:1"};
    cluster::HashRing full;
    for (const std::string &m : members)
        full.add(m);
    for (int k = 0; k < 200; ++k) {
        const std::uint64_t digest =
            Replicator::keyDigest("r/key-" + std::to_string(k));
        const auto pref = full.route(digest, 2);
        const std::string owner = full.name(pref[0]);
        const std::string successor = full.name(pref[1]);
        cluster::HashRing survivor;
        for (const std::string &m : members)
            if (m != owner)
                survivor.add(m);
        // Consistent hashing: dropping the owner's vnodes makes the
        // old first successor the new primary — which is exactly the
        // node holding the N=2 replica, so failover lands warm.
        EXPECT_EQ(survivor.name(survivor.primary(digest)),
                  successor)
            << "key " << k << " owner " << owner;
    }
}

TEST(ReplTopology, AddingANodeOnlyInsertsItIntoAffectedLists)
{
    const std::vector<std::string> members = {"n0:1", "n1:1",
                                              "n2:1"};
    cluster::HashRing before;
    for (const std::string &m : members)
        before.add(m);
    cluster::HashRing after;
    for (const std::string &m : members)
        after.add(m);
    after.add("n3:1");
    std::size_t moved = 0;
    for (int k = 0; k < 200; ++k) {
        const std::uint64_t digest =
            Replicator::keyDigest("r/key-" + std::to_string(k));
        const std::string ownerBefore =
            before.name(before.primary(digest));
        const std::string ownerAfter =
            after.name(after.primary(digest));
        // An owner either keeps its keys or loses them to the new
        // node; keys never shuffle between surviving nodes.
        if (ownerAfter != ownerBefore) {
            EXPECT_EQ(ownerAfter, "n3:1");
            ++moved;
        }
    }
    // Roughly 1/4 of the keyspace moves to the fourth node.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, 150u);
}

// -- Cluster-event scenarios over real stores and sockets ----------

/** Write each key on its ring owner, as gateway routing would. */
void
writeAtOwners(std::vector<Node *> &nodes, int count)
{
    for (int k = 0; k < count; ++k) {
        const std::string key = "r/evt-" + std::to_string(k);
        for (Node *node : nodes) {
            if (node->repl->ownsKey(key)) {
                node->store->put(key, "value-" + std::to_string(k));
                break;
            }
        }
    }
}

TEST(ReplTopology, OwnerKillLeavesAWarmSuccessor)
{
    Node a, b, c;
    std::vector<Node *> nodes = {&a, &b, &c};
    for (Node *n : nodes)
        n->startServer();
    const std::vector<std::string> peers = {a.label, b.label,
                                            c.label};
    for (Node *n : nodes)
        n->startRepl(peers, 2);

    writeAtOwners(nodes, 24);
    for (Node *n : nodes)
        ASSERT_TRUE(n->repl->flush(3000));
    // Every key must reach its first successor (the N=2 copy).
    ASSERT_TRUE(waitFor([&] {
        for (int k = 0; k < 24; ++k) {
            const std::string key = "r/evt-" + std::to_string(k);
            const auto pref = a.repl->preferenceFor(key);
            for (Node *n : nodes)
                if (n->label == pref[1] &&
                    !n->store->contains(key))
                    return false;
        }
        return true;
    }));

    // Kill one node; every key it owned is already on the next
    // label in preference order — the gateway fails over warm.
    const auto doomed = a.repl->preferenceFor("r/evt-0");
    Node *victim = nullptr;
    for (Node *n : nodes)
        if (n->label == doomed[0])
            victim = n;
    ASSERT_NE(victim, nullptr);
    std::vector<std::string> victimKeys;
    for (int k = 0; k < 24; ++k) {
        const std::string key = "r/evt-" + std::to_string(k);
        if (victim->repl->ownsKey(key))
            victimKeys.push_back(key);
    }
    ASSERT_FALSE(victimKeys.empty());
    const std::string victimLabel = victim->label;
    victim->kill();
    for (const std::string &key : victimKeys) {
        Node *alive = nodes[0]->label == victimLabel ? nodes[1]
                                                     : nodes[0];
        const auto pref = alive->repl->preferenceFor(key);
        ASSERT_EQ(pref[0], victimLabel);
        for (Node *n : nodes) {
            if (n->label == pref[1]) {
                EXPECT_TRUE(n->store->contains(key))
                    << key << " not warm on " << pref[1];
            }
        }
    }
}

TEST(ReplTopology, RejoinCatchesUpThroughTheWatermarks)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers, 2);
    b.startRepl(peers, 2);

    a.store->put("r/before-kill", "v0");
    ASSERT_TRUE(a.repl->flush(3000));
    ASSERT_TRUE(waitFor(
        [&] { return b.store->contains("r/before-kill"); }));

    // Kill B, keep writing on A: these entries miss B entirely.
    const std::uint16_t bPort = b.port();
    b.kill();
    for (int k = 0; k < 40; ++k)
        a.store->put("r/while-down-" + std::to_string(k), "v");
    ASSERT_TRUE(a.repl->flush(3000));
    EXPECT_GE(a.repl->counters().sendFailures, 1u);

    // Rejoin on the same port and store; the recorded watermark
    // means catch-up transfers only the missed entries, not the
    // whole segment log.
    b.restart(bPort, peers, 2);
    EXPECT_TRUE(b.store->contains("r/before-kill"));
    const std::size_t applied = b.repl->catchUp();
    EXPECT_EQ(applied, 40u);
    for (int k = 0; k < 40; ++k)
        EXPECT_TRUE(b.store->contains("r/while-down-" +
                                      std::to_string(k)));
    EXPECT_EQ(b.repl->counters().catchupEntries, 40u);
}

TEST(ReplTopology, DrainWithFlushHandsTheShardOff)
{
    Node a, b;
    a.startServer();
    b.startServer();
    const std::vector<std::string> peers = {a.label, b.label};
    a.startRepl(peers, 2);
    b.startRepl(peers, 2);

    for (int k = 0; k < 96; ++k)
        a.store->put("r/handoff-" + std::to_string(k), "v");
    // The drain path fosm-serve runs on SIGTERM: flush, then stop.
    ASSERT_TRUE(a.repl->flush(5000));
    a.repl->stop(1000);
    ASSERT_TRUE(waitFor([&] {
        for (int k = 0; k < 96; ++k)
            if (!b.store->contains("r/handoff-" +
                                   std::to_string(k)))
                return false;
        return true;
    }));
}

TEST(ReplTopology, DoubleFailureAtN2LosesTheWarmCopy)
{
    // The documented limit: N=2 survives one failure. Find a key
    // and kill both members of its preference list; the remaining
    // nodes never held it, so the gateway's third choice recomputes
    // (correct, just cold). The store never serves wrong data — the
    // copy is absent, not stale.
    Node a, b, c, d;
    std::vector<Node *> nodes = {&a, &b, &c, &d};
    for (Node *n : nodes)
        n->startServer();
    const std::vector<std::string> peers = {a.label, b.label,
                                            c.label, d.label};
    for (Node *n : nodes)
        n->startRepl(peers, 2);

    writeAtOwners(nodes, 24);
    for (Node *n : nodes)
        ASSERT_TRUE(n->repl->flush(3000));
    ASSERT_TRUE(waitFor([&] {
        for (int k = 0; k < 24; ++k) {
            const std::string key = "r/evt-" + std::to_string(k);
            const auto pref = a.repl->preferenceFor(key);
            for (Node *n : nodes)
                if (n->label == pref[1] &&
                    !n->store->contains(key))
                    return false;
        }
        return true;
    }));

    for (int k = 0; k < 24; ++k) {
        const std::string key = "r/evt-" + std::to_string(k);
        const auto pref = a.repl->preferenceFor(key);
        ASSERT_EQ(pref.size(), 2u);
        for (Node *n : nodes) {
            const bool onList =
                n->label == pref[0] || n->label == pref[1];
            // Replica placement is exact: members of the preference
            // list hold the key, nobody else does.
            EXPECT_EQ(n->store->contains(key), onList)
                << key << " on " << n->label;
        }
    }
}

} // namespace
} // namespace fosm::repl
