/** @file Unit tests for the branch predictors. */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/ideal.hh"
#include "branch/local.hh"
#include "branch/predictor.hh"
#include "common/rng.hh"

namespace fosm {
namespace {

TEST(TwoBitCounter, SaturatesAndHysteresis)
{
    TwoBitCounter c;
    EXPECT_FALSE(c.taken()); // init weakly not-taken
    c.update(true);
    EXPECT_TRUE(c.taken()); // 1 -> 2: weakly taken
    c.update(true);
    c.update(true); // saturate at 3
    EXPECT_EQ(c.raw(), 3u);
    c.update(false);
    EXPECT_TRUE(c.taken()); // hysteresis: one miss keeps taken
    c.update(false);
    EXPECT_FALSE(c.taken());
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.raw(), 0u);
}

TEST(IdealPredictor, NeverMispredicts)
{
    IdealPredictor p;
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(p.predictAndUpdate(i * 4, rng.bernoulli(0.5)));
    EXPECT_EQ(p.stats().mispredictions, 0u);
    EXPECT_EQ(p.stats().predictions, 1000u);
}

TEST(BimodalPredictor, LearnsBiasedBranch)
{
    BimodalPredictor p(1024);
    for (int i = 0; i < 100; ++i)
        p.predictAndUpdate(0x100, true);
    p.resetStats();
    for (int i = 0; i < 100; ++i)
        p.predictAndUpdate(0x100, true);
    EXPECT_EQ(p.stats().mispredictions, 0u);
}

TEST(BimodalPredictor, CannotLearnAlternatingPattern)
{
    BimodalPredictor p(1024);
    // Warm up, then measure: TNTN... defeats a 2-bit counter.
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x100, i % 2 == 0);
    p.resetStats();
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x100, i % 2 == 0);
    EXPECT_GT(p.stats().mispredictRate(), 0.4);
}

TEST(GSharePredictor, LearnsAlternatingPattern)
{
    GSharePredictor p(8192);
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x100, i % 2 == 0);
    p.resetStats();
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x100, i % 2 == 0);
    EXPECT_LT(p.stats().mispredictRate(), 0.05);
}

TEST(GSharePredictor, LearnsShortLoopPattern)
{
    GSharePredictor p(8192);
    // Loop with trip count 4: TTTN repeating.
    auto outcome = [](int i) { return i % 4 != 3; };
    for (int i = 0; i < 4000; ++i)
        p.predictAndUpdate(0x200, outcome(i));
    p.resetStats();
    for (int i = 0; i < 4000; ++i)
        p.predictAndUpdate(0x200, outcome(i));
    EXPECT_LT(p.stats().mispredictRate(), 0.05);
}

TEST(LocalPredictor, LearnsLoopPatternPerBranch)
{
    LocalPredictor p(8192);
    auto outcome = [](int i) { return i % 5 != 4; };
    for (int i = 0; i < 5000; ++i)
        p.predictAndUpdate(0x300, outcome(i));
    p.resetStats();
    for (int i = 0; i < 5000; ++i)
        p.predictAndUpdate(0x300, outcome(i));
    EXPECT_LT(p.stats().mispredictRate(), 0.05);
}

TEST(Predictors, RandomBranchesNearFiftyPercent)
{
    GSharePredictor p(8192);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        p.predictAndUpdate(0x400, rng.bernoulli(0.5));
    EXPECT_GT(p.stats().mispredictRate(), 0.40);
    EXPECT_LT(p.stats().mispredictRate(), 0.60);
}

TEST(Predictors, BiasedRandomBetterThanFair)
{
    GSharePredictor fair(8192), biased(8192);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        fair.predictAndUpdate(0x500, rng.bernoulli(0.5));
        biased.predictAndUpdate(0x500, rng.bernoulli(0.9));
    }
    EXPECT_LT(biased.stats().mispredictRate(),
              fair.stats().mispredictRate() - 0.2);
}

TEST(Factory, BuildsEachKind)
{
    EXPECT_EQ(makePredictor(PredictorKind::GShare)->name(), "gshare");
    EXPECT_EQ(makePredictor(PredictorKind::Bimodal)->name(), "bimodal");
    EXPECT_EQ(makePredictor(PredictorKind::Local)->name(), "local");
    EXPECT_EQ(makePredictor(PredictorKind::Ideal)->name(), "ideal");
}

TEST(PredictorStats, RateComputation)
{
    PredictorStats s;
    s.predictions = 100;
    s.mispredictions = 7;
    EXPECT_NEAR(s.mispredictRate(), 0.07, 1e-12);
    PredictorStats empty;
    EXPECT_EQ(empty.mispredictRate(), 0.0);
}

/**
 * Parameterized comparison: on a mixed site population, predictor
 * quality should order ideal < gshare <= bimodal-ish; specifically
 * gshare must beat bimodal and ideal must beat both.
 */
class PredictorShowdown
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PredictorShowdown, OrderingHoldsAcrossSeeds)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    auto gshare = makePredictor(PredictorKind::GShare);
    auto bimodal = makePredictor(PredictorKind::Bimodal);
    auto ideal = makePredictor(PredictorKind::Ideal);

    // 32 sites visited in a fixed round-robin order, as a loop nest
    // would: the global history is then correlated and gShare can use
    // it. Half biased, a quarter loops, a quarter deterministic
    // period-2 "hard" branches that only history disambiguates.
    int counters[32] = {};
    for (int i = 0; i < 60000; ++i) {
        const int site = i % 32;
        const Addr pc = 0x1000 + site * 4;
        const int k = counters[site]++;
        bool taken;
        if (site < 16)
            taken = rng.bernoulli(0.97);
        else if (site < 24)
            taken = k % 6 != 5;
        else
            taken = k % 2 == 0;
        gshare->predictAndUpdate(pc, taken);
        bimodal->predictAndUpdate(pc, taken);
        ideal->predictAndUpdate(pc, taken);
    }
    EXPECT_EQ(ideal->stats().mispredictions, 0u);
    EXPECT_LT(gshare->stats().mispredictRate(),
              bimodal->stats().mispredictRate() + 0.01);
    EXPECT_LT(gshare->stats().mispredictRate(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorShowdown,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace fosm
