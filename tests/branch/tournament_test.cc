/** @file Tests for the tournament (hybrid) predictor. */

#include <gtest/gtest.h>

#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/tournament.hh"
#include "common/rng.hh"

namespace fosm {
namespace {

TEST(Tournament, LearnsBiasedBranch)
{
    TournamentPredictor p(8192);
    for (int i = 0; i < 200; ++i)
        p.predictAndUpdate(0x100, true);
    p.resetStats();
    for (int i = 0; i < 200; ++i)
        p.predictAndUpdate(0x100, true);
    EXPECT_EQ(p.stats().mispredictions, 0u);
}

TEST(Tournament, LearnsAlternatingPatternViaGShare)
{
    // Bimodal cannot learn TNTN; the chooser must migrate to gShare.
    TournamentPredictor p(8192);
    for (int i = 0; i < 2000; ++i)
        p.predictAndUpdate(0x200, i % 2 == 0);
    p.resetStats();
    for (int i = 0; i < 2000; ++i)
        p.predictAndUpdate(0x200, i % 2 == 0);
    EXPECT_LT(p.stats().mispredictRate(), 0.05);
}

TEST(Tournament, NeverMuchWorseThanBothComponents)
{
    // On a mixed stream the tournament should track (or beat) the
    // better of its components.
    Rng rng(5);
    TournamentPredictor tournament(8192);
    GSharePredictor gshare(8192);
    BimodalPredictor bimodal(8192);
    int counters[16] = {};
    for (int i = 0; i < 60000; ++i) {
        const int site = i % 16;
        const Addr pc = 0x1000 + site * 4;
        const int k = counters[site]++;
        bool taken;
        if (site < 8)
            taken = rng.bernoulli(0.95);
        else if (site < 12)
            taken = k % 4 != 3;
        else
            taken = k % 2 == 0;
        tournament.predictAndUpdate(pc, taken);
        gshare.predictAndUpdate(pc, taken);
        bimodal.predictAndUpdate(pc, taken);
    }
    const double best = std::min(gshare.stats().mispredictRate(),
                                 bimodal.stats().mispredictRate());
    EXPECT_LT(tournament.stats().mispredictRate(), best + 0.02);
}

TEST(Tournament, BeatsBimodalOnHistoryPatterns)
{
    TournamentPredictor tournament(8192);
    BimodalPredictor bimodal(8192);
    for (int i = 0; i < 30000; ++i) {
        const bool taken = (i / 3) % 2 == 0; // TTTNNN pattern
        tournament.predictAndUpdate(0x400, taken);
        bimodal.predictAndUpdate(0x400, taken);
    }
    EXPECT_LT(tournament.stats().mispredictRate(),
              bimodal.stats().mispredictRate() - 0.05);
}

TEST(Tournament, FactoryBuildsIt)
{
    EXPECT_EQ(makePredictor(PredictorKind::Tournament)->name(),
              "tournament");
}

} // namespace
} // namespace fosm
