/** @file Tests for the Section 6 trend studies (Figures 17-19). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/trends.hh"

namespace fosm {
namespace {

TEST(TrendConfig, PaperAssumptions)
{
    const TrendConfig c;
    EXPECT_NEAR(c.mispredictsPerInst(), 0.01, 1e-12);
    EXPECT_EQ(c.totalLogicPs, 8200.0);
    EXPECT_EQ(c.flipFlopPs, 90.0);
}

TEST(TrendMachine, WindowSaturates)
{
    const TrendConfig c;
    for (std::uint32_t width : {2u, 4u, 8u}) {
        const MachineConfig m = trendMachine(width, 5, c);
        // alpha * W^beta must reach the width.
        const double rate =
            c.alpha * std::pow(m.windowSize, c.beta) / c.avgLatency;
        EXPECT_GE(rate, width) << "width " << width;
    }
}

TEST(PipelineDepthSweep, IpcDecreasesWithDepth)
{
    const std::vector<PipelineDepthPoint> points =
        pipelineDepthSweep(4, {5, 10, 20, 40, 80});
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i].ipc, points[i - 1].ipc);
}

TEST(PipelineDepthSweep, WiderIssueAdvantageShrinksWithDepth)
{
    // Figure 17a: "As the front-end pipeline deepens the advantage
    // for wider issue is lost."
    const auto narrow = pipelineDepthSweep(2, {5, 80});
    const auto wide = pipelineDepthSweep(8, {5, 80});
    const double shallow_ratio = wide[0].ipc / narrow[0].ipc;
    const double deep_ratio = wide[1].ipc / narrow[1].ipc;
    EXPECT_GT(shallow_ratio, deep_ratio);
    EXPECT_LT(deep_ratio, 1.5);
}

TEST(PipelineDepthSweep, BipsPeaksAtIntermediateDepth)
{
    const std::vector<std::uint32_t> depths = {2,  5,  10, 20, 30,
                                               40, 55, 70, 90};
    const auto points = pipelineDepthSweep(3, depths);
    const auto best = std::max_element(
        points.begin(), points.end(),
        [](const auto &a, const auto &b) { return a.bips < b.bips; });
    EXPECT_NE(best, points.begin());
    EXPECT_NE(best, points.end() - 1);
}

TEST(OptimalPipelineDepth, Issue3NearPaperResult)
{
    // Paper: "For the issue width 3 curve we get the same result as
    // reported in [4], the optimal pipeline depth is around 55."
    const PipelineDepthPoint best = optimalPipelineDepth(3);
    EXPECT_GE(best.depth, 35u);
    EXPECT_LE(best.depth, 75u);
}

TEST(OptimalPipelineDepth, WiderIssueWantsShorterPipe)
{
    // Paper: "the optimal pipeline depth for wider issue-width moves
    // towards shorter front-end pipeline depth."
    const PipelineDepthPoint i2 = optimalPipelineDepth(2);
    const PipelineDepthPoint i8 = optimalPipelineDepth(8);
    EXPECT_LT(i8.depth, i2.depth);
}

TEST(IssueWidthRequirement, MonotoneInFraction)
{
    const auto points =
        issueWidthRequirement(4, {0.1, 0.2, 0.3, 0.4, 0.5});
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].instructionsBetween,
                  points[i - 1].instructionsBetween);
    }
}

TEST(IssueWidthRequirement, QuadraticScalingWithWidth)
{
    // Paper Figure 18: doubling the issue width requires roughly
    // quadrupling the instructions between mispredictions to keep
    // the same time-at-issue-width fraction.
    const double n4 =
        issueWidthRequirement(4, {0.3})[0].instructionsBetween;
    const double n8 =
        issueWidthRequirement(8, {0.3})[0].instructionsBetween;
    const double n16 =
        issueWidthRequirement(16, {0.3})[0].instructionsBetween;
    EXPECT_GT(n8 / n4, 2.0);
    EXPECT_LT(n8 / n4, 8.0);
    EXPECT_GT(n16 / n8, 2.0);
    EXPECT_LT(n16 / n8, 8.0);
}

TEST(IssueRampSeries, BarelyReachesWidthAtPaperRates)
{
    // Figure 19: with one misprediction per 100 instructions, the
    // width-4 machine barely reaches 4 and the width-8 machine only
    // gets to about 6.
    const std::vector<double> s4 = issueRampSeries(4);
    const std::vector<double> s8 = issueRampSeries(8);
    const double peak4 = *std::max_element(s4.begin(), s4.end());
    const double peak8 = *std::max_element(s8.begin(), s8.end());
    EXPECT_GT(peak4, 3.2);
    EXPECT_LE(peak4, 4.0 + 1e-9);
    EXPECT_GT(peak8, 4.5);
    EXPECT_LT(peak8, 7.5);
}

TEST(IssueRampSeries, BudgetConserved)
{
    const std::vector<double> s = issueRampSeries(4);
    double issued = 0.0;
    for (double v : s)
        issued += v;
    EXPECT_NEAR(issued, 100.0, 1.0);
}

/** Parameterized sweep: BIPS curve is unimodal-ish for every width. */
class DepthSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DepthSweep, OptimumIsInterior)
{
    const PipelineDepthPoint best = optimalPipelineDepth(GetParam());
    EXPECT_GT(best.depth, 3u);
    EXPECT_LT(best.depth, 100u);
    EXPECT_GT(best.bips, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, DepthSweep,
                         ::testing::Values(2, 3, 4, 8));

} // namespace
} // namespace fosm
