/** @file Tests for the assembled first-order model (equation 1). */

#include <gtest/gtest.h>

#include "model/first_order_model.hh"

namespace fosm {
namespace {

MachineConfig
baseline()
{
    MachineConfig m;
    m.width = 4;
    m.frontEndDepth = 5;
    m.windowSize = 48;
    m.robSize = 128;
    m.deltaI = 8;
    m.deltaD = 200;
    return m;
}

IWCharacteristic
squareLaw()
{
    return IWCharacteristic(1.0, 0.5, 1.0, 4);
}

/** A hand-built profile with clean rates. */
MissProfile
syntheticProfile()
{
    MissProfile p;
    p.instructions = 100000;
    p.branches = 20000;
    p.mispredictions = 1000;     // B = 0.05, 0.01 / inst
    p.icacheL1Misses = 500;      // 0.005 / inst
    p.icacheL2Misses = 0;
    p.loads = 25000;
    p.shortLoadMisses = 500;
    p.longLoadMisses = 200;      // 0.002 / inst
    // All misses far apart: every miss is its own overlap group.
    for (std::uint64_t i = 0; i + 1 < p.longLoadMisses; ++i)
        p.ldmGaps.push_back(10000);
    p.avgLatency = 1.0;
    return p;
}

TEST(CpiBreakdown, TotalIsSumOfComponents)
{
    CpiBreakdown b;
    b.ideal = 0.25;
    b.brmisp = 0.10;
    b.icacheL1 = 0.04;
    b.icacheL2 = 0.01;
    b.dcacheLong = 0.40;
    EXPECT_NEAR(b.total(), 0.80, 1e-12);
    EXPECT_NEAR(b.ipc(), 1.25, 1e-12);
}

TEST(FirstOrderModel, ComponentsMatchHandComputation)
{
    const FirstOrderModel model(baseline());
    const CpiBreakdown b =
        model.evaluate(squareLaw(), syntheticProfile());

    // Ideal: saturated at width 4.
    EXPECT_NEAR(b.ideal, 0.25, 1e-9);
    // Branch: 0.01/inst * ~7.35 cycles (paper-average penalty).
    EXPECT_NEAR(b.brmisp, 0.01 * b.branchPenaltyPerEvent, 1e-12);
    EXPECT_NEAR(b.branchPenaltyPerEvent, 7.35, 0.5);
    // Icache: 0.005/inst * 8 cycles (MissDelay mode).
    EXPECT_NEAR(b.icacheL1, 0.005 * 8.0, 1e-9);
    EXPECT_EQ(b.icacheL2, 0.0);
    // Dcache: 0.002/inst * 200 * overlap (no gaps recorded -> every
    // miss its own group -> factor 1).
    EXPECT_NEAR(b.ldmOverlapFactor, 1.0, 1e-12);
    EXPECT_NEAR(b.dcacheLong, 0.002 * 200.0, 1e-9);
}

TEST(FirstOrderModel, OverlapOptionChangesOnlyDcache)
{
    MissProfile p = syntheticProfile();
    // All long misses in pairs 10 instructions apart.
    p.ldmGaps.clear();
    for (std::uint64_t i = 0; i + 2 < p.longLoadMisses; i += 2) {
        p.ldmGaps.push_back(10);
        p.ldmGaps.push_back(10000);
    }
    p.ldmGaps.push_back(10);
    ModelOptions with, without;
    without.dcacheOverlap = false;
    const FirstOrderModel m1(baseline(), with);
    const FirstOrderModel m2(baseline(), without);
    const CpiBreakdown b1 = m1.evaluate(squareLaw(), p);
    const CpiBreakdown b2 = m2.evaluate(squareLaw(), p);

    EXPECT_LT(b1.dcacheLong, b2.dcacheLong);
    EXPECT_NEAR(b1.ideal, b2.ideal, 1e-12);
    EXPECT_NEAR(b1.brmisp, b2.brmisp, 1e-12);
    EXPECT_NEAR(b2.ldmOverlapFactor, 1.0, 1e-12);
}

TEST(FirstOrderModel, MoreMispredictionsMoreCpi)
{
    const FirstOrderModel model(baseline());
    MissProfile low = syntheticProfile();
    MissProfile high = syntheticProfile();
    high.mispredictions = 4000;
    EXPECT_LT(model.evaluate(squareLaw(), low).total(),
              model.evaluate(squareLaw(), high).total());
}

TEST(FirstOrderModel, DeeperPipelineMoreBranchCpi)
{
    MachineConfig shallow = baseline();
    MachineConfig deep = baseline();
    deep.frontEndDepth = 9;
    const MissProfile p = syntheticProfile();
    const CpiBreakdown b5 =
        FirstOrderModel(shallow).evaluate(squareLaw(), p);
    const CpiBreakdown b9 =
        FirstOrderModel(deep).evaluate(squareLaw(), p);
    EXPECT_GT(b9.brmisp, b5.brmisp);
    // Icache CPI unchanged (Section 4.2 observation).
    EXPECT_NEAR(b9.icacheL1, b5.icacheL1, 1e-9);
}

TEST(FirstOrderModel, LowerLatencyHigherIdealIpc)
{
    const FirstOrderModel model(baseline());
    const MissProfile p = syntheticProfile();
    const IWCharacteristic fast(1.7, 0.3, 1.0, 4);
    const IWCharacteristic slow(1.7, 0.3, 2.2, 4);
    EXPECT_LT(model.evaluate(fast, p).ideal,
              model.evaluate(slow, p).ideal);
}

TEST(MeanBurstFromGaps, GeometricApproximation)
{
    Histogram gaps(1000);
    // 3 of 4 gaps below the threshold: p = 0.75, mean burst 4.
    gaps.add(10);
    gaps.add(20);
    gaps.add(30);
    gaps.add(500);
    EXPECT_NEAR(meanBurstFromGaps(gaps, 64), 4.0, 1e-9);
}

TEST(MeanBurstFromGaps, NoGapsMeansIsolated)
{
    Histogram gaps(1000);
    EXPECT_EQ(meanBurstFromGaps(gaps, 64), 1.0);
}

TEST(MeanBurstFromGaps, AllClusteredCapped)
{
    Histogram gaps(1000);
    for (int i = 0; i < 100; ++i)
        gaps.add(5);
    EXPECT_LE(meanBurstFromGaps(gaps, 64), 1000.0);
    EXPECT_GT(meanBurstFromGaps(gaps, 64), 100.0);
}

TEST(FirstOrderModel, BurstAwareModeReducesBranchCpi)
{
    MissProfile p = syntheticProfile();
    // Heavily clustered mispredictions.
    for (int i = 0; i < 999; ++i)
        p.mispredictGap.add(8);
    ModelOptions burst_opts;
    burst_opts.branchMode = BranchPenaltyMode::BurstAware;
    const CpiBreakdown burst =
        FirstOrderModel(baseline(), burst_opts)
            .evaluate(squareLaw(), p);
    const CpiBreakdown avg =
        FirstOrderModel(baseline()).evaluate(squareLaw(), p);
    EXPECT_LT(burst.brmisp, avg.brmisp);
}

} // namespace
} // namespace fosm
