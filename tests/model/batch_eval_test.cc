/**
 * @file
 * Bit-identity tests for the batched model path: the SoA kernels
 * (lockstep drain/ramp walks, single-sweep overlap factors) and the
 * full evaluateBatch must reproduce the scalar TransientAnalyzer /
 * FirstOrderModel results exactly — not approximately — because the
 * /v1/batch endpoint shares response-cache entries with /v1/cpi and a
 * single ULP of drift would make the two paths serve different bytes
 * for the same design point.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/miss_profiler.hh"
#include "model/batch_eval.hh"
#include "model/first_order_model.hh"
#include "model/kernels.hh"
#include "model/transient.hh"

namespace fosm {
namespace {

MachineConfig
baseline()
{
    MachineConfig m;
    m.width = 4;
    m.frontEndDepth = 5;
    m.windowSize = 48;
    m.robSize = 128;
    m.deltaI = 8;
    m.deltaD = 200;
    return m;
}

/** A profile with enough structure to exercise every CPI term. */
MissProfile
syntheticProfile()
{
    MissProfile p;
    p.instructions = 100000;
    p.branches = 20000;
    p.mispredictions = 1000;
    p.icacheL1Misses = 500;
    p.icacheL2Misses = 40;
    p.loads = 25000;
    p.shortLoadMisses = 500;
    p.longLoadMisses = 200;
    // Clustered gaps so overlap factors are nontrivial and depend on
    // the ROB size.
    for (std::uint64_t i = 0; i + 1 < p.longLoadMisses; ++i)
        p.ldmGaps.push_back(i % 3 == 0 ? 20 : 4000);
    p.dtlbLoadMisses = 50;
    for (std::uint64_t i = 0; i + 1 < p.dtlbLoadMisses; ++i)
        p.dtlbGaps.push_back(i % 2 == 0 ? 50 : 9000);
    p.avgLatency = 1.2;
    return p;
}

TEST(Kernels, IssueRateArrayMatchesScalarCalls)
{
    const IWCharacteristic iw(1.1, 0.52, 1.2, 4);
    std::vector<double> w = {0.5, 1.0, 3.7, 16.0, 48.0, 200.0};
    std::vector<double> out(w.size());
    kernels::issueRateArray(iw, w.data(), out.data(), w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_EQ(out[i], iw.issueRate(w[i])) << "lane " << i;
}

TEST(Kernels, DrainRampBatchMatchesScalarWalksBitwise)
{
    // Lanes with different curves, widths and window sizes — lanes
    // terminate at different iterations, so the lockstep walk must
    // freeze each lane's result independently.
    std::vector<TransientAnalyzer> analyzers;
    for (const auto &[alpha, beta, width, window] :
         {std::tuple{1.0, 0.5, 4u, 48u},
          std::tuple{1.3, 0.45, 8u, 256u},
          std::tuple{0.9, 0.6, 2u, 16u},
          std::tuple{1.0, 0.5, 4u, 48u}, // duplicate of lane 0
          std::tuple{1.1, 0.55, 6u, 128u}}) {
        MachineConfig m = baseline();
        m.width = width;
        m.windowSize = window;
        analyzers.emplace_back(
            IWCharacteristic(alpha, beta, 1.0, width), m);
    }
    std::vector<const TransientAnalyzer *> lanes;
    for (const TransientAnalyzer &a : analyzers)
        lanes.push_back(&a);

    const std::vector<kernels::TransientWalks> walks =
        kernels::drainRampBatch(lanes);
    ASSERT_EQ(walks.size(), lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const DrainResult drain = lanes[i]->windowDrain();
        const RampResult ramp = lanes[i]->rampUp();
        EXPECT_EQ(walks[i].drain.cycles, drain.cycles) << i;
        EXPECT_EQ(walks[i].drain.instructions, drain.instructions)
            << i;
        EXPECT_EQ(walks[i].drain.penalty, drain.penalty) << i;
        EXPECT_EQ(walks[i].drain.residual, drain.residual) << i;
        EXPECT_EQ(walks[i].ramp.cycles, ramp.cycles) << i;
        EXPECT_EQ(walks[i].ramp.instructions, ramp.instructions)
            << i;
        EXPECT_EQ(walks[i].ramp.penalty, ramp.penalty) << i;
    }
}

TEST(Kernels, OverlapFactorBatchMatchesScalarSweep)
{
    const MissProfile p = syntheticProfile();
    const std::vector<std::uint64_t> robs = {16, 64, 128, 512, 4096};
    const std::vector<double> batch = kernels::overlapFactorBatch(
        p.ldmGaps, p.longLoadMisses, robs);
    ASSERT_EQ(batch.size(), robs.size());
    for (std::size_t i = 0; i < robs.size(); ++i) {
        MissProfile scalar = p;
        EXPECT_EQ(batch[i],
                  scalar.ldmOverlapFactor(
                      static_cast<std::uint32_t>(robs[i])))
            << "rob " << robs[i];
    }
}

TEST(Kernels, OverlapFactorBatchNoEventsIsUnity)
{
    const std::vector<double> out = kernels::overlapFactorBatch(
        {}, 0, {64, 128});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 1.0);
    EXPECT_EQ(out[1], 1.0);
}

/** evaluateBatch row i must equal the scalar model bit for bit. */
void
expectBatchMatchesScalar(const std::vector<MachineConfig> &machines,
                         const MissProfile &profile,
                         const ModelOptions &options)
{
    std::vector<IWCharacteristic> iws;
    iws.reserve(machines.size());
    for (const MachineConfig &m : machines)
        iws.emplace_back(1.05, 0.51, profile.avgLatency, m.width);

    const std::vector<CpiBreakdown> batch =
        evaluateBatch(iws, machines, profile, options);
    ASSERT_EQ(batch.size(), machines.size());
    for (std::size_t i = 0; i < machines.size(); ++i) {
        const CpiBreakdown scalar =
            FirstOrderModel(machines[i], options)
                .evaluate(iws[i], profile);
        EXPECT_EQ(batch[i].ideal, scalar.ideal) << i;
        EXPECT_EQ(batch[i].brmisp, scalar.brmisp) << i;
        EXPECT_EQ(batch[i].icacheL1, scalar.icacheL1) << i;
        EXPECT_EQ(batch[i].icacheL2, scalar.icacheL2) << i;
        EXPECT_EQ(batch[i].dcacheLong, scalar.dcacheLong) << i;
        EXPECT_EQ(batch[i].dtlb, scalar.dtlb) << i;
        EXPECT_EQ(batch[i].total(), scalar.total()) << i;
        EXPECT_EQ(batch[i].ipc(), scalar.ipc()) << i;
        EXPECT_EQ(batch[i].ldmOverlapFactor, scalar.ldmOverlapFactor)
            << i;
    }
}

std::vector<MachineConfig>
variedMachines()
{
    std::vector<MachineConfig> machines;
    // Rows that share the transient key (vary only deltas / ROB)...
    for (const std::uint32_t deltaD : {100u, 200u, 400u, 800u}) {
        MachineConfig m = baseline();
        m.deltaD = deltaD;
        machines.push_back(m);
    }
    for (const std::uint32_t rob : {32u, 128u, 1024u}) {
        MachineConfig m = baseline();
        m.robSize = rob;
        machines.push_back(m);
    }
    // ...and rows that need their own walk.
    for (const std::uint32_t width : {2u, 6u, 8u}) {
        MachineConfig m = baseline();
        m.width = width;
        m.windowSize = 32 * width;
        machines.push_back(m);
    }
    {
        MachineConfig m = baseline();
        m.clusters = 4;
        m.interClusterDelay = 2;
        machines.push_back(m);
    }
    return machines;
}

TEST(BatchEval, MatchesScalarModelDefaultOptions)
{
    expectBatchMatchesScalar(variedMachines(), syntheticProfile(),
                             ModelOptions{});
}

TEST(BatchEval, MatchesScalarModelWithoutOverlap)
{
    ModelOptions options;
    options.dcacheOverlap = false;
    expectBatchMatchesScalar(variedMachines(), syntheticProfile(),
                             options);
}

TEST(BatchEval, MatchesScalarModelWithOverlapCompensation)
{
    ModelOptions options;
    options.compensateOverlaps = true;
    expectBatchMatchesScalar(variedMachines(), syntheticProfile(),
                             options);
}

TEST(BatchEval, EmptyBatchYieldsNoRows)
{
    EXPECT_TRUE(evaluateBatch({}, {}, syntheticProfile(),
                              ModelOptions{})
                    .empty());
}

} // namespace
} // namespace fosm
