/** @file Tests for the transient analyzer against the paper's
 *  Figure 8 numbers and structural properties. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/transient.hh"

namespace fosm {
namespace {

/** The Figure 8 setting: alpha=1, beta=0.5, unit latency, width 4,
 *  five front-end stages, window large enough to saturate. */
TransientAnalyzer
figure8()
{
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    MachineConfig m;
    m.width = 4;
    m.frontEndDepth = 5;
    m.windowSize = 48;
    m.robSize = 128;
    return TransientAnalyzer(iw, m);
}

TEST(Transient, SteadyStateSaturatedAtWidth)
{
    const TransientAnalyzer t = figure8();
    EXPECT_NEAR(t.steadyIpc(), 4.0, 1e-9);
    // Occupancy sustaining rate 4 on I = sqrt(W): W = 16.
    EXPECT_NEAR(t.steadyOccupancy(), 16.0, 1e-9);
}

TEST(Transient, UnsaturatedOccupancyIsWindowSize)
{
    const IWCharacteristic iw(1.7, 0.3, 2.2, 4); // vpr-like
    MachineConfig m;
    m.windowSize = 48;
    const TransientAnalyzer t(iw, m);
    EXPECT_LT(t.steadyIpc(), 4.0);
    EXPECT_NEAR(t.steadyOccupancy(), 48.0, 1e-6);
}

TEST(Transient, DrainMatchesPaperFigure8)
{
    // Paper: "the aggregate drain penalty is 2.1 cycles" and the
    // branch issues around time 6.
    const DrainResult drain = figure8().windowDrain();
    EXPECT_NEAR(drain.cycles, 6.0, 1.0);
    EXPECT_NEAR(drain.penalty, 2.1, 0.3);
    // The paper measured ~1.3 useful instructions left at issue.
    EXPECT_LT(drain.residual, 2.0);
}

TEST(Transient, RampUpMatchesPaperFigure8)
{
    // Paper: "the ramp up penalty is computed as 2.7 cycles".
    const RampResult ramp = figure8().rampUp();
    EXPECT_NEAR(ramp.penalty, 2.7, 0.3);
}

TEST(Transient, TotalIsolatedPenaltyNearTenCycles)
{
    // Paper: drain 2.1 + pipe 4.9 + ramp 2.7 = 9.7 cycles total for
    // the five-stage front end (we charge DeltaP = 5 exactly).
    const TransientAnalyzer t = figure8();
    const double total = t.windowDrain().penalty + 5.0 +
                         t.rampUp().penalty;
    EXPECT_NEAR(total, 9.7, 0.6);
}

TEST(Transient, DrainConservesInstructions)
{
    const DrainResult drain = figure8().windowDrain();
    EXPECT_NEAR(drain.instructions + drain.residual, 16.0, 1e-6);
}

TEST(Transient, BranchSeriesShape)
{
    const TransientAnalyzer t = figure8();
    const std::vector<double> series = t.branchTransientSeries(2);
    ASSERT_GT(series.size(), 10u);
    // Starts and ends at steady state.
    EXPECT_NEAR(series.front(), 4.0, 1e-9);
    EXPECT_NEAR(series.back(), 4.0, 0.05);
    // Contains the DeltaP zero-issue refill gap.
    EXPECT_EQ(std::count(series.begin(), series.end(), 0.0), 5);
    // Never exceeds the steady rate.
    for (double v : series)
        EXPECT_LE(v, 4.0 + 1e-9);
}

TEST(Transient, IcacheSeriesIdleMatchesDelay)
{
    MachineConfig m;
    m.width = 4;
    m.frontEndDepth = 5;
    m.windowSize = 48;
    m.deltaI = 20; // long delay so the window fully drains
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    const TransientAnalyzer t(iw, m);
    const std::vector<double> series = t.icacheTransientSeries(1);
    // Zero-issue cycles: from drain end (5 + ~6) to re-entry (25):
    // about deltaI - drain = 14.
    const auto zeros =
        std::count(series.begin(), series.end(), 0.0);
    EXPECT_NEAR(static_cast<double>(zeros), 14.0, 2.0);
}

TEST(Transient, IcacheSeriesNoIdleWhenDelayShort)
{
    MachineConfig m;
    m.width = 4;
    m.frontEndDepth = 5;
    m.windowSize = 48;
    m.deltaI = 3; // shorter than the drain: issue never stops
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    const TransientAnalyzer t(iw, m);
    const std::vector<double> series = t.icacheTransientSeries(1);
    const auto zeros =
        std::count(series.begin(), series.end(), 0.0);
    EXPECT_LE(zeros, 1);
}

TEST(Transient, InterMispredictSeriesShape)
{
    const TransientAnalyzer t = figure8();
    const std::vector<double> series = t.interMispredictSeries(100.0);
    ASSERT_GT(series.size(), 10u);
    // Starts with DeltaP refill zeros.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(series[i], 0.0);
    // Issues exactly the budget.
    double issued = 0.0;
    for (double v : series)
        issued += v;
    EXPECT_NEAR(issued, 100.0, 0.5);
    // Peak approaches the width for a 100-instruction budget.
    EXPECT_GT(*std::max_element(series.begin(), series.end()), 3.0);
}

TEST(Transient, SaturationFractionMonotoneInDistance)
{
    const TransientAnalyzer t = figure8();
    double prev = 0.0;
    for (double n : {50.0, 100.0, 400.0, 1600.0}) {
        const double f = t.saturationTimeFraction(n);
        EXPECT_GE(f, prev - 1e-9) << "n " << n;
        prev = f;
    }
    EXPECT_GT(prev, 0.5);
}

TEST(Transient, InversionRoundTrip)
{
    const TransientAnalyzer t = figure8();
    for (double target : {0.2, 0.4, 0.6}) {
        const double n =
            t.instructionsForSaturationFraction(target);
        ASSERT_TRUE(std::isfinite(n));
        EXPECT_NEAR(t.saturationTimeFraction(n), target, 0.05)
            << "target " << target;
    }
}

TEST(Transient, WiderIssueNeedsLongerDistanceForSameFraction)
{
    // The Section 6.2 claim, in its raw form.
    MachineConfig m4, m8;
    m4.width = 4;
    m4.windowSize = 64;
    m8.width = 8;
    m8.windowSize = 256;
    const TransientAnalyzer t4(IWCharacteristic(1.0, 0.5, 1.0, 4), m4);
    const TransientAnalyzer t8(IWCharacteristic(1.0, 0.5, 1.0, 8), m8);
    const double n4 = t4.instructionsForSaturationFraction(0.3);
    const double n8 = t8.instructionsForSaturationFraction(0.3);
    EXPECT_GT(n8, 2.0 * n4);
}

} // namespace
} // namespace fosm
