/** @file Tests for the limited-functional-unit extension
 *  (paper Section 7, future-work 1). */

#include <gtest/gtest.h>

#include "model/first_order_model.hh"
#include "model/fu_model.hh"

namespace fosm {
namespace {

InstMix
typicalMix()
{
    InstMix mix;
    mix.at(InstClass::Load) = 0.25;
    mix.at(InstClass::Store) = 0.10;
    mix.at(InstClass::Branch) = 0.18;
    mix.at(InstClass::IntMul) = 0.02;
    mix.at(InstClass::IntDiv) = 0.005;
    mix.at(InstClass::FpAlu) = 0.03;
    mix.at(InstClass::IntAlu) = 0.415;
    return mix;
}

TEST(FuPoolConfig, DefaultIsUnbounded)
{
    const FuPoolConfig pools;
    EXPECT_FALSE(pools.anyLimited());
    EXPECT_EQ(pools.intAlu.count, 0u);
}

TEST(FuPoolConfig, PoolSharing)
{
    FuPoolConfig pools;
    // Branches share the ALU pool; loads and stores the memory port.
    EXPECT_EQ(&pools.poolFor(InstClass::Branch),
              &pools.poolFor(InstClass::IntAlu));
    EXPECT_EQ(&pools.poolFor(InstClass::Load),
              &pools.poolFor(InstClass::Store));
    EXPECT_NE(&pools.poolFor(InstClass::IntMul),
              &pools.poolFor(InstClass::FpAlu));
}

TEST(EffectiveIssueWidth, UnboundedPoolsGiveFullWidth)
{
    EXPECT_EQ(effectiveIssueWidth(4, FuPoolConfig{}, typicalMix()),
              4.0);
}

TEST(EffectiveIssueWidth, MemPortBindsForLoadHeavyMix)
{
    FuPoolConfig pools;
    pools.memPort = {1, true};
    const InstMix mix = typicalMix(); // 35% memory operations
    // Sustainable rate: 1 port / 0.35 ops per issue = 2.857.
    EXPECT_NEAR(effectiveIssueWidth(8, pools, mix), 1.0 / 0.35,
                1e-9);
}

TEST(EffectiveIssueWidth, SharedPoolAggregatesDemand)
{
    FuPoolConfig pools;
    pools.intAlu = {2, true};
    const InstMix mix = typicalMix();
    // ALU pool serves alu + branch: 0.415 + 0.18 = 0.595 per issue.
    EXPECT_NEAR(effectiveIssueWidth(8, pools, mix), 2.0 / 0.595,
                1e-9);
}

TEST(EffectiveIssueWidth, UnpipelinedScalesByLatency)
{
    FuPoolConfig pools;
    pools.intDiv = {1, false};
    InstMix mix;
    mix.at(InstClass::IntDiv) = 0.05;
    mix.at(InstClass::IntAlu) = 0.95;
    LatencyConfig lat; // div latency 12
    // Demand: 0.05 * 12 = 0.6 unit-cycles per issue.
    EXPECT_NEAR(effectiveIssueWidth(8, pools, mix, lat), 1.0 / 0.6,
                1e-9);
    // Pipelined divide would not bind at all (0.05 < 1).
    pools.intDiv.pipelined = true;
    EXPECT_EQ(effectiveIssueWidth(8, pools, mix, lat), 8.0);
}

TEST(EffectiveIssueWidth, NeverExceedsWidth)
{
    FuPoolConfig pools;
    pools.memPort = {16, true};
    EXPECT_EQ(effectiveIssueWidth(4, pools, typicalMix()), 4.0);
}

TEST(RequiredPools, SustainsTargetRate)
{
    const InstMix mix = typicalMix();
    const FuPoolConfig pools = requiredPools(4.0, mix);
    EXPECT_GE(effectiveIssueWidth(4, pools, mix), 4.0 - 1e-9);
    // And is not grossly oversized: removing one memory port breaks
    // the target.
    FuPoolConfig smaller = pools;
    ASSERT_GT(smaller.memPort.count, 0u);
    smaller.memPort.count -= 1;
    if (smaller.memPort.count > 0) {
        EXPECT_LT(effectiveIssueWidth(4, smaller, mix), 4.0);
    }
}

TEST(RequiredPools, ScalesWithTarget)
{
    const InstMix mix = typicalMix();
    const FuPoolConfig p2 = requiredPools(2.0, mix);
    const FuPoolConfig p8 = requiredPools(8.0, mix);
    EXPECT_LE(p2.memPort.count, p8.memPort.count);
    EXPECT_LE(p2.intAlu.count, p8.intAlu.count);
    EXPECT_GE(p8.intAlu.count, 4u);
}

TEST(DescribePools, MentionsEveryPool)
{
    const std::string text =
        describePools(FuPoolConfig::typical4Wide());
    EXPECT_NE(text.find("alu=4"), std::string::npos);
    EXPECT_NE(text.find("div=1u"), std::string::npos);
    EXPECT_NE(text.find("mem=2"), std::string::npos);
    const std::string unbounded = describePools(FuPoolConfig{});
    EXPECT_NE(unbounded.find("inf"), std::string::npos);
}

TEST(FuModel, LimitedPoolsLowerModelIpc)
{
    const IWCharacteristic iw(1.5, 0.6, 1.0, 4);
    MissProfile profile;
    profile.instructions = 100000;
    profile.mix = typicalMix();
    profile.avgLatency = 1.0;

    MachineConfig machine;
    ModelOptions starved_opts;
    starved_opts.fuPools.memPort = {1, true};
    const CpiBreakdown base =
        FirstOrderModel(machine).evaluate(iw, profile);
    const CpiBreakdown starved =
        FirstOrderModel(machine, starved_opts).evaluate(iw, profile);
    EXPECT_GT(starved.ideal, base.ideal);
    // Saturation at 1/0.35 = 2.857 -> ideal CPI 0.35.
    EXPECT_NEAR(starved.ideal, 0.35, 1e-6);
}

TEST(IWCharacteristic, SaturationCapApplies)
{
    IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    EXPECT_NEAR(iw.issueRate(64.0), 4.0, 1e-9);
    iw.setSaturationCap(2.5);
    EXPECT_NEAR(iw.issueRate(64.0), 2.5, 1e-9);
    // Below the cap the curve is unchanged.
    EXPECT_NEAR(iw.issueRate(4.0), 2.0, 1e-9);
}

} // namespace
} // namespace fosm
