/** @file Tests for the second-order overlap-compensation option. */

#include <gtest/gtest.h>

#include "model/first_order_model.hh"

namespace fosm {
namespace {

MachineConfig
baseline()
{
    MachineConfig m;
    return m;
}

IWCharacteristic
squareLaw()
{
    return IWCharacteristic(1.0, 0.5, 1.0, 4);
}

MissProfile
profileWithMisses(std::uint64_t long_misses)
{
    MissProfile p;
    p.instructions = 100000;
    p.branches = 20000;
    p.mispredictions = 1000;
    p.icacheL1Misses = 400;
    p.loads = 25000;
    p.longLoadMisses = long_misses;
    for (std::uint64_t i = 0; i + 1 < long_misses; ++i)
        p.ldmGaps.push_back(5000); // isolated
    p.avgLatency = 1.0;
    return p;
}

TEST(OverlapCompensation, NoLongMissesNoDiscount)
{
    ModelOptions on;
    on.compensateOverlaps = true;
    const MissProfile p = profileWithMisses(0);
    const CpiBreakdown with =
        FirstOrderModel(baseline(), on).evaluate(squareLaw(), p);
    const CpiBreakdown without =
        FirstOrderModel(baseline()).evaluate(squareLaw(), p);
    EXPECT_NEAR(with.brmisp, without.brmisp, 1e-12);
    EXPECT_NEAR(with.total(), without.total(), 1e-12);
}

TEST(OverlapCompensation, DiscountMatchesExposure)
{
    // 100 isolated long misses in 100k instructions: exposure is
    // 100/100k * 128 = 0.128 of instructions.
    ModelOptions on;
    on.compensateOverlaps = true;
    const MissProfile p = profileWithMisses(100);
    const CpiBreakdown with =
        FirstOrderModel(baseline(), on).evaluate(squareLaw(), p);
    const CpiBreakdown without =
        FirstOrderModel(baseline()).evaluate(squareLaw(), p);
    EXPECT_NEAR(with.brmisp, without.brmisp * (1.0 - 0.128), 1e-9);
    EXPECT_NEAR(with.icacheL1, without.icacheL1 * (1.0 - 0.128),
                1e-9);
    // The D-miss term itself is untouched.
    EXPECT_NEAR(with.dcacheLong, without.dcacheLong, 1e-12);
    EXPECT_NEAR(with.ideal, without.ideal, 1e-12);
}

TEST(OverlapCompensation, DiscountClamped)
{
    // Miss on every fourth instruction: raw exposure would exceed 1;
    // the discount clamps at 0.9.
    MissProfile p = profileWithMisses(0);
    p.longLoadMisses = 25000;
    p.ldmGaps.assign(24999, 4000); // isolated groups
    ModelOptions on;
    on.compensateOverlaps = true;
    const CpiBreakdown with =
        FirstOrderModel(baseline(), on).evaluate(squareLaw(), p);
    const CpiBreakdown without =
        FirstOrderModel(baseline()).evaluate(squareLaw(), p);
    EXPECT_NEAR(with.brmisp, without.brmisp * 0.1, 1e-9);
}

TEST(OverlapCompensation, GroupedMissesExposeLess)
{
    // The same miss count packed into tight groups covers fewer
    // instruction windows than isolated misses do.
    MissProfile isolated = profileWithMisses(200);
    MissProfile grouped = profileWithMisses(200);
    grouped.ldmGaps.assign(199, 10); // one giant run -> few groups
    ModelOptions on;
    on.compensateOverlaps = true;
    const FirstOrderModel model(baseline(), on);
    const CpiBreakdown iso = model.evaluate(squareLaw(), isolated);
    const CpiBreakdown grp = model.evaluate(squareLaw(), grouped);
    EXPECT_GT(grp.brmisp, iso.brmisp); // less discounted
}

} // namespace
} // namespace fosm
