/** @file Tests for the equation (2)-(8) penalty models. */

#include <gtest/gtest.h>

#include "model/penalties.hh"

namespace fosm {
namespace {

PenaltyModel
baselineModel()
{
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    MachineConfig m;
    m.width = 4;
    m.frontEndDepth = 5;
    m.windowSize = 48;
    m.robSize = 128;
    m.deltaI = 8;
    m.deltaD = 200;
    return PenaltyModel(TransientAnalyzer(iw, m));
}

TEST(Penalties, Equation2IsolatedBranch)
{
    const PenaltyModel p = baselineModel();
    EXPECT_NEAR(p.isolatedBranchPenalty(),
                p.winDrain() + 5.0 + p.rampUp(), 1e-12);
    // Paper: ~9.7 cycles, roughly twice the front-end depth.
    EXPECT_GT(p.isolatedBranchPenalty(), 5.0);
    EXPECT_NEAR(p.isolatedBranchPenalty(), 9.7, 0.7);
}

TEST(Penalties, Equation3BurstBranch)
{
    const PenaltyModel p = baselineModel();
    // n = 1 reduces to the isolated case.
    EXPECT_NEAR(p.burstBranchPenalty(1.0),
                p.isolatedBranchPenalty(), 1e-12);
    // n -> infinity approaches DeltaP.
    EXPECT_NEAR(p.burstBranchPenalty(1e9), 5.0, 1e-3);
    // Monotone decreasing in n.
    EXPECT_GT(p.burstBranchPenalty(2.0), p.burstBranchPenalty(4.0));
}

TEST(Penalties, PaperAverageIsMidpoint)
{
    // Section 5: "the average of 5 and 10 cycles (i.e. 7.5 cycles)".
    const PenaltyModel p = baselineModel();
    const double expected =
        0.5 * (p.isolatedBranchPenalty() + 5.0);
    EXPECT_NEAR(p.branchPenalty(BranchPenaltyMode::PaperAverage),
                expected, 1e-12);
    EXPECT_NEAR(expected, 7.35, 0.4); // ~7.5 in the paper
}

TEST(Penalties, BranchModesOrdering)
{
    const PenaltyModel p = baselineModel();
    EXPECT_GT(p.branchPenalty(BranchPenaltyMode::Isolated),
              p.branchPenalty(BranchPenaltyMode::PaperAverage));
    EXPECT_GT(p.branchPenalty(BranchPenaltyMode::PaperAverage),
              p.branchPenalty(BranchPenaltyMode::BurstAware, 10.0));
}

TEST(Penalties, Equation4IsolatedIcache)
{
    const PenaltyModel p = baselineModel();
    EXPECT_NEAR(p.isolatedIcachePenalty(8.0),
                8.0 + p.rampUp() - p.winDrain(), 1e-12);
    // Drain and ramp-up roughly cancel: penalty ~ DeltaI.
    EXPECT_NEAR(p.isolatedIcachePenalty(8.0), 8.0, 1.5);
}

TEST(Penalties, Equation5BurstIcache)
{
    const PenaltyModel p = baselineModel();
    EXPECT_NEAR(p.burstIcachePenalty(8.0, 1.0),
                p.isolatedIcachePenalty(8.0), 1e-12);
    // Bursts only shrink the (already small) correction term.
    EXPECT_NEAR(p.burstIcachePenalty(8.0, 100.0), 8.0, 0.05);
}

TEST(Penalties, IcacheModeMissDelayIsExactlyDelay)
{
    const PenaltyModel p = baselineModel();
    EXPECT_EQ(p.icachePenalty(IcachePenaltyMode::MissDelay, 8.0), 8.0);
    EXPECT_EQ(p.icachePenalty(IcachePenaltyMode::MissDelay, 200.0),
              200.0);
}

TEST(Penalties, IcachePenaltyIndependentOfFrontEndDepth)
{
    // Section 4.2's first observation.
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    MachineConfig shallow, deep;
    shallow.frontEndDepth = 5;
    deep.frontEndDepth = 9;
    const PenaltyModel p5(TransientAnalyzer(iw, shallow));
    const PenaltyModel p9(TransientAnalyzer(iw, deep));
    EXPECT_NEAR(p5.isolatedIcachePenalty(8.0),
                p9.isolatedIcachePenalty(8.0), 1e-9);
}

TEST(Penalties, BranchPenaltyGrowsWithFrontEndDepth)
{
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    MachineConfig shallow, deep;
    shallow.frontEndDepth = 5;
    deep.frontEndDepth = 9;
    const PenaltyModel p5(TransientAnalyzer(iw, shallow));
    const PenaltyModel p9(TransientAnalyzer(iw, deep));
    EXPECT_NEAR(p9.isolatedBranchPenalty() -
                    p5.isolatedBranchPenalty(),
                4.0, 1e-9);
}

TEST(Penalties, Equation6IsolatedDcache)
{
    const PenaltyModel p = baselineModel();
    EXPECT_NEAR(p.isolatedDcachePenalty(0.0),
                200.0 - p.winDrain() + p.rampUp(), 1e-12);
    // rob_fill subtracts.
    EXPECT_NEAR(p.isolatedDcachePenalty(10.0),
                p.isolatedDcachePenalty(0.0) - 10.0, 1e-12);
    // First-order conclusion: penalty ~ DeltaD.
    EXPECT_NEAR(p.isolatedDcachePenalty(0.0), 200.0, 2.0);
    EXPECT_EQ(p.firstOrderDcachePenalty(), 200.0);
}

TEST(Penalties, Equation7PairedMissesHalfPenalty)
{
    // Equation (7): two overlapping misses cost half each,
    // independent of their distance y. With f_LDM(2) = 1 the factor
    // is 1/2.
    const PenaltyModel p = baselineModel();
    EXPECT_NEAR(p.dcachePenalty(0.5), 100.0, 1e-9);
}

TEST(Penalties, Equation8OverlapFactorScales)
{
    const PenaltyModel p = baselineModel();
    EXPECT_NEAR(p.dcachePenalty(1.0), 200.0, 1e-9);
    EXPECT_NEAR(p.dcachePenalty(0.25), 50.0, 1e-9);
    // Exact (non-first-order) variant uses equation (6).
    EXPECT_NEAR(p.dcachePenalty(1.0, false),
                p.isolatedDcachePenalty(), 1e-9);
}

TEST(PenaltiesDeath, RejectsBadInputs)
{
    const PenaltyModel p = baselineModel();
    EXPECT_DEATH(p.burstBranchPenalty(0.5), "burst");
    EXPECT_DEATH(p.dcachePenalty(0.0), "overlap factor");
    EXPECT_DEATH(p.dcachePenalty(1.5), "overlap factor");
}

} // namespace
} // namespace fosm
