/** @file Unit tests for the functional trace statistics. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "trace/trace_stats.hh"

namespace fosm {
namespace {

TEST(TraceStats, CountsClasses)
{
    test::TraceBuilder b;
    b.alu(1).alu(2).load(3, 0x100).store(0x200).branch(false);
    const TraceStats s = collectTraceStats(b.take());

    EXPECT_EQ(s.instructions, 5u);
    EXPECT_NEAR(s.classFraction(InstClass::IntAlu), 0.4, 1e-12);
    EXPECT_NEAR(s.loadFraction(), 0.2, 1e-12);
    EXPECT_NEAR(s.branchFraction(), 0.2, 1e-12);
}

TEST(TraceStats, DependenceDistances)
{
    test::TraceBuilder b;
    b.alu(1);          // 0: writes r1
    b.alu(2, 1);       // 1: reads r1, distance 1
    b.alu(3);          // 2
    b.alu(4, 1);       // 3: reads r1, distance 3
    const TraceStats s = collectTraceStats(b.take());

    EXPECT_EQ(s.depDistance.countAt(1), 1u);
    EXPECT_EQ(s.depDistance.countAt(3), 1u);
    EXPECT_EQ(s.depDistance.samples(), 2u);
}

TEST(TraceStats, LiveInSourcesNotCounted)
{
    test::TraceBuilder b;
    b.alu(1, 5); // reads r5 which nothing wrote: live-in
    const TraceStats s = collectTraceStats(b.take());
    EXPECT_EQ(s.depDistance.samples(), 0u);
}

TEST(TraceStats, AvgBaseLatencyUsesConfig)
{
    test::TraceBuilder b;
    b.alu(1).add(InstClass::IntMul, 2);
    LatencyConfig lat;
    lat.intAlu = 1;
    lat.intMul = 3;
    const TraceStats s = collectTraceStats(b.take(), lat);
    EXPECT_NEAR(s.avgBaseLatency, 2.0, 1e-12);
}

TEST(TraceStats, TakenFraction)
{
    test::TraceBuilder b;
    b.branch(true).branch(true).branch(false).alu(1);
    const TraceStats s = collectTraceStats(b.take());
    EXPECT_NEAR(s.takenFraction, 2.0 / 3.0, 1e-12);
}

TEST(TraceStats, StaticBranchSites)
{
    test::TraceBuilder b;
    b.branch(true).at(0x100);
    b.branch(false).at(0x200);
    b.branch(true).at(0x100); // repeat site
    const TraceStats s = collectTraceStats(b.take());
    EXPECT_EQ(s.staticBranches, 2u);
}

TEST(TraceStats, AvgSources)
{
    test::TraceBuilder b;
    b.alu(1);          // 0 sources
    b.alu(2, 1, 1);    // 2 sources
    const TraceStats s = collectTraceStats(b.take());
    EXPECT_NEAR(s.avgSources, 1.0, 1e-12);
}

TEST(TraceStats, EmptyTrace)
{
    const TraceStats s = collectTraceStats(Trace("empty"));
    EXPECT_EQ(s.instructions, 0u);
    EXPECT_EQ(s.avgBaseLatency, 0.0);
    EXPECT_EQ(s.takenFraction, 0.0);
}

} // namespace
} // namespace fosm
