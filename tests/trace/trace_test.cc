/** @file Unit tests for the trace container and binary round-trip. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "../test_util.hh"
#include "trace/latency.hh"
#include "trace/trace.hh"

namespace fosm {
namespace {

TEST(InstRecord, ClassPredicates)
{
    InstRecord inst;
    inst.cls = InstClass::Load;
    EXPECT_TRUE(inst.isLoad());
    EXPECT_TRUE(inst.isMem());
    EXPECT_FALSE(inst.isStore());
    EXPECT_FALSE(inst.isBranch());

    inst.cls = InstClass::Store;
    EXPECT_TRUE(inst.isStore());
    EXPECT_TRUE(inst.isMem());

    inst.cls = InstClass::Branch;
    EXPECT_TRUE(inst.isBranch());
    EXPECT_FALSE(inst.isMem());
}

TEST(InstRecord, CompactLayout)
{
    EXPECT_LE(sizeof(InstRecord), 32u);
}

TEST(InstClassName, AllClassesNamed)
{
    EXPECT_STREQ(instClassName(InstClass::IntAlu), "int_alu");
    EXPECT_STREQ(instClassName(InstClass::IntMul), "int_mul");
    EXPECT_STREQ(instClassName(InstClass::IntDiv), "int_div");
    EXPECT_STREQ(instClassName(InstClass::FpAlu), "fp_alu");
    EXPECT_STREQ(instClassName(InstClass::Load), "load");
    EXPECT_STREQ(instClassName(InstClass::Store), "store");
    EXPECT_STREQ(instClassName(InstClass::Branch), "branch");
}

TEST(LatencyConfig, DefaultLatencies)
{
    LatencyConfig lat;
    EXPECT_EQ(lat.latencyFor(InstClass::IntAlu), 1u);
    EXPECT_EQ(lat.latencyFor(InstClass::IntMul), 3u);
    EXPECT_EQ(lat.latencyFor(InstClass::IntDiv), 12u);
    EXPECT_EQ(lat.latencyFor(InstClass::FpAlu), 4u);
    EXPECT_EQ(lat.latencyFor(InstClass::Load), 2u);
    EXPECT_EQ(lat.latencyFor(InstClass::Store), 1u);
    EXPECT_EQ(lat.latencyFor(InstClass::Branch), 1u);
}

TEST(Trace, AppendAndAccess)
{
    Trace t("demo");
    EXPECT_TRUE(t.empty());
    InstRecord inst;
    inst.pc = 0x100;
    t.append(inst);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].pc, 0x100u);
    EXPECT_EQ(t.name(), "demo");
}

TEST(Trace, RangeIteration)
{
    const Trace t = test::independentStream(10);
    std::size_t count = 0;
    for (const InstRecord &inst : t) {
        EXPECT_EQ(inst.cls, InstClass::IntAlu);
        ++count;
    }
    EXPECT_EQ(count, 10u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    test::TraceBuilder b("roundtrip");
    b.alu(1).load(2, 0xdead0, 1).store(0xbeef0, 2).branch(true, 2);
    const Trace original = b.take();

    const std::string path = ::testing::TempDir() + "/fosm_trace.bin";
    saveTrace(original, path);
    const Trace loaded = loadTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.name(), "roundtrip");
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].effAddr, original[i].effAddr);
        EXPECT_EQ(loaded[i].cls, original[i].cls);
        EXPECT_EQ(loaded[i].dst, original[i].dst);
        EXPECT_EQ(loaded[i].src1, original[i].src1);
        EXPECT_EQ(loaded[i].src2, original[i].src2);
        EXPECT_EQ(loaded[i].branchTaken, original[i].branchTaken);
    }
}

TEST(Trace, LoadMissingFileFatal)
{
    EXPECT_EXIT(loadTrace("/nonexistent/path/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace fosm
