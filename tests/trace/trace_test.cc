/** @file Unit tests for the trace container and binary round-trip. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "../test_util.hh"
#include "trace/latency.hh"
#include "trace/trace.hh"

namespace fosm {
namespace {

TEST(InstRecord, ClassPredicates)
{
    InstRecord inst;
    inst.cls = InstClass::Load;
    EXPECT_TRUE(inst.isLoad());
    EXPECT_TRUE(inst.isMem());
    EXPECT_FALSE(inst.isStore());
    EXPECT_FALSE(inst.isBranch());

    inst.cls = InstClass::Store;
    EXPECT_TRUE(inst.isStore());
    EXPECT_TRUE(inst.isMem());

    inst.cls = InstClass::Branch;
    EXPECT_TRUE(inst.isBranch());
    EXPECT_FALSE(inst.isMem());
}

TEST(InstRecord, CompactLayout)
{
    EXPECT_LE(sizeof(InstRecord), 32u);
}

TEST(InstClassName, AllClassesNamed)
{
    EXPECT_STREQ(instClassName(InstClass::IntAlu), "int_alu");
    EXPECT_STREQ(instClassName(InstClass::IntMul), "int_mul");
    EXPECT_STREQ(instClassName(InstClass::IntDiv), "int_div");
    EXPECT_STREQ(instClassName(InstClass::FpAlu), "fp_alu");
    EXPECT_STREQ(instClassName(InstClass::Load), "load");
    EXPECT_STREQ(instClassName(InstClass::Store), "store");
    EXPECT_STREQ(instClassName(InstClass::Branch), "branch");
}

TEST(LatencyConfig, DefaultLatencies)
{
    LatencyConfig lat;
    EXPECT_EQ(lat.latencyFor(InstClass::IntAlu), 1u);
    EXPECT_EQ(lat.latencyFor(InstClass::IntMul), 3u);
    EXPECT_EQ(lat.latencyFor(InstClass::IntDiv), 12u);
    EXPECT_EQ(lat.latencyFor(InstClass::FpAlu), 4u);
    EXPECT_EQ(lat.latencyFor(InstClass::Load), 2u);
    EXPECT_EQ(lat.latencyFor(InstClass::Store), 1u);
    EXPECT_EQ(lat.latencyFor(InstClass::Branch), 1u);
}

TEST(Trace, AppendAndAccess)
{
    Trace t("demo");
    EXPECT_TRUE(t.empty());
    InstRecord inst;
    inst.pc = 0x100;
    t.append(inst);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].pc, 0x100u);
    EXPECT_EQ(t.name(), "demo");
}

TEST(Trace, RangeIteration)
{
    const Trace t = test::independentStream(10);
    std::size_t count = 0;
    for (const InstRecord &inst : t) {
        EXPECT_EQ(inst.cls, InstClass::IntAlu);
        ++count;
    }
    EXPECT_EQ(count, 10u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    test::TraceBuilder b("roundtrip");
    b.alu(1).load(2, 0xdead0, 1).store(0xbeef0, 2).branch(true, 2);
    const Trace original = b.take();

    const std::string path = ::testing::TempDir() + "/fosm_trace.bin";
    saveTrace(original, path);
    const Trace loaded = loadTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.name(), "roundtrip");
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].effAddr, original[i].effAddr);
        EXPECT_EQ(loaded[i].cls, original[i].cls);
        EXPECT_EQ(loaded[i].dst, original[i].dst);
        EXPECT_EQ(loaded[i].src1, original[i].src1);
        EXPECT_EQ(loaded[i].src2, original[i].src2);
        EXPECT_EQ(loaded[i].branchTaken, original[i].branchTaken);
    }
}

TEST(Trace, LoadMissingFileFatal)
{
    EXPECT_EXIT(loadTrace("/nonexistent/path/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ------------------------------------------------------------------
// Robustness: loadTrace must fail loudly (never crash or allocate
// wildly) on truncated, oversized, and corrupt files.

namespace {

/** A small valid trace file on disk, as raw bytes to corrupt. */
std::string
writeValidTrace(const std::string &path, std::size_t insts = 8)
{
    test::TraceBuilder b("victim");
    for (std::size_t i = 0; i < insts; ++i)
        b.alu(static_cast<int>(i % 4));
    saveTrace(b.take(), path);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[256];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    return bytes;
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

// On-disk layout constants (mirror trace.cc's FileHeader and the
// InstRecord field order).
constexpr std::size_t headerBytes = 24; // magic[8] + count + nameLen
constexpr std::size_t countOffset = 8;
constexpr std::size_t nameLenOffset = 16;

} // namespace

TEST(TraceRobustness, TruncatedHeaderFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_trunc_hdr.trc";
    writeBytes(path, writeValidTrace(path).substr(0, 10));
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "truncated trace header");
    std::remove(path.c_str());
}

TEST(TraceRobustness, TruncatedBodyFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_trunc_body.trc";
    const std::string bytes = writeValidTrace(path);
    // Cut the file mid-record.
    writeBytes(path, bytes.substr(0, bytes.size() - 5));
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "truncated trace file");
    std::remove(path.c_str());
}

TEST(TraceRobustness, TrailingGarbageFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_oversize.trc";
    std::string bytes = writeValidTrace(path);
    bytes += "extra bytes after the last record";
    writeBytes(path, bytes);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "oversized trace file");
    std::remove(path.c_str());
}

TEST(TraceRobustness, BadMagicFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_badmagic.trc";
    std::string bytes = writeValidTrace(path);
    bytes[0] ^= 0x01; // bit flip inside the magic
    writeBytes(path, bytes);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "bad trace magic");
    std::remove(path.c_str());
}

TEST(TraceRobustness, CorruptCountFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_badcount.trc";
    std::string bytes = writeValidTrace(path);
    // A flipped high bit in the count promises ~10^18 records; the
    // size cross-check must reject it before any allocation.
    bytes[countOffset + 7] ^= 0x10;
    writeBytes(path, bytes);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "corrupt trace header|truncated trace file");
    std::remove(path.c_str());
}

TEST(TraceRobustness, CorruptNameLenFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_badname.trc";
    std::string bytes = writeValidTrace(path);
    bytes[nameLenOffset + 2] = static_cast<char>(0xff);
    writeBytes(path, bytes);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "corrupt trace header|truncated trace file");
    std::remove(path.c_str());
}

TEST(TraceRobustness, BitFlippedClassFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_badclass.trc";
    std::string bytes = writeValidTrace(path);
    // cls is the 17th byte of the 3rd record ("victim" name = 6
    // bytes): pc(8) + effAddr(8) precede it.
    const std::size_t clsOffset =
        headerBytes + 6 + 2 * sizeof(InstRecord) + 16;
    ASSERT_LT(clsOffset, bytes.size());
    bytes[clsOffset] = static_cast<char>(0xe0); // >= numInstClasses
    writeBytes(path, bytes);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "bad instruction class");
    std::remove(path.c_str());
}

TEST(TraceRobustness, BitFlippedRegisterFatal)
{
    const std::string path =
        ::testing::TempDir() + "/fosm_badreg.trc";
    std::string bytes = writeValidTrace(path);
    // dst (int16) starts at byte 18 of the first record; 0x7fff is
    // far outside [0, numArchRegs) and not invalidReg.
    const std::size_t dstOffset = headerBytes + 6 + 18;
    ASSERT_LT(dstOffset + 1, bytes.size());
    bytes[dstOffset] = static_cast<char>(0xff);
    bytes[dstOffset + 1] = 0x7f;
    writeBytes(path, bytes);
    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "register index out of range");
    std::remove(path.c_str());
}

} // namespace
} // namespace fosm
