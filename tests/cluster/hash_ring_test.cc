/**
 * @file
 * Hash-ring properties the gateway depends on: uniform key
 * distribution across replicas (chi-squared bound), minimal
 * remapping on membership change (< 2/N of keys move on a join,
 * only the departed node's keys move on a leave), and stable,
 * distinct preference orders for hedging/retry fan-out.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/hash_ring.hh"
#include "common/hash.hh"

namespace fosm::cluster {
namespace {

constexpr std::size_t kKeys = 30000;

std::uint64_t
keyHash(std::size_t i)
{
    return fnv1a64("design-point-" + std::to_string(i));
}

HashRing
ringOf(std::initializer_list<const char *> nodes,
       std::size_t vnodes = 128)
{
    HashRing ring(vnodes);
    for (const char *n : nodes)
        ring.add(n);
    return ring;
}

TEST(HashRing, UniformDistributionChiSquared)
{
    const HashRing ring =
        ringOf({"a:1", "b:2", "c:3"});
    std::vector<std::size_t> counts(ring.nodes(), 0);
    for (std::size_t i = 0; i < kKeys; ++i)
        ++counts[ring.primary(keyHash(i))];

    // Two separable properties. First, key hashes must fall on the
    // ring uniformly: chi-squared of the observed counts against the
    // ring's own arc lengths. df = 2; the 99.9th percentile of
    // chi2(2) is 13.8 — deterministic inputs, so this is a
    // regression pin with a modest margin.
    const std::vector<double> share = ring.keyspaceShare();
    double chi2 = 0.0;
    for (std::size_t n = 0; n < counts.size(); ++n) {
        const double expected = share[n] * kKeys;
        const double d = static_cast<double>(counts[n]) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 20.0) << "counts: " << counts[0] << "/"
                          << counts[1] << "/" << counts[2];
    // Second, 128 vnodes must smooth the arcs themselves: no replica
    // above 40% or below 25% of the keyspace.
    for (const std::size_t c : counts) {
        EXPECT_GT(c, kKeys / 4);
        EXPECT_LT(c, kKeys * 2 / 5);
    }
}

TEST(HashRing, KeyspaceShareMatchesObservedSplit)
{
    const HashRing ring = ringOf({"a:1", "b:2", "c:3", "d:4"});
    const std::vector<double> share = ring.keyspaceShare();
    ASSERT_EQ(share.size(), 4u);
    double sum = 0.0;
    for (const double s : share) {
        EXPECT_GT(s, 0.15);
        EXPECT_LT(s, 0.40);
        sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // The analytic shares must agree with an empirical key count.
    std::vector<std::size_t> counts(ring.nodes(), 0);
    for (std::size_t i = 0; i < kKeys; ++i)
        ++counts[ring.primary(keyHash(i))];
    for (std::size_t n = 0; n < counts.size(); ++n) {
        const double observed =
            static_cast<double>(counts[n]) / kKeys;
        EXPECT_NEAR(observed, share[n], 0.02);
    }
}

TEST(HashRing, JoinMovesLessThanTwoOverNKeys)
{
    HashRing ring = ringOf({"a:1", "b:2", "c:3", "d:4"});
    std::vector<std::uint32_t> before(kKeys);
    for (std::size_t i = 0; i < kKeys; ++i)
        before[i] = ring.primary(keyHash(i));

    ring.add("e:5"); // N goes 4 -> 5
    std::size_t moved = 0;
    for (std::size_t i = 0; i < kKeys; ++i) {
        const std::uint32_t now = ring.primary(keyHash(i));
        if (ring.name(now) != ring.name(before[i]))
            ++moved;
        // Every moved key must land on the new node — consistent
        // hashing never shuffles keys between surviving nodes.
        if (ring.name(now) != ring.name(before[i]))
            EXPECT_EQ(ring.name(now), "e:5");
    }
    // Ideal movement is 1/5 of keys; require < 2/5 (the issue's
    // 2/N bound) and more than half the ideal so the new node
    // actually takes load.
    EXPECT_LT(moved, kKeys * 2 / 5);
    EXPECT_GT(moved, kKeys / 10);
}

TEST(HashRing, LeaveMovesOnlyTheDepartedNodesKeys)
{
    HashRing ring = ringOf({"a:1", "b:2", "c:3", "d:4"});
    std::map<std::size_t, std::string> before;
    for (std::size_t i = 0; i < kKeys; ++i)
        before[i] = ring.name(ring.primary(keyHash(i)));

    ring.remove("c:3");
    for (std::size_t i = 0; i < kKeys; ++i) {
        const std::string now = ring.name(ring.primary(keyHash(i)));
        if (before[i] != "c:3") {
            EXPECT_EQ(now, before[i])
                << "key " << i << " moved without its node leaving";
        } else {
            EXPECT_NE(now, "c:3");
        }
    }
}

TEST(HashRing, RouteReturnsDistinctPreferenceOrder)
{
    const HashRing ring = ringOf({"a:1", "b:2", "c:3"});
    for (std::size_t i = 0; i < 200; ++i) {
        const auto order = ring.route(keyHash(i), 3);
        ASSERT_EQ(order.size(), 3u);
        const std::set<std::uint32_t> distinct(order.begin(),
                                               order.end());
        EXPECT_EQ(distinct.size(), 3u);
        EXPECT_EQ(order[0], ring.primary(keyHash(i)));
        // Deterministic: the same key always gets the same order.
        EXPECT_EQ(order, ring.route(keyHash(i), 3));
    }
    EXPECT_EQ(ring.route(keyHash(0), 2).size(), 2u);
    EXPECT_EQ(ring.route(keyHash(0), 99).size(), 3u);
}

TEST(HashRing, EmptyAndSingleNodeRings)
{
    HashRing ring(64);
    EXPECT_TRUE(ring.route(123, 2).empty());
    ring.add("only:1");
    EXPECT_EQ(ring.route(123, 2),
              std::vector<std::uint32_t>{0});
    EXPECT_EQ(ring.primary(987654321), 0u);
    const auto share = ring.keyspaceShare();
    ASSERT_EQ(share.size(), 1u);
    EXPECT_NEAR(share[0], 1.0, 1e-9);
}

} // namespace
} // namespace fosm::cluster
