/**
 * @file
 * Gateway behavior against stub in-process backends: digest routing,
 * retry on dead/5xx backends, bounded hedging, health ejection and
 * reinstatement, and store-stats aggregation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/gateway.hh"
#include "server/client.hh"
#include "server/http.hh"
#include "server/json.hh"

namespace fosm::cluster {
namespace {

using server::ClientResponse;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerConfig;

/** A stub fosm-serve replica: any handler, ephemeral port. */
std::unique_ptr<HttpServer>
makeBackend(HttpServer::Handler handler, std::uint16_t port = 0)
{
    HttpServerConfig config;
    config.port = port;
    config.workers = 2;
    auto server =
        std::make_unique<HttpServer>(config, std::move(handler));
    server->start();
    return server;
}

BackendAddress
addressOf(const HttpServer &server)
{
    BackendAddress addr;
    addr.host = "127.0.0.1";
    addr.port = server.port();
    addr.label = "127.0.0.1:" + std::to_string(server.port());
    return addr;
}

/** Echo the backend's identity so tests can see who answered. */
HttpServer::Handler
echoHandler(const std::string &who)
{
    return [who](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{\"status\":\"ok\"}");
        return HttpResponse::json(200, "{\"who\":\"" + who + "\"}");
    };
}

GatewayConfig
testGatewayConfig(std::vector<BackendAddress> backends)
{
    GatewayConfig config;
    config.backends = std::move(backends);
    config.upstream.healthIntervalMs = 50;
    config.upstream.ejectAfter = 1;
    config.upstream.connectTimeoutMs = 200;
    config.upstream.requestTimeoutMs = 2000;
    config.retries = 2;
    config.retryBaseMs = 1;
    // Effectively no hedging unless a test opts in.
    config.hedgeMaxMs = 1000;
    return config;
}

/** Ask the gateway handler directly (no front HttpServer needed). */
HttpResponse
ask(Gateway &gateway, const std::string &method,
    const std::string &path, const std::string &body)
{
    HttpRequest req;
    req.method = method;
    req.target = path;
    req.body = body;
    return gateway.handler()(req);
}

std::string
whoAnswered(const HttpResponse &response)
{
    json::Value v;
    std::string error;
    if (!json::parse(response.body, v, &error))
        return "";
    const json::Value *who = v.find("who");
    return who ? who->asString() : "";
}

std::string
cpiBody(int i)
{
    return "{\"workload\":\"w" + std::to_string(i) + "\"}";
}

TEST(Gateway, RoutesByDigestConsistentlyAndUsesAllBackends)
{
    auto a = makeBackend(echoHandler("a"));
    auto b = makeBackend(echoHandler("b"));
    auto c = makeBackend(echoHandler("c"));

    Gateway gateway(testGatewayConfig({addressOf(*a), addressOf(*b),
                                       addressOf(*c)}),
                    nullptr);
    gateway.start();

    std::set<std::string> owners;
    for (int i = 0; i < 30; ++i) {
        const std::string body = cpiBody(i);
        // Same body, asked three times, must land on one backend —
        // that is what makes the shard caches compose.
        std::string first;
        for (int rep = 0; rep < 3; ++rep) {
            HttpResponse r = ask(gateway, "POST", "/v1/cpi", body);
            ASSERT_EQ(r.status, 200) << body;
            const std::string who = whoAnswered(r);
            if (rep == 0)
                first = who;
            EXPECT_EQ(who, first) << body;
        }
        owners.insert(first);
    }
    // 30 distinct bodies across 3 backends: all shards participate.
    EXPECT_EQ(owners.size(), 3u);

    // Whitespace / member order don't change the shard: the digest
    // is over the canonical body.
    const std::string compact = "{\"a\":1,\"b\":2}";
    const std::string spaced = "{ \"b\" : 2 , \"a\" : 1 }";
    EXPECT_EQ(gateway.shardDigest("/v1/cpi", compact),
              gateway.shardDigest("/v1/cpi", spaced));

    gateway.stop();
    a->requestStop();
    b->requestStop();
    c->requestStop();
    a->join();
    b->join();
    c->join();
}

TEST(Gateway, Passes4xxThroughWithoutRetry)
{
    std::atomic<int> hits{0};
    auto a = makeBackend([&](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{}");
        hits.fetch_add(1);
        return HttpResponse::json(400, "{\"error\":\"bad\"}");
    });

    Gateway gateway(testGatewayConfig({addressOf(*a)}), nullptr);
    gateway.start();

    HttpResponse r = ask(gateway, "POST", "/v1/cpi", "{\"x\":1}");
    EXPECT_EQ(r.status, 400);
    EXPECT_EQ(r.body, "{\"error\":\"bad\"}");
    EXPECT_EQ(hits.load(), 1); // 4xx is final: no retry

    gateway.stop();
    a->requestStop();
    a->join();
}

TEST(Gateway, RetriesPastDeadBackend)
{
    auto a = makeBackend(echoHandler("a"));
    // A second configured backend that refuses connections.
    BackendAddress dead;
    dead.host = "127.0.0.1";
    dead.port = 1; // nothing listens there
    dead.label = "127.0.0.1:1";

    server::MetricsRegistry metrics;
    GatewayConfig config =
        testGatewayConfig({addressOf(*a), dead});
    Gateway gateway(config, &metrics);
    gateway.start(); // initial probe round ejects the dead backend

    // Every body must succeed, including those whose primary shard
    // is the dead backend (they spill to the live one).
    for (int i = 0; i < 20; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        EXPECT_EQ(whoAnswered(r), "a");
    }

    gateway.stop();
    a->requestStop();
    a->join();
}

TEST(Gateway, RetriesOn5xxAndAnswersFromNextReplica)
{
    std::atomic<int> badHits{0};
    auto bad = makeBackend([&](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{}");
        badHits.fetch_add(1);
        return HttpResponse::json(500, "{\"error\":\"boom\"}");
    });
    auto good = makeBackend(echoHandler("good"));

    server::MetricsRegistry metrics;
    Gateway gateway(
        testGatewayConfig({addressOf(*bad), addressOf(*good)}),
        &metrics);
    gateway.start();

    for (int i = 0; i < 20; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        EXPECT_EQ(whoAnswered(r), "good");
    }
    // Some bodies were homed on the bad backend and needed a retry.
    EXPECT_GT(badHits.load(), 0);
    EXPECT_GT(metrics.counter("fosm_gateway_retries_total", "")
                  .value(),
              0u);

    gateway.stop();
    bad->requestStop();
    good->requestStop();
    bad->join();
    good->join();
}

TEST(Gateway, HedgesOncePastBudgetAndFirstResponseWins)
{
    auto slow = makeBackend([](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{}");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(400));
        return HttpResponse::json(200, "{\"who\":\"slow\"}");
    });
    auto fast = makeBackend(echoHandler("fast"));

    server::MetricsRegistry metrics;
    GatewayConfig config =
        testGatewayConfig({addressOf(*slow), addressOf(*fast)});
    config.hedgeMaxMs = 25; // hedge after 25ms (no samples yet)
    config.retries = 0;     // isolate hedging from retries
    Gateway gateway(config, &metrics);
    gateway.start();

    // Find a body whose primary shard is the slow backend, so the
    // hedge (to the fast one) decides the outcome.
    const std::string slowLabel = addressOf(*slow).label;
    std::string body;
    for (int i = 0; i < 1000; ++i) {
        const std::string candidate = cpiBody(i);
        const auto pref = gateway.ring().route(
            gateway.shardDigest("/v1/cpi", candidate), 2);
        if (gateway.ring().name(pref[0]) == slowLabel) {
            body = candidate;
            break;
        }
    }
    ASSERT_FALSE(body.empty());

    const auto start = std::chrono::steady_clock::now();
    HttpResponse r = ask(gateway, "POST", "/v1/cpi", body);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(whoAnswered(r), "fast"); // the hedge won
    EXPECT_LT(elapsed, 350); // well under the slow backend's 400ms
    // Exactly one hedge was fired for the one request.
    EXPECT_EQ(
        metrics.counter("fosm_gateway_hedges_total", "").value(),
        1u);
    EXPECT_EQ(
        metrics.counter("fosm_gateway_hedge_wins_total", "").value(),
        1u);

    gateway.stop();
    slow->requestStop();
    fast->requestStop();
    slow->join();
    fast->join();
}

TEST(Gateway, FastRequestsDoNotHedge)
{
    auto a = makeBackend(echoHandler("a"));
    auto b = makeBackend(echoHandler("b"));

    server::MetricsRegistry metrics;
    GatewayConfig config =
        testGatewayConfig({addressOf(*a), addressOf(*b)});
    config.hedgeMaxMs = 500; // far above stub latency
    Gateway gateway(config, &metrics);
    gateway.start();

    for (int i = 0; i < 20; ++i)
        ASSERT_EQ(
            ask(gateway, "POST", "/v1/cpi", cpiBody(i)).status,
            200);
    EXPECT_EQ(
        metrics.counter("fosm_gateway_hedges_total", "").value(),
        0u);

    gateway.stop();
    a->requestStop();
    b->requestStop();
    a->join();
    b->join();
}

TEST(Gateway, EjectsDeadBackendAndReinstatesOnRecovery)
{
    auto a = makeBackend(echoHandler("a"));
    auto b = makeBackend(echoHandler("b"));
    const std::uint16_t bPort = b->port();

    Gateway gateway(
        testGatewayConfig({addressOf(*a), addressOf(*b)}), nullptr);
    gateway.start();
    ASSERT_EQ(gateway.pool().healthyCount(), 2u);

    // Kill b; the prober must eject it.
    b->requestStop();
    b->join();
    b.reset();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    while (gateway.pool().healthyCount() != 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(gateway.pool().healthyCount(), 1u);

    // Zero client-visible errors while a replica is down.
    for (int i = 0; i < 20; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        EXPECT_EQ(whoAnswered(r), "a");
    }

    // Gateway's own health endpoint reflects the partial outage.
    HttpResponse health = ask(gateway, "GET", "/healthz", "");
    EXPECT_EQ(health.status, 200); // still serving: one healthy
    json::Value hv;
    std::string herr;
    ASSERT_TRUE(json::parse(health.body, hv, &herr)) << herr;
    EXPECT_EQ(hv.find("healthy")->asInt(), 1);
    EXPECT_EQ(hv.find("backends")->asInt(), 2);

    // Revive b on the same port; the prober must reinstate it.
    b = makeBackend(echoHandler("b"), bPort);
    const auto deadline2 = std::chrono::steady_clock::now() +
                           std::chrono::seconds(10);
    while (gateway.pool().healthyCount() != 2 &&
           std::chrono::steady_clock::now() < deadline2)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(gateway.pool().healthyCount(), 2u);

    gateway.stop();
    a->requestStop();
    b->requestStop();
    a->join();
    b->join();
}

TEST(Gateway, AggregatesStoreStatsAcrossBackends)
{
    auto statsHandler = [](double responses, double hits) {
        return [responses, hits](const HttpRequest &req) {
            if (req.path() == "/healthz")
                return HttpResponse::json(200, "{}");
            json::Value v = json::Value::object();
            v.set("responses", responses);
            json::Value nested = json::Value::object();
            nested.set("hits", hits);
            v.set("cache", std::move(nested));
            return HttpResponse::json(200, v.dump());
        };
    };
    auto a = makeBackend(statsHandler(10, 3));
    auto b = makeBackend(statsHandler(32, 4));

    Gateway gateway(
        testGatewayConfig({addressOf(*a), addressOf(*b)}), nullptr);
    gateway.start();

    HttpResponse r = ask(gateway, "GET", "/v1/store/stats", "");
    ASSERT_EQ(r.status, 200);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(r.body, v, &error)) << error;
    EXPECT_EQ(v.find("backends_reporting")->asInt(), 2);
    const json::Value *agg = v.find("aggregate");
    ASSERT_NE(agg, nullptr);
    EXPECT_DOUBLE_EQ(agg->find("responses")->asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(agg->find("cache")->find("hits")->asDouble(),
                     7.0);
    // Per-backend detail is preserved alongside the aggregate.
    EXPECT_EQ(v.find("per_backend")->size(), 2u);

    gateway.stop();
    a->requestStop();
    b->requestStop();
    a->join();
    b->join();
}

TEST(Gateway, ReplStatsDedupeCountsEachRecordAtItsOwner)
{
    // Replicated backends: both report 30 live records, but 20 of
    // A's and 10 of B's are owned — the rest are the other side's
    // replica copies. The summed aggregate must skip the repl block
    // entirely, and the cluster summary must count 30 owned records
    // (each entry once), not 60.
    auto replStatsHandler = [](double live, double owned,
                               double replica) {
        return [live, owned, replica](const HttpRequest &req) {
            if (req.path() == "/healthz")
                return HttpResponse::json(200, "{}");
            json::Value v = json::Value::object();
            v.set("liveRecords", live);
            json::Value repl = json::Value::object();
            repl.set("replication", 2.0); // must NOT be summed
            json::Value ownership = json::Value::object();
            ownership.set("owned", owned);
            ownership.set("replica", replica);
            ownership.set("foreign", 0.0);
            repl.set("ownership", std::move(ownership));
            v.set("repl", std::move(repl));
            return HttpResponse::json(200, v.dump());
        };
    };
    auto a = makeBackend(replStatsHandler(30, 20, 10));
    auto b = makeBackend(replStatsHandler(30, 10, 20));

    Gateway gateway(
        testGatewayConfig({addressOf(*a), addressOf(*b)}), nullptr);
    gateway.start();

    HttpResponse r = ask(gateway, "GET", "/v1/store/stats", "");
    ASSERT_EQ(r.status, 200);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(r.body, v, &error)) << error;

    const json::Value *cluster = v.find("cluster");
    ASSERT_NE(cluster, nullptr);
    EXPECT_DOUBLE_EQ(
        cluster->find("owned_records")->asDouble(), 30.0);
    EXPECT_DOUBLE_EQ(
        cluster->find("replica_records")->asDouble(), 30.0);
    EXPECT_DOUBLE_EQ(
        cluster->find("foreign_records")->asDouble(), 0.0);
    EXPECT_EQ(cluster->find("backends_with_repl")->asInt(), 2);

    // The raw sum still reports both physical copies...
    const json::Value *agg = v.find("aggregate");
    ASSERT_NE(agg, nullptr);
    EXPECT_DOUBLE_EQ(agg->find("liveRecords")->asDouble(), 60.0);
    // ...but never a nonsense sum of the repl subtree.
    EXPECT_EQ(agg->find("repl"), nullptr);
    // Per-backend detail keeps each node's full repl document.
    const json::Value *pb = v.find("per_backend");
    ASSERT_NE(pb, nullptr);
    EXPECT_NE(
        pb->find(addressOf(*a).label)->find("repl"), nullptr);

    gateway.stop();
    a->requestStop();
    b->requestStop();
    a->join();
    b->join();
}

TEST(Gateway, UnknownPathIs404AndWrongMethodIs405)
{
    auto a = makeBackend(echoHandler("a"));
    Gateway gateway(testGatewayConfig({addressOf(*a)}), nullptr);
    gateway.start();

    EXPECT_EQ(ask(gateway, "GET", "/nope", "").status, 404);
    EXPECT_EQ(ask(gateway, "GET", "/v1/cpi", "").status, 405);

    gateway.stop();
    a->requestStop();
    a->join();
}

TEST(Gateway, ParsesBackendLists)
{
    std::vector<BackendAddress> out;
    std::string error;
    ASSERT_TRUE(parseBackendList(
        "127.0.0.1:8080,localhost:9090", out, error));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].host, "127.0.0.1");
    EXPECT_EQ(out[0].port, 8080);
    EXPECT_EQ(out[0].label, "127.0.0.1:8080");
    EXPECT_EQ(out[1].host, "localhost");
    EXPECT_EQ(out[1].port, 9090);

    EXPECT_FALSE(parseBackendList("", out, error));
    EXPECT_FALSE(parseBackendList("127.0.0.1", out, error));
    EXPECT_FALSE(parseBackendList("127.0.0.1:notaport", out, error));
    EXPECT_FALSE(parseBackendList("127.0.0.1:99999", out, error));
}

} // namespace
} // namespace fosm::cluster
