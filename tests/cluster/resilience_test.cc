/**
 * @file
 * Resilience behavior: circuit-breaker state machine (synthetic
 * clock, no sockets), breaker-driven ejection of a backend that
 * accepts connections but fails live traffic, deadline propagation
 * to upstreams, Retry-After deferral, and live membership changes
 * through the admin endpoint.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/gateway.hh"
#include "server/http.hh"
#include "server/json.hh"
#include "server/metrics.hh"

namespace fosm::cluster {
namespace {

using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerConfig;

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

// -- Circuit breaker state machine (pure, synthetic time) ----------

UpstreamConfig
breakerConfig()
{
    UpstreamConfig config;
    config.breakerFailures = 3;
    config.breakerMinSamples = 4;
    config.breakerErrorRate = 0.5;
    config.breakerOpenBaseMs = 100;
    config.breakerOpenMaxMs = 400;
    return config;
}

TEST(CircuitBreaker, ClosedAdmitsAndSuccessKeepsItClosed)
{
    CircuitBreaker breaker(breakerConfig(), 1);
    const auto t0 = Clock::now();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(breaker.routable(t0));
        EXPECT_TRUE(breaker.allowRequest(t0));
        breaker.onSuccess();
    }
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, ConsecutiveFailuresTripAndTrialCloses)
{
    CircuitBreaker breaker(breakerConfig(), 1);
    const auto t0 = Clock::now();
    for (int i = 0; i < 3; ++i)
        breaker.onFailure(t0);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_FALSE(breaker.routable(t0));
    EXPECT_FALSE(breaker.allowRequest(t0));

    // Jitter keeps the reopen inside [0.75, 1.25] x openBaseMs, so
    // 130ms later the breaker must offer a half-open trial.
    const auto trialTime = t0 + milliseconds(130);
    EXPECT_TRUE(breaker.routable(trialTime));
    EXPECT_TRUE(breaker.allowRequest(trialTime));
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    // Exactly one trial: a second admission at the same instant is
    // refused while the trial is in flight.
    EXPECT_FALSE(breaker.allowRequest(trialTime));

    breaker.onSuccess();
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_TRUE(breaker.allowRequest(trialTime));
}

TEST(CircuitBreaker, FailedTrialReopensWithLongerBackoff)
{
    CircuitBreaker breaker(breakerConfig(), 1);
    const auto t0 = Clock::now();
    for (int i = 0; i < 3; ++i)
        breaker.onFailure(t0);
    const auto trial = t0 + milliseconds(130);
    ASSERT_TRUE(breaker.allowRequest(trial));
    breaker.onFailure(trial);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    // The second open interval doubles: at most 1.25 x 200ms.
    EXPECT_FALSE(breaker.allowRequest(trial + milliseconds(100)));
    EXPECT_TRUE(breaker.allowRequest(trial + milliseconds(260)));
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
}

TEST(CircuitBreaker, AbandonedTrialDoesNotWedgeHalfOpen)
{
    CircuitBreaker breaker(breakerConfig(), 1);
    const auto t0 = Clock::now();
    for (int i = 0; i < 3; ++i)
        breaker.onFailure(t0);
    const auto trial = t0 + milliseconds(130);
    ASSERT_TRUE(breaker.allowRequest(trial));
    // The trial's outcome never arrives (caller died). After the
    // open interval passes again, a new trial must be admitted.
    EXPECT_FALSE(breaker.allowRequest(trial + milliseconds(10)));
    EXPECT_TRUE(breaker.allowRequest(trial + milliseconds(150)));
}

TEST(CircuitBreaker, WindowedErrorRateTripsWithoutAStreak)
{
    CircuitBreaker breaker(breakerConfig(), 1);
    const auto t0 = Clock::now();
    // F S F F: the streak never reaches 3, but 3 of 4 windowed
    // outcomes failed >= the 0.5 rate with minSamples met.
    breaker.onFailure(t0);
    breaker.onSuccess();
    breaker.onFailure(t0);
    breaker.onFailure(t0);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
}

// -- Gateway-level scenarios (stub backends) -----------------------

std::unique_ptr<HttpServer>
makeBackend(HttpServer::Handler handler, std::uint16_t port = 0)
{
    HttpServerConfig config;
    config.port = port;
    config.workers = 2;
    auto server =
        std::make_unique<HttpServer>(config, std::move(handler));
    server->start();
    return server;
}

BackendAddress
addressOf(const HttpServer &server)
{
    BackendAddress addr;
    addr.host = "127.0.0.1";
    addr.port = server.port();
    addr.label = "127.0.0.1:" + std::to_string(server.port());
    return addr;
}

HttpServer::Handler
echoHandler(const std::string &who)
{
    return [who](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{\"status\":\"ok\"}");
        return HttpResponse::json(200, "{\"who\":\"" + who + "\"}");
    };
}

GatewayConfig
testGatewayConfig(std::vector<BackendAddress> backends)
{
    GatewayConfig config;
    config.backends = std::move(backends);
    config.upstream.healthIntervalMs = 50;
    config.upstream.ejectAfter = 1;
    config.upstream.connectTimeoutMs = 200;
    config.upstream.requestTimeoutMs = 2000;
    config.retries = 2;
    config.retryBaseMs = 1;
    config.hedgeMaxMs = 1000; // effectively no hedging
    return config;
}

HttpResponse
ask(Gateway &gateway, const std::string &method,
    const std::string &path, const std::string &body,
    Clock::time_point deadline = Clock::time_point{})
{
    HttpRequest req;
    req.method = method;
    req.target = path;
    req.body = body;
    req.deadline = deadline;
    return gateway.handler()(req);
}

std::string
whoAnswered(const HttpResponse &response)
{
    json::Value v;
    std::string error;
    if (!json::parse(response.body, v, &error))
        return "";
    const json::Value *who = v.find("who");
    return who ? who->asString() : "";
}

std::string
cpiBody(int i)
{
    return "{\"workload\":\"w" + std::to_string(i) + "\"}";
}

/** The admin listing entry for one backend label, or null. */
const json::Value *
adminEntry(const json::Value &listing, const std::string &label)
{
    const json::Value *backends = listing.find("backends");
    if (!backends)
        return nullptr;
    for (const json::Value &entry : backends->items()) {
        const json::Value *name = entry.find("backend");
        if (name && name->asString() == label)
            return &entry;
    }
    return nullptr;
}

TEST(Resilience, BreakerEjectsBackendThatFailsLiveTraffic)
{
    // The case health probes cannot see: /healthz answers 200 while
    // every real request fails.
    std::atomic<int> flakyHits{0};
    auto flaky = makeBackend([&](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{}");
        flakyHits.fetch_add(1);
        return HttpResponse::json(500, "{\"error\":\"boom\"}");
    });
    auto good = makeBackend(echoHandler("good"));
    const std::string flakyLabel = addressOf(*flaky).label;

    server::MetricsRegistry metrics;
    GatewayConfig config =
        testGatewayConfig({addressOf(*flaky), addressOf(*good)});
    // Keep active-probe ejection out of the picture: only the
    // breaker may take the flaky backend out of rotation.
    config.upstream.ejectAfter = 1000;
    config.upstream.breakerFailures = 2;
    config.upstream.breakerOpenBaseMs = 60000; // stays open
    Gateway gateway(config, &metrics);
    gateway.start();

    for (int i = 0; i < 30; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        EXPECT_EQ(whoAnswered(r), "good");
    }

    // The breaker opened after 2 live failures and absorbed every
    // later attempt — the flaky backend saw only the trip traffic.
    const std::string label = "backend=\"" + flakyLabel + "\"";
    EXPECT_EQ(metrics.gauge("fosm_gateway_breaker_state", "", label)
                  .value(),
              1); // open
    EXPECT_GE(
        metrics.counter("fosm_gateway_breaker_opens_total", "", label)
            .value(),
        1u);
    EXPECT_LE(flakyHits.load(), 4);

    // The admin view agrees.
    HttpResponse listing = ask(gateway, "GET", "/admin/backends", "");
    ASSERT_EQ(listing.status, 200);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(listing.body, v, &error)) << error;
    const json::Value *entry = adminEntry(v, flakyLabel);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->find("breaker")->asString(), "open");
    EXPECT_TRUE(entry->find("healthy")->asBool());

    // With the good backend gone, the retry chain falls through to
    // the open breaker, which refuses without sending anything.
    good->requestStop();
    good->join();
    good.reset();
    const int hitsBefore = flakyHits.load();
    EXPECT_GE(ask(gateway, "POST", "/v1/cpi", cpiBody(99)).status,
              500);
    EXPECT_GT(metrics
                  .counter("fosm_gateway_breaker_rejections_total",
                           "")
                  .value(),
              0u);
    EXPECT_EQ(flakyHits.load(), hitsBefore);

    gateway.stop();
    flaky->requestStop();
    flaky->join();
}

TEST(Resilience, DeadlinePropagatesToUpstreamAndShedsWhenSpent)
{
    // The backend echoes the deadline header it received.
    std::atomic<int> hits{0};
    auto echoDeadline = makeBackend([&](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{}");
        hits.fetch_add(1);
        const std::string &budget =
            req.header("x-fosm-deadline-ms");
        return HttpResponse::json(
            200, "{\"budget\":\"" + budget + "\"}");
    });

    server::MetricsRegistry metrics;
    Gateway gateway(testGatewayConfig({addressOf(*echoDeadline)}),
                    &metrics);
    gateway.start();

    // A live deadline is forwarded as the remaining budget.
    HttpResponse r = ask(gateway, "POST", "/v1/cpi", cpiBody(0),
                         Clock::now() + milliseconds(400));
    ASSERT_EQ(r.status, 200);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(r.body, v, &error)) << error;
    const long budget =
        std::stol(v.find("budget")->asString());
    EXPECT_GT(budget, 0);
    EXPECT_LE(budget, 400);

    // A spent deadline is shed before any upstream work.
    const int before = hits.load();
    HttpResponse shed = ask(gateway, "POST", "/v1/cpi", cpiBody(1),
                            Clock::now() - milliseconds(1));
    EXPECT_EQ(shed.status, 504);
    EXPECT_EQ(hits.load(), before);
    EXPECT_EQ(
        metrics.counter("fosm_deadline_exceeded_total", "").value(),
        1u);

    gateway.stop();
    echoDeadline->requestStop();
    echoDeadline->join();
}

TEST(Resilience, RetryAfterDefersBackendWithoutBreakerPenalty)
{
    std::atomic<int> shedHits{0};
    auto shedding = makeBackend([&](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{}");
        shedHits.fetch_add(1);
        HttpResponse r =
            HttpResponse::json(503, "{\"error\":\"overloaded\"}");
        r.setHeader("Retry-After", "30");
        return r;
    });
    auto good = makeBackend(echoHandler("good"));
    const std::string shedLabel = addressOf(*shedding).label;

    server::MetricsRegistry metrics;
    GatewayConfig config =
        testGatewayConfig({addressOf(*shedding), addressOf(*good)});
    config.upstream.ejectAfter = 1000;
    Gateway gateway(config, &metrics);
    gateway.start();

    for (int i = 0; i < 30; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        EXPECT_EQ(whoAnswered(r), "good");
    }

    // The hint was honored at least once, and a polite 503 is not a
    // breaker failure: the shedding backend stays closed/deferred.
    EXPECT_GE(metrics
                  .counter("fosm_gateway_retry_after_honored_total",
                           "")
                  .value(),
              1u);
    const std::string label = "backend=\"" + shedLabel + "\"";
    EXPECT_EQ(metrics.gauge("fosm_gateway_breaker_state", "", label)
                  .value(),
              0); // closed
    HttpResponse listing = ask(gateway, "GET", "/admin/backends", "");
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(listing.body, v, &error)) << error;
    const json::Value *entry = adminEntry(v, shedLabel);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->find("deferred")->asBool());

    gateway.stop();
    shedding->requestStop();
    good->requestStop();
    shedding->join();
    good->join();
}

TEST(Resilience, AdminAddsAndDrainsBackendsLive)
{
    auto a = makeBackend(echoHandler("a"));
    auto b = makeBackend(echoHandler("b"));
    const std::string aLabel = addressOf(*a).label;
    const std::string bLabel = addressOf(*b).label;

    server::MetricsRegistry metrics;
    Gateway gateway(testGatewayConfig({addressOf(*a)}), &metrics);
    gateway.start();
    ASSERT_EQ(gateway.topology()->backends.size(), 1u);

    // Join b without a restart.
    HttpResponse joined =
        ask(gateway, "POST", "/admin/backends",
            "{\"add\":[\"" + bLabel + "\"]}");
    ASSERT_EQ(joined.status, 200) << joined.body;
    EXPECT_EQ(gateway.topology()->backends.size(), 2u);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(joined.body, v, &error)) << error;
    EXPECT_EQ(v.find("topology_backends")->asInt(), 2);

    // Traffic now reaches both replicas, split by digest.
    std::set<std::string> owners;
    for (int i = 0; i < 30; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        owners.insert(whoAnswered(r));
    }
    EXPECT_EQ(owners.size(), 2u);

    // Drain b: it leaves the topology, traffic re-homes to a, and
    // no request fails across the transition.
    HttpResponse drained =
        ask(gateway, "POST", "/admin/backends",
            "{\"remove\":[\"" + bLabel + "\"]}");
    ASSERT_EQ(drained.status, 200) << drained.body;
    EXPECT_EQ(gateway.topology()->backends.size(), 1u);
    for (int i = 0; i < 30; ++i) {
        HttpResponse r =
            ask(gateway, "POST", "/v1/cpi", cpiBody(i));
        ASSERT_EQ(r.status, 200) << cpiBody(i);
        EXPECT_EQ(whoAnswered(r), "a");
    }
    EXPECT_EQ(
        metrics.counter("fosm_gateway_membership_changes_total", "")
            .value(),
        2u);

    // Guard rails: unknown labels, unknown members, and emptying
    // the membership are all rejected without side effects.
    EXPECT_EQ(ask(gateway, "POST", "/admin/backends",
                  "{\"remove\":[\"" + bLabel + "\"]}")
                  .status,
              400); // already gone
    EXPECT_EQ(ask(gateway, "POST", "/admin/backends",
                  "{\"evict\":[\"" + aLabel + "\"]}")
                  .status,
              400);
    EXPECT_EQ(ask(gateway, "POST", "/admin/backends",
                  "{\"remove\":[\"" + aLabel + "\"]}")
                  .status,
              400); // refuses to remove the last backend
    EXPECT_EQ(gateway.topology()->backends.size(), 1u);

    gateway.stop();
    a->requestStop();
    b->requestStop();
    a->join();
    b->join();
}

} // namespace
} // namespace fosm::cluster
