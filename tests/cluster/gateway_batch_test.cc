/**
 * @file
 * Gateway /v1/batch tests against stub backends that speak the
 * binary wire format: a client JSON batch is split by row digest,
 * each shard group travels as one application/x-fosm-batch frame,
 * and the columnar JSON response comes back in client row order.
 * Failure of one shard degrades to error slots for its rows only,
 * and binary client bodies are refused at the front door.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/gateway.hh"
#include "server/batch.hh"
#include "server/http.hh"
#include "server/json.hh"

namespace fosm::cluster {
namespace {

using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerConfig;
namespace batch = server::batch;

std::unique_ptr<HttpServer>
makeBackend(HttpServer::Handler handler)
{
    HttpServerConfig config;
    config.port = 0;
    config.workers = 2;
    auto server =
        std::make_unique<HttpServer>(config, std::move(handler));
    server->start();
    return server;
}

BackendAddress
addressOf(const HttpServer &server)
{
    BackendAddress addr;
    addr.host = "127.0.0.1";
    addr.port = server.port();
    addr.label = "127.0.0.1:" + std::to_string(server.port());
    return addr;
}

/**
 * A stub replica that answers /v1/batch ONLY in the binary format:
 * decodes the frame (400 on a malformed one — which a reassembly
 * test would then surface as row errors), marks every row's ideal
 * column with `marker`, and encodes a binary response. Any JSON
 * body on /v1/batch is answered 415, proving the gateway really
 * negotiated the binary hop.
 */
HttpServer::Handler
batchBackend(double marker)
{
    return [marker](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{\"status\":\"ok\"}");
        if (req.path() != "/v1/batch")
            return HttpResponse::json(404, "{\"error\":\"path\"}");
        if (req.header("content-type")
                .rfind(batch::contentType, 0) != 0)
            return HttpResponse::json(
                415, "{\"error\":\"expected binary batch\"}");
        json::Value body;
        std::string error;
        if (!batch::decodeRequest(req.body, body, &error))
            return HttpResponse::json(
                400, "{\"error\":\"" + error + "\"}");
        const json::Value *rows = body.find("rows");
        batch::Result result;
        const json::Value *workload = body.find("workload");
        result.workload =
            workload ? workload->asString() : std::string();
        for (std::size_t i = 0; i < rows->items().size(); ++i)
            result.pushRow(marker, 0, 0, 0, 0, 0, marker, 0);
        HttpResponse out(200);
        out.body = batch::encodeResponse(result);
        out.setHeader("Content-Type", batch::contentType);
        return out;
    };
}

GatewayConfig
testConfig(std::vector<BackendAddress> backends)
{
    GatewayConfig config;
    config.backends = std::move(backends);
    config.upstream.healthIntervalMs = 50;
    config.upstream.ejectAfter = 1;
    config.upstream.connectTimeoutMs = 200;
    config.upstream.requestTimeoutMs = 2000;
    config.retries = 1;
    config.retryBaseMs = 1;
    config.hedgeMaxMs = 1000;
    return config;
}

HttpResponse
ask(Gateway &gateway, const std::string &body,
    const std::string &contentType = "")
{
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/batch";
    req.body = body;
    if (!contentType.empty())
        req.headers.emplace_back("content-type", contentType);
    return gateway.handler()(req);
}

std::string
batchBody(int firstDeltaD, int rows)
{
    json::Value body = json::Value::object();
    body.set("workload", "gcc");
    json::Value arr = json::Value::array();
    for (int i = 0; i < rows; ++i) {
        json::Value row = json::Value::object();
        row.set("deltaD",
                static_cast<std::uint64_t>(firstDeltaD + i));
        arr.push(std::move(row));
    }
    body.set("rows", std::move(arr));
    return body.dump();
}

TEST(GatewayBatch, SplitsBinaryUpstreamAndReassemblesInRowOrder)
{
    auto a = makeBackend(batchBackend(1.0));
    auto b = makeBackend(batchBackend(2.0));
    auto c = makeBackend(batchBackend(3.0));
    Gateway gateway(
        testConfig({addressOf(*a), addressOf(*b), addressOf(*c)}),
        nullptr);
    gateway.start();

    const std::string body = batchBody(100, 30);
    const HttpResponse first = ask(gateway, body);
    ASSERT_EQ(first.status, 200);

    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(first.body, v, &error)) << error;
    EXPECT_EQ(v.find("rows")->asDouble(), 30.0);
    const json::Value *ideal = v.find("cpi")->find("ideal");
    ASSERT_NE(ideal, nullptr);
    ASSERT_EQ(ideal->items().size(), 30u);

    std::set<double> owners;
    for (std::size_t i = 0; i < 30; ++i) {
        ASSERT_TRUE(v.find("errors")->items()[i].isNull()) << i;
        owners.insert(ideal->items()[i].asDouble());
    }
    // 30 distinct design points spread over the ring: the batch was
    // genuinely split, not proxied whole to one backend.
    EXPECT_GE(owners.size(), 2u);
    std::string shards;
    for (const auto &h : first.headers)
        if (h.first == "X-Fosm-Batch-Shards")
            shards = h.second;
    EXPECT_EQ(shards, std::to_string(owners.size()));

    // Deterministic: the same batch re-asked lands each row on the
    // same owner (this is what makes backend caches compose).
    const HttpResponse again = ask(gateway, body);
    ASSERT_EQ(again.status, 200);
    EXPECT_EQ(again.body, first.body);

    // Row k alone routes exactly where row k in the big batch went:
    // rows shard by row digest, not by batch body.
    for (const int k : {0, 13, 29}) {
        json::Value single;
        ASSERT_TRUE(json::parse(batchBody(100 + k, 1), single,
                                &error));
        const HttpResponse one =
            ask(gateway, single.dump());
        ASSERT_EQ(one.status, 200);
        json::Value sv;
        ASSERT_TRUE(json::parse(one.body, sv, &error)) << error;
        EXPECT_EQ(
            sv.find("cpi")->find("ideal")->items()[0].asDouble(),
            ideal->items()[static_cast<std::size_t>(k)].asDouble())
            << k;
    }

    gateway.stop();
    a->requestStop();
    b->requestStop();
    c->requestStop();
    a->join();
    b->join();
    c->join();
}

TEST(GatewayBatch, FailedShardDegradesToPerRowErrors)
{
    // A single backend that always 5xxes /v1/batch: its rows come
    // back as error slots, while a locally invalid row gets the
    // same message the backend's own validation would produce.
    auto bad = makeBackend([](const HttpRequest &req) {
        if (req.path() == "/healthz")
            return HttpResponse::json(200, "{\"status\":\"ok\"}");
        return HttpResponse::json(500, "{\"error\":\"boom\"}");
    });
    Gateway gateway(testConfig({addressOf(*bad)}), nullptr);
    gateway.start();

    json::Value body = json::Value::object();
    body.set("workload", "gcc");
    json::Value rows = json::Value::array();
    json::Value r0 = json::Value::object();
    r0.set("deltaD", 120);
    rows.push(std::move(r0));
    rows.push(42.0); // not an object: rejected at the gateway
    json::Value r2 = json::Value::object();
    r2.set("deltaD", 121);
    rows.push(std::move(r2));
    body.set("rows", std::move(rows));

    const HttpResponse response = ask(gateway, body.dump());
    ASSERT_EQ(response.status, 200);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(response.body, v, &error)) << error;
    const json::Value *errors = v.find("errors");
    ASSERT_EQ(errors->items().size(), 3u);
    EXPECT_NE(errors->items()[0].asString().find("500"),
              std::string::npos);
    EXPECT_EQ(errors->items()[1].asString(),
              "batch row must be an object");
    EXPECT_NE(errors->items()[2].asString().find("500"),
              std::string::npos);
    // Error rows carry null columns.
    EXPECT_TRUE(
        v.find("cpi")->find("total")->items()[0].isNull());

    gateway.stop();
    bad->requestStop();
    bad->join();
}

TEST(GatewayBatch, RejectsBinaryClientBodiesWith415)
{
    auto backend = makeBackend(batchBackend(1.0));
    Gateway gateway(testConfig({addressOf(*backend)}), nullptr);
    gateway.start();

    const HttpResponse response =
        ask(gateway, "whatever", batch::contentType);
    EXPECT_EQ(response.status, 415);

    gateway.stop();
    backend->requestStop();
    backend->join();
}

TEST(GatewayBatch, ValidatesTopLevelBeforeAnyUpstreamCall)
{
    auto backend = makeBackend(batchBackend(1.0));
    Gateway gateway(testConfig({addressOf(*backend)}), nullptr);
    gateway.start();

    EXPECT_EQ(ask(gateway, "not json").status, 400);
    EXPECT_EQ(
        ask(gateway,
            "{\"workload\":\"gcc\",\"rows\":[]}")
            .status,
        400);
    // Method check.
    HttpRequest get;
    get.method = "GET";
    get.target = "/v1/batch";
    EXPECT_EQ(gateway.handler()(get).status, 405);

    gateway.stop();
    backend->requestStop();
    backend->join();
}

} // namespace
} // namespace fosm::cluster
