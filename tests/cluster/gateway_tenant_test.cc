/**
 * @file
 * End-to-end tenant enforcement through the gateway against a stub
 * backend that records the headers it receives: 401 without/with a
 * bad token, 429 past the rate limit, Authorization forwarded
 * upstream, the verified X-Fosm-Tenant stamped, and — crucially — a
 * client-forged X-Fosm-Tenant never reaching a backend.
 */

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/gateway.hh"
#include "server/http.hh"
#include "server/json.hh"
#include "tenant/registry.hh"

namespace fosm::cluster {
namespace {

using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::HttpServerConfig;

/** The headers of every non-health request the backend saw. */
struct SeenHeaders
{
    std::mutex mutex;
    std::vector<std::vector<std::pair<std::string, std::string>>>
        requests;

    std::string
    lastValue(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (requests.empty())
            return "";
        for (const auto &header : requests.back())
            if (header.first == name)
                return header.second;
        return "";
    }

    std::size_t
    count()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return requests.size();
    }
};

std::unique_ptr<HttpServer>
makeRecordingBackend(SeenHeaders &seen)
{
    HttpServerConfig config;
    config.port = 0;
    config.workers = 2;
    auto server = std::make_unique<HttpServer>(
        config, [&seen](const HttpRequest &req) {
            if (req.path() == "/healthz")
                return HttpResponse::json(200,
                                          "{\"status\":\"ok\"}");
            {
                std::lock_guard<std::mutex> lock(seen.mutex);
                seen.requests.push_back(req.headers);
            }
            return HttpResponse::json(200, "{\"ok\":true}");
        });
    server->start();
    return server;
}

std::shared_ptr<tenant::Registry>
testRegistry()
{
    auto registry = std::make_shared<tenant::Registry>();
    json::Value doc;
    std::string error;
    EXPECT_TRUE(json::parse(
        R"({"tenants": [
             {"id": "acme", "token": "tok-acme", "weight": 3},
             {"id": "slow", "token": "tok-slow",
              "rate_rps": 0.5, "burst": 1}]})",
        doc, &error))
        << error;
    std::vector<tenant::TenantSpec> specs;
    EXPECT_TRUE(
        tenant::Registry::parseTenants(doc, specs, error))
        << error;
    EXPECT_TRUE(registry->replace(std::move(specs), error))
        << error;
    return registry;
}

GatewayConfig
tenantGatewayConfig(const HttpServer &backend,
                    std::shared_ptr<tenant::Registry> registry)
{
    GatewayConfig config;
    BackendAddress addr;
    addr.host = "127.0.0.1";
    addr.port = backend.port();
    addr.label = "127.0.0.1:" + std::to_string(backend.port());
    config.backends = {addr};
    config.registry = std::move(registry);
    config.upstream.healthIntervalMs = 50;
    config.upstream.connectTimeoutMs = 200;
    config.upstream.requestTimeoutMs = 2000;
    config.retries = 1;
    config.retryBaseMs = 1;
    config.hedgeMaxMs = 1000;
    return config;
}

HttpResponse
ask(Gateway &gateway, const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &headers,
    const std::string &body = "{\"workload\":\"w\"}")
{
    HttpRequest req;
    req.method = "POST";
    req.target = path;
    req.headers = headers;
    req.body = body;
    return gateway.handler()(req);
}

TEST(GatewayTenant, RejectsMissingAndUnknownTokens)
{
    SeenHeaders seen;
    auto backend = makeRecordingBackend(seen);
    Gateway gateway(tenantGatewayConfig(*backend, testRegistry()),
                    nullptr);
    gateway.start();

    EXPECT_EQ(ask(gateway, "/v1/cpi", {}).status, 401);
    EXPECT_EQ(
        ask(gateway, "/v1/cpi", {{"authorization", "Bearer bad"}})
            .status,
        401);
    // Nothing reached the backend.
    EXPECT_EQ(seen.count(), 0u);

    // Health stays open for probes.
    HttpRequest health;
    health.method = "GET";
    health.target = "/healthz";
    EXPECT_EQ(gateway.handler()(health).status, 200);
    gateway.stop();
}

TEST(GatewayTenant, ForwardsAuthAndStampsVerifiedTenant)
{
    SeenHeaders seen;
    auto backend = makeRecordingBackend(seen);
    Gateway gateway(tenantGatewayConfig(*backend, testRegistry()),
                    nullptr);
    gateway.start();

    // A client trying to forge an identity: the stamp upstream must
    // be the *verified* one, and the forged value must vanish.
    const HttpResponse ok = ask(
        gateway, "/v1/cpi",
        {{"authorization", "Bearer tok-acme"},
         {"x-fosm-tenant", "forged-root"}});
    EXPECT_EQ(ok.status, 200);
    ASSERT_EQ(seen.count(), 1u);
    EXPECT_EQ(seen.lastValue("x-fosm-tenant"), "acme");
    EXPECT_EQ(seen.lastValue("authorization"), "Bearer tok-acme");
    gateway.stop();
}

TEST(GatewayTenant, RateLimitedTenantGets429WithRetryAfter)
{
    SeenHeaders seen;
    auto backend = makeRecordingBackend(seen);
    Gateway gateway(tenantGatewayConfig(*backend, testRegistry()),
                    nullptr);
    gateway.start();

    const std::vector<std::pair<std::string, std::string>> auth{
        {"authorization", "Bearer tok-slow"}};
    EXPECT_EQ(ask(gateway, "/v1/cpi", auth).status, 200); // burst 1
    const HttpResponse limited = ask(gateway, "/v1/cpi", auth);
    EXPECT_EQ(limited.status, 429);
    std::string retryAfter;
    for (const auto &header : limited.headers)
        if (header.first == "Retry-After")
            retryAfter = header.second;
    EXPECT_FALSE(retryAfter.empty());
    // The 429 was answered at the gateway: one upstream call only.
    EXPECT_EQ(seen.count(), 1u);
    gateway.stop();
}

TEST(GatewayTenant, AdminTenantsRoutesToTheRegistry)
{
    SeenHeaders seen;
    auto backend = makeRecordingBackend(seen);
    auto registry = testRegistry();
    Gateway gateway(tenantGatewayConfig(*backend, registry),
                    nullptr);
    gateway.start();

    HttpRequest list;
    list.method = "GET";
    list.target = "/admin/tenants";
    const HttpResponse response = gateway.handler()(list);
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("acme"), std::string::npos);
    // Secrets never leave the registry.
    EXPECT_EQ(response.body.find("tok-acme"), std::string::npos);
    gateway.stop();
}

TEST(GatewayTenant, NoRegistryMeansNoAuthAndNoAdminEndpoint)
{
    SeenHeaders seen;
    auto backend = makeRecordingBackend(seen);
    Gateway gateway(tenantGatewayConfig(*backend, nullptr),
                    nullptr);
    gateway.start();

    EXPECT_EQ(ask(gateway, "/v1/cpi", {}).status, 200);
    HttpRequest list;
    list.method = "GET";
    list.target = "/admin/tenants";
    EXPECT_EQ(gateway.handler()(list).status, 404);
    gateway.stop();
}

} // namespace
} // namespace fosm::cluster
