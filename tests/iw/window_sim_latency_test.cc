/** @file Limited-width window simulation under non-unit latencies. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "iw/window_sim.hh"

namespace fosm {
namespace {

TEST(WindowSimLatency, LimitedWidthNonUnitSerialChain)
{
    // Serial multiply chain, width 2, real latencies: the width is
    // irrelevant (one op in flight), latency dominates: IPC = 1/3.
    test::TraceBuilder b;
    for (int i = 0; i < 1000; ++i)
        b.add(InstClass::IntMul, static_cast<RegIndex>(i % 2),
              i == 0 ? invalidReg
                     : static_cast<RegIndex>((i - 1) % 2));
    WindowSimConfig c;
    c.windowSize = 16;
    c.issueWidth = 2;
    c.unitLatency = false;
    const WindowSimResult r = simulateWindow(b.take(), c);
    EXPECT_NEAR(r.ipc, 1.0 / 3.0, 0.02);
}

TEST(WindowSimLatency, IndependentDividesWidthBound)
{
    // Independent divides: latency hides behind parallelism, the
    // issue width is the only limit.
    test::TraceBuilder b;
    for (int i = 0; i < 2000; ++i)
        b.add(InstClass::IntDiv, static_cast<RegIndex>(i % 64));
    WindowSimConfig c;
    c.windowSize = 64;
    c.issueWidth = 4;
    c.unitLatency = false;
    const WindowSimResult r = simulateWindow(b.take(), c);
    EXPECT_NEAR(r.ipc, 4.0, 0.2);
}

TEST(WindowSimLatency, LittlesLawHoldsOnMixedChain)
{
    // Two interleaved serial chains of 3-cycle ops with window >> 2:
    // each chain sustains 1/3, together 2/3 - exactly I_1 / L with
    // I_1 = 2 (two independent strands) and L = 3.
    test::TraceBuilder b;
    for (int i = 0; i < 2000; ++i) {
        const int chain = i % 2;
        b.add(InstClass::IntMul,
              static_cast<RegIndex>(chain),
              i < 2 ? invalidReg : static_cast<RegIndex>(chain));
    }
    WindowSimConfig c;
    c.windowSize = 32;
    c.unitLatency = false;
    const WindowSimResult r = simulateWindow(b.take(), c);
    EXPECT_NEAR(r.ipc, 2.0 / 3.0, 0.05);
}

TEST(WindowSimLatency, UnitVsRealOrdering)
{
    // Real latencies never beat unit latencies for the same trace.
    const Trace t = test::serialChain(2000);
    WindowSimConfig unit, real;
    unit.windowSize = real.windowSize = 32;
    unit.unitLatency = true;
    real.unitLatency = false;
    EXPECT_GE(simulateWindow(t, unit).ipc,
              simulateWindow(t, real).ipc - 1e-9);
}

} // namespace
} // namespace fosm
