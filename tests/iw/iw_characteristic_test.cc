/** @file Unit tests for the IW characteristic abstraction. */

#include <gtest/gtest.h>

#include <cmath>

#include "iw/iw_characteristic.hh"

namespace fosm {
namespace {

TEST(IWCharacteristic, UnitRateFollowsPowerLaw)
{
    const IWCharacteristic iw(1.3, 0.5, 1.0, 0);
    EXPECT_NEAR(iw.unitRate(16.0), 1.3 * 4.0, 1e-9);
    EXPECT_NEAR(iw.unitRate(64.0), 1.3 * 8.0, 1e-9);
    EXPECT_EQ(iw.unitRate(0.0), 0.0);
}

TEST(IWCharacteristic, LittlesLawDividesByLatency)
{
    // Section 3: I_L = I_1 / L.
    const IWCharacteristic unit(1.0, 0.5, 1.0, 0);
    const IWCharacteristic lat2(1.0, 0.5, 2.0, 0);
    EXPECT_NEAR(lat2.issueRate(16.0), unit.issueRate(16.0) / 2.0,
                1e-9);
}

TEST(IWCharacteristic, SaturatesAtIssueWidth)
{
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    EXPECT_NEAR(iw.issueRate(9.0), 3.0, 1e-9);   // below saturation
    EXPECT_NEAR(iw.issueRate(16.0), 4.0, 1e-9);  // exactly at
    EXPECT_NEAR(iw.issueRate(64.0), 4.0, 1e-9);  // clipped
}

TEST(IWCharacteristic, SteadyStateIpcAndCpi)
{
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    EXPECT_NEAR(iw.steadyStateIpc(48), 4.0, 1e-9);
    EXPECT_NEAR(iw.steadyStateCpi(48), 0.25, 1e-9);

    // Unsaturated case (vpr-like).
    const IWCharacteristic low(1.7, 0.3, 2.2, 4);
    const double expected = 1.7 * std::pow(48.0, 0.3) / 2.2;
    EXPECT_NEAR(low.steadyStateIpc(48), expected, 1e-9);
    EXPECT_LT(low.steadyStateIpc(48), 4.0);
}

TEST(IWCharacteristic, OccupancyForRateInvertsIssueRate)
{
    const IWCharacteristic iw(1.3, 0.55, 1.6, 0);
    for (double rate : {0.5, 1.0, 2.0, 3.5}) {
        const double w = iw.occupancyForRate(rate);
        EXPECT_NEAR(iw.issueRate(w), rate, 1e-9) << "rate " << rate;
    }
    EXPECT_EQ(iw.occupancyForRate(0.0), 0.0);
}

TEST(IWCharacteristic, SquareLawOccupancyExample)
{
    // The Figure 8 setting: alpha=1, beta=0.5, unit latency, width 4:
    // sustaining rate 4 needs occupancy 16.
    const IWCharacteristic iw(1.0, 0.5, 1.0, 4);
    EXPECT_NEAR(iw.occupancyForRate(4.0), 16.0, 1e-9);
}

TEST(IWCharacteristic, FromPointsRecoversLaw)
{
    std::vector<IwPoint> points;
    for (std::uint32_t w : {4u, 8u, 16u, 32u, 64u})
        points.push_back({w, 1.2 * std::pow(w, 0.7)});
    const IWCharacteristic iw =
        IWCharacteristic::fromPoints(points, 1.6, 4);
    EXPECT_NEAR(iw.alpha(), 1.2, 1e-6);
    EXPECT_NEAR(iw.beta(), 0.7, 1e-9);
    EXPECT_NEAR(iw.avgLatency(), 1.6, 1e-12);
    EXPECT_EQ(iw.issueWidth(), 4u);
    EXPECT_NEAR(iw.fitR2(), 1.0, 1e-9);
}

TEST(IWCharacteristic, FromPointsClampsBeta)
{
    // Superlinear points (can happen on tiny noisy curves) clamp to 1.
    std::vector<IwPoint> points;
    for (std::uint32_t w : {4u, 8u, 16u})
        points.push_back({w, 0.1 * std::pow(w, 1.4)});
    const IWCharacteristic iw =
        IWCharacteristic::fromPoints(points, 1.0, 0);
    EXPECT_NEAR(iw.beta(), 1.0, 1e-12);
}

TEST(IWCharacteristicDeath, RejectsBadParameters)
{
    EXPECT_DEATH(IWCharacteristic(0.0, 0.5, 1.0, 4), "alpha");
    EXPECT_DEATH(IWCharacteristic(1.0, 0.5, 0.5, 4), "latency");
}

} // namespace
} // namespace fosm
