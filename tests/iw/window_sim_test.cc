/** @file Unit and property tests for the idealized window simulator. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "iw/window_sim.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace fosm {
namespace {

WindowSimConfig
unitConfig(std::uint32_t window, std::uint32_t width = 0)
{
    WindowSimConfig c;
    c.windowSize = window;
    c.issueWidth = width;
    c.unitLatency = true;
    return c;
}

TEST(WindowSim, SerialChainIpcIsOne)
{
    const Trace t = test::serialChain(1000);
    const WindowSimResult r = simulateWindow(t, unitConfig(32));
    // Each instruction waits for its predecessor: one per cycle.
    EXPECT_NEAR(r.ipc, 1.0, 0.01);
}

TEST(WindowSim, IndependentStreamIssuesWholeWindow)
{
    const Trace t = test::independentStream(10000);
    const WindowSimResult r = simulateWindow(t, unitConfig(16));
    // W instructions issue per cycle once the pipeline of window
    // refills is rolling.
    EXPECT_NEAR(r.ipc, 16.0, 0.5);
}

TEST(WindowSim, WindowOfOneSerializes)
{
    const Trace t = test::independentStream(1000);
    const WindowSimResult r = simulateWindow(t, unitConfig(1));
    EXPECT_NEAR(r.ipc, 1.0, 0.01);
}

TEST(WindowSim, NonUnitLatencyScalesSerialChain)
{
    // Serial chain of 3-cycle ops: one instruction per 3 cycles.
    test::TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.add(InstClass::IntMul, static_cast<RegIndex>(i % 2),
              i == 0 ? invalidReg
                     : static_cast<RegIndex>((i - 1) % 2));
    WindowSimConfig c = unitConfig(32);
    c.unitLatency = false;
    const WindowSimResult r = simulateWindow(b.take(), c);
    EXPECT_NEAR(r.ipc, 1.0 / 3.0, 0.01);
}

TEST(WindowSim, LimitedWidthCapsIndependentStream)
{
    const Trace t = test::independentStream(5000);
    const WindowSimResult r = simulateWindow(t, unitConfig(32, 4));
    EXPECT_NEAR(r.ipc, 4.0, 0.05);
    EXPECT_LE(r.ipc, 4.0 + 1e-9);
}

TEST(WindowSim, LimitedWidthMatchesUnboundedWhenNotBinding)
{
    const Trace t = test::serialChain(500);
    const WindowSimResult wide = simulateWindow(t, unitConfig(16, 8));
    const WindowSimResult unbounded = simulateWindow(t, unitConfig(16));
    EXPECT_NEAR(wide.ipc, unbounded.ipc, 0.02);
}

TEST(WindowSim, DiamondPatternIpcTwo)
{
    // Pairs: (a, b) independent; next pair depends on previous pair.
    test::TraceBuilder b;
    for (int i = 0; i < 500; ++i) {
        const RegIndex base = static_cast<RegIndex>((i % 2) * 2);
        const RegIndex prev =
            static_cast<RegIndex>(((i + 1) % 2) * 2);
        b.alu(base, i == 0 ? invalidReg : prev);
        b.alu(static_cast<RegIndex>(base + 1),
              i == 0 ? invalidReg : prev);
    }
    const WindowSimResult r = simulateWindow(b.take(), unitConfig(32));
    EXPECT_NEAR(r.ipc, 2.0, 0.05);
}

TEST(WindowSim, EmptyTrace)
{
    const Trace t("empty");
    const WindowSimResult r = simulateWindow(t, unitConfig(16));
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.ipc, 0.0);
}

TEST(MeasureIwCurve, PointsMatchSingleRuns)
{
    const Trace t = generateTrace(profileByName("gzip"), 20000);
    const std::vector<IwPoint> points =
        measureIwCurve(t, {4, 16}, unitConfig(0 /*overridden*/));
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].windowSize, 4u);
    EXPECT_NEAR(points[0].ipc,
                simulateWindow(t, unitConfig(4)).ipc, 1e-12);
    EXPECT_NEAR(points[1].ipc,
                simulateWindow(t, unitConfig(16)).ipc, 1e-12);
}

TEST(DefaultIwSizes, PowersOfTwo)
{
    const std::vector<std::uint32_t> sizes = defaultIwSizes();
    ASSERT_GE(sizes.size(), 5u);
    EXPECT_EQ(sizes.front(), 4u);
    for (std::size_t i = 1; i < sizes.size(); ++i)
        EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

/** Property: IPC is monotone non-decreasing in window size. */
class WindowMonotonic : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WindowMonotonic, IpcNonDecreasingInWindowSize)
{
    const Trace t = generateTrace(profileByName(GetParam()), 30000);
    double prev = 0.0;
    for (std::uint32_t w : {4u, 8u, 16u, 32u, 64u}) {
        const WindowSimResult r = simulateWindow(t, unitConfig(w));
        EXPECT_GE(r.ipc, prev - 0.02) << "window " << w;
        prev = r.ipc;
    }
}

INSTANTIATE_TEST_SUITE_P(Profiles, WindowMonotonic,
                         ::testing::Values("gzip", "vortex", "vpr",
                                           "mcf"));

/** Property: limited issue width never beats unbounded. */
class WidthCap : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WidthCap, LimitedNeverFaster)
{
    const std::uint32_t width = GetParam();
    const Trace t = generateTrace(profileByName("crafty"), 20000);
    const double unbounded = simulateWindow(t, unitConfig(48)).ipc;
    const double limited =
        simulateWindow(t, unitConfig(48, width)).ipc;
    EXPECT_LE(limited, unbounded + 0.02);
    EXPECT_LE(limited, static_cast<double>(width) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthCap,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace fosm
