/**
 * @file
 * Handcrafted-trace builders shared by the unit tests. These let a
 * test express an exact dependence/control/memory structure and check
 * simulator and model behaviour against cycle-accurate expectations.
 */

#ifndef FOSM_TESTS_TEST_UTIL_HH
#define FOSM_TESTS_TEST_UTIL_HH

#include <cstdint>

#include "trace/trace.hh"

namespace fosm::test {

/** Builder for tiny, fully-specified traces. */
class TraceBuilder
{
  public:
    explicit TraceBuilder(std::string name = "test")
        : trace_(std::move(name))
    {
    }

    /** Append a generic instruction. */
    TraceBuilder &
    add(InstClass cls, RegIndex dst = invalidReg,
        RegIndex src1 = invalidReg, RegIndex src2 = invalidReg)
    {
        InstRecord inst;
        inst.pc = nextPc_;
        nextPc_ += 4;
        inst.cls = cls;
        inst.dst = dst;
        inst.src1 = src1;
        inst.src2 = src2;
        trace_.append(inst);
        return *this;
    }

    /** Append an integer ALU op. */
    TraceBuilder &
    alu(RegIndex dst, RegIndex src1 = invalidReg,
        RegIndex src2 = invalidReg)
    {
        return add(InstClass::IntAlu, dst, src1, src2);
    }

    /** Append a load from the given address. */
    TraceBuilder &
    load(RegIndex dst, Addr addr, RegIndex addr_reg = invalidReg)
    {
        add(InstClass::Load, dst, addr_reg);
        trace_.at(trace_.size() - 1).effAddr = addr;
        return *this;
    }

    /** Append a store to the given address. */
    TraceBuilder &
    store(Addr addr, RegIndex data_reg = invalidReg,
          RegIndex addr_reg = invalidReg)
    {
        add(InstClass::Store, invalidReg, addr_reg, data_reg);
        trace_.at(trace_.size() - 1).effAddr = addr;
        return *this;
    }

    /** Append a branch with the given outcome. */
    TraceBuilder &
    branch(bool taken, RegIndex cond_reg = invalidReg)
    {
        add(InstClass::Branch, invalidReg, cond_reg);
        trace_.at(trace_.size() - 1).branchTaken = taken;
        return *this;
    }

    /** Override the PC of the last instruction. */
    TraceBuilder &
    at(Addr pc)
    {
        trace_.at(trace_.size() - 1).pc = pc;
        return *this;
    }

    /** Finish and take the trace. */
    Trace take() { return std::move(trace_); }

  private:
    Trace trace_;
    Addr nextPc_ = 0x1000;
};

/**
 * A chain of n single-cycle ALU ops, each depending on the previous
 * (serial: unbounded-window IPC is 1).
 */
inline Trace
serialChain(std::size_t n)
{
    TraceBuilder b("serial");
    for (std::size_t i = 0; i < n; ++i)
        b.alu(static_cast<RegIndex>(i % 2),
              i == 0 ? invalidReg : static_cast<RegIndex>((i - 1) % 2));
    return b.take();
}

/** n fully independent single-cycle ALU ops (IPC limited by window). */
inline Trace
independentStream(std::size_t n)
{
    TraceBuilder b("independent");
    for (std::size_t i = 0; i < n; ++i)
        b.alu(static_cast<RegIndex>(i % 64));
    return b.take();
}

} // namespace fosm::test

#endif // FOSM_TESTS_TEST_UTIL_HH
