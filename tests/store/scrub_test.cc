/**
 * @file
 * The scrub half of the self-healing loop: detect a flipped bit,
 * quarantine the record (miss, never an error), survive concurrent
 * compaction, and report honestly through the offline verifier. The
 * repair half (pulling a good copy from the ring) lives in
 * tests/repl/repair_test.cc.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.hh"
#include "store/scrubber.hh"
#include "store/store.hh"
#include "store_test_util.hh"

namespace fosm::store {
namespace {

StoreConfig
smallConfig(const std::string &dir)
{
    StoreConfig config;
    config.dir = dir;
    config.maxSegmentBytes = 4096;
    config.backgroundCompaction = false;
    return config;
}

std::string
segmentPath(const std::string &dir, std::uint64_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llu.seg",
                  static_cast<unsigned long long>(id));
    return dir + "/" + buf;
}

/**
 * Find the live record for `key` and return its segment id + entry.
 */
bool
findEntry(PersistentStore &st, const std::string &key,
          std::uint64_t &segmentId, ScrubEntry &entry)
{
    for (const SegmentLsnInfo &info : st.segmentLsns()) {
        for (const ScrubEntry &e :
             st.liveEntriesInSegment(info.id, 0)) {
            if (e.key == key) {
                segmentId = info.id;
                entry = e;
                return true;
            }
        }
    }
    return false;
}

/**
 * XOR one byte of the record's VALUE in place on disk. The record
 * layout is a 32-byte header, the key, then the value — the header
 * CRC covers all of it, so any value byte invalidates the record.
 */
void
flipValueByte(const std::string &dir, std::uint64_t segmentId,
              const ScrubEntry &entry, std::size_t keySize)
{
    const std::string path = segmentPath(dir, segmentId);
    const std::streamoff off = static_cast<std::streamoff>(
        entry.offset + 32 + keySize);
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(off);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(off);
    f.write(&byte, 1);
}

/** Corrupt `key`'s value on disk while the store stays open. */
void
corruptKeyOnDisk(PersistentStore &st, const std::string &key)
{
    st.flush();
    std::uint64_t segmentId = 0;
    ScrubEntry entry;
    ASSERT_TRUE(findEntry(st, key, segmentId, entry)) << key;
    flipValueByte(st.config().dir, segmentId, entry, key.size());
}

TEST(Scrub, DetectsAndQuarantinesBitFlip)
{
    fosm::test::TempDir dir;
    auto st = std::make_shared<PersistentStore>(
        smallConfig(dir.path()));
    for (int i = 0; i < 20; ++i)
        st->put("r/key" + std::to_string(i),
                "value-" + std::to_string(i));
    corruptKeyOnDisk(*st, "r/key7");

    Scrubber scrubber(st, ScrubConfig{});
    std::vector<std::string> reported;
    scrubber.setCorruptHandler(
        [&](const std::string &key, std::uint64_t) {
            reported.push_back(key);
        });
    const Scrubber::PassResult pass = scrubber.scrubOnce(true);

    EXPECT_EQ(pass.corrupt, 1u);
    EXPECT_EQ(pass.quarantined, 1u);
    // The handler hears the finding, and may hear the key again
    // when the pass re-announces standing marks — the repair queue
    // dedups, so both are the same repair request.
    ASSERT_GE(reported.size(), 1u);
    for (const std::string &key : reported)
        EXPECT_EQ(key, "r/key7");

    // The corrupt record is a miss now, never an error; the mark
    // persists and the rest of the data is untouched.
    std::string value;
    EXPECT_FALSE(st->get("r/key7", value));
    EXPECT_TRUE(
        st->get(PersistentStore::quarantineKey("r/key7"), value));
    EXPECT_TRUE(st->get("r/key8", value));
    EXPECT_EQ(value, "value-8");
    const StoreStats stats = st->stats();
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.quarantineLive, 1u);
}

TEST(Scrub, QuarantineSurvivesRestartAndIsReannounced)
{
    fosm::test::TempDir dir;
    {
        auto st = std::make_shared<PersistentStore>(
            smallConfig(dir.path()));
        st->put("r/gone", "payload");
        corruptKeyOnDisk(*st, "r/gone");
        Scrubber scrubber(st, ScrubConfig{});
        EXPECT_EQ(scrubber.scrubOnce(true).quarantined, 1u);
    }
    auto st = std::make_shared<PersistentStore>(
        smallConfig(dir.path()));
    EXPECT_EQ(st->stats().quarantineLive, 1u);

    // Every pass re-announces standing marks to the handler, so a
    // repair that could not run earlier gets retried.
    Scrubber scrubber(st, ScrubConfig{});
    std::vector<std::string> reported;
    scrubber.setCorruptHandler(
        [&](const std::string &key, std::uint64_t) {
            reported.push_back(key);
        });
    scrubber.scrubOnce(true);
    ASSERT_GE(reported.size(), 1u);
    for (const std::string &key : reported)
        EXPECT_EQ(key, "r/gone");
}

TEST(Scrub, RecommitClearsQuarantine)
{
    fosm::test::TempDir dir;
    auto st = std::make_shared<PersistentStore>(
        smallConfig(dir.path()));
    st->put("r/fix", "original");
    corruptKeyOnDisk(*st, "r/fix");
    Scrubber scrubber(st, ScrubConfig{});
    ASSERT_EQ(scrubber.scrubOnce(true).quarantined, 1u);

    // Re-committing the key IS the repair: mark cleared, value back.
    st->put("r/fix", "original");
    std::string value;
    EXPECT_TRUE(st->get("r/fix", value));
    EXPECT_EQ(value, "original");
    EXPECT_FALSE(
        st->get(PersistentStore::quarantineKey("r/fix"), value));
    EXPECT_EQ(st->stats().quarantineLive, 0u);
    EXPECT_EQ(scrubber.scrubOnce(true).corrupt, 0u);
}

TEST(Scrub, WatermarkSkipsCleanSegments)
{
    fosm::test::TempDir dir;
    auto st = std::make_shared<PersistentStore>(
        smallConfig(dir.path()));
    const std::string value(512, 'v');
    for (int i = 0; i < 64; ++i)
        st->put("r/key" + std::to_string(i), value);
    ASSERT_GT(st->stats().segments, 1u);

    Scrubber scrubber(st, ScrubConfig{});
    const Scrubber::PassResult first = scrubber.scrubOnce(false);
    EXPECT_EQ(first.records, 64u);

    // Nothing changed: every segment sits at its watermark and is
    // skipped without a byte read.
    const Scrubber::PassResult second = scrubber.scrubOnce(false);
    EXPECT_EQ(second.records, 0u);
    EXPECT_EQ(second.segments, 0u);
    EXPECT_EQ(second.skipped, first.segments + first.skipped);

    // A full pass ignores watermarks and rescans everything.
    const Scrubber::PassResult full = scrubber.scrubOnce(true);
    EXPECT_EQ(full.records, 64u);
    EXPECT_EQ(full.skipped, 0u);
}

TEST(Scrub, CorruptOnReadDegradesToMiss)
{
    fosm::test::TempDir dir;
    StoreConfig config = smallConfig(dir.path());
    config.verifyOnRead = true;
    auto st = std::make_shared<PersistentStore>(config);
    st->put("r/hot", "cached-response");
    corruptKeyOnDisk(*st, "r/hot");

    std::vector<std::string> hooked;
    st->setCorruptionHook(
        [&](const std::string &key, std::uint64_t) {
            hooked.push_back(key);
        });
    std::string value;
    EXPECT_FALSE(st->get("r/hot", value));
    EXPECT_EQ(st->stats().corruptReads, 1u);
    ASSERT_EQ(hooked.size(), 1u);
    EXPECT_EQ(hooked[0], "r/hot");
}

TEST(Scrub, ScrubConcurrentWithCompaction)
{
    fosm::test::TempDir dir;
    auto st = std::make_shared<PersistentStore>(
        smallConfig(dir.path()));
    Scrubber scrubber(st, ScrubConfig{});

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        const std::string value(256, 'w');
        int i = 0;
        while (!stop.load()) {
            st->put("r/churn" + std::to_string(i % 50), value);
            ++i;
        }
    });
    std::thread compactor([&] {
        while (!stop.load()) {
            st->compact();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });
    std::uint64_t scrubbedRecords = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(1000);
    while (std::chrono::steady_clock::now() < deadline)
        scrubbedRecords += scrubber.scrubOnce(true).records;
    stop.store(true);
    writer.join();
    compactor.join();

    EXPECT_GT(scrubbedRecords, 0u);
    // Uncorrupted data under churn must never be quarantined.
    EXPECT_EQ(st->stats().quarantined, 0u);
    std::string value;
    EXPECT_TRUE(st->get("r/churn0", value));
}

TEST(Scrub, FaultPointWritesCorruptRecord)
{
    fosm::test::TempDir dir;
    auto st = std::make_shared<PersistentStore>(
        smallConfig(dir.path()));
    std::string error;
    ASSERT_TRUE(FaultInjector::instance().configure(
        "store.corrupt=flip:1.0", 42, error))
        << error;
    st->put("r/flipped", "soon-to-be-garbage");
    FaultInjector::instance().reset();

    // The flip happens after checksumming: the record lands on disk
    // with a CRC that no longer matches — exactly latent media
    // corruption, which the scrubber then catches.
    std::uint64_t lsn = 0;
    EXPECT_EQ(st->verifyRecord("r/flipped", lsn),
              RecordCheck::Corrupt);
    Scrubber scrubber(st, ScrubConfig{});
    EXPECT_EQ(scrubber.scrubOnce(true).corrupt, 1u);
}

TEST(Scrub, OfflineVerifyCountsRecordLevelCorruption)
{
    fosm::test::TempDir dir;
    std::uint64_t segmentId = 0;
    ScrubEntry entry;
    {
        PersistentStore st(smallConfig(dir.path()));
        for (int i = 0; i < 5; ++i)
            st.put("r/v" + std::to_string(i), "payload");
        st.flush();
        ASSERT_TRUE(findEntry(st, "r/v2", segmentId, entry));
    }
    flipValueByte(dir.path(), segmentId, entry,
                  std::string("r/v2").size());

    // verify resynchronizes past the bad record: it reports the CRC
    // failure AND still sees the records after it, with the damaged
    // key named (its digest proves the key bytes are trustworthy).
    bool foundFailure = false;
    for (const SegmentReport &r : verifyDir(dir.path())) {
        if (r.id != segmentId) {
            EXPECT_TRUE(r.intact) << r.file;
            continue;
        }
        foundFailure = true;
        EXPECT_FALSE(r.intact);
        EXPECT_FALSE(r.structural);
        EXPECT_EQ(r.crcFailures, 1u);
        ASSERT_EQ(r.corruptKeys.size(), 1u);
        EXPECT_EQ(r.corruptKeys[0], "r/v2");
        EXPECT_EQ(r.records, 4u);
    }
    EXPECT_TRUE(foundFailure);
}

} // namespace
} // namespace fosm::store
