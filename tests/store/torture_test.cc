/**
 * @file
 * Crash-recovery torture test. Each iteration builds a store, then
 * simulates a kill at a random offset — truncating the file there or
 * flipping a random bit (a torn sector) — and asserts the reopened
 * store contains EXACTLY the replay of the intact record prefix:
 * every record before the corruption point is served, everything
 * from it on is gone, and nothing fails open. Every fourth iteration
 * instead simulates a crash at a mid-compaction kill point: either
 * before the atomic rename (a leftover .tmp file) or after it but
 * before the old segments are unlinked (duplicate records under the
 * same LSNs) — both must recover to the full, uncorrupted contents.
 *
 * The test parses segment files with its own minimal reader, which
 * doubles as a pin on the on-disk format (docs/STORE.md): header 16
 * bytes ("FOSMSEG1" + version), record = 32-byte header (crc,
 * keyLen, valueLen, flags, lsn, keyHash) + key + value.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "store/store.hh"
#include "store_test_util.hh"

namespace fosm::store {
namespace {

using test::TempDir;

std::uint32_t
u32At(const std::string &b, std::size_t off)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(b[off + i]))
             << (8 * i);
    return v;
}

std::uint64_t
u64At(const std::string &b, std::size_t off)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(b[off + i]))
             << (8 * i);
    return v;
}

constexpr std::size_t headerSize = 16;
constexpr std::size_t recHeaderSize = 32;

struct ParsedRecord
{
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint64_t lsn = 0;
    bool tombstone = false;
    std::string key;
    std::string value;
};

/** Independent reader for intact segment files (format pin). */
std::vector<ParsedRecord>
parseSegment(const std::string &bytes)
{
    std::vector<ParsedRecord> records;
    if (bytes.size() < headerSize ||
        bytes.compare(0, 8, "FOSMSEG1") != 0)
        return records;
    EXPECT_EQ(u32At(bytes, 8), 1u) << "format version";
    std::size_t off = headerSize;
    while (off + recHeaderSize <= bytes.size()) {
        const std::uint32_t keyLen = u32At(bytes, off + 4);
        const std::uint32_t valueLen = u32At(bytes, off + 8);
        const std::uint64_t len = recHeaderSize + keyLen + valueLen;
        if (off + len > bytes.size())
            break;
        ParsedRecord r;
        r.offset = off;
        r.length = len;
        r.lsn = u64At(bytes, off + 16);
        r.tombstone = (u32At(bytes, off + 12) & 1u) != 0;
        r.key = bytes.substr(off + recHeaderSize, keyLen);
        r.value = bytes.substr(off + recHeaderSize + keyLen,
                               valueLen);
        records.push_back(std::move(r));
        off += len;
    }
    EXPECT_EQ(off, bytes.size()) << "intact segment has no tail";
    return records;
}

/** The newest-LSN-wins replay the store is required to perform. */
std::map<std::string, std::string>
replay(const std::vector<std::vector<ParsedRecord>> &segments)
{
    std::map<std::string,
             std::pair<std::uint64_t, std::optional<std::string>>>
        state;
    for (const auto &records : segments) {
        for (const ParsedRecord &r : records) {
            auto [it, inserted] = state.try_emplace(
                r.key, 0, std::nullopt);
            if (inserted || r.lsn > it->second.first) {
                it->second.first = r.lsn;
                it->second.second =
                    r.tombstone
                        ? std::nullopt
                        : std::optional<std::string>(r.value);
            }
        }
    }
    std::map<std::string, std::string> live;
    for (const auto &[key, entry] : state)
        if (entry.second)
            live.emplace(key, *entry.second);
    return live;
}

StoreConfig
tortureConfig(const std::string &dir)
{
    StoreConfig config;
    config.dir = dir;
    config.maxSegmentBytes = 512; // force several segments
    config.backgroundCompaction = false;
    return config;
}

/** All keys ever written in one iteration's workload. */
std::vector<std::string>
workloadKeys()
{
    std::vector<std::string> keys;
    for (int i = 0; i < 12; ++i)
        keys.push_back("key-" + std::to_string(i));
    return keys;
}

void
runWorkload(PersistentStore &store, std::mt19937_64 &rng)
{
    const std::vector<std::string> keys = workloadKeys();
    const int ops = 20 + static_cast<int>(rng() % 40);
    for (int i = 0; i < ops; ++i) {
        const std::string &key = keys[rng() % keys.size()];
        if (rng() % 5 == 0) {
            store.remove(key);
        } else {
            const std::size_t len = 5 + rng() % 120;
            store.put(key,
                      "v" + std::to_string(i) + "-" +
                          std::string(len, static_cast<char>(
                                               'a' + rng() % 26)));
        }
    }
}

void
expectExactly(PersistentStore &store,
              const std::map<std::string, std::string> &expected)
{
    std::string v;
    for (const auto &[key, value] : expected) {
        ASSERT_TRUE(store.get(key, v)) << "lost intact key " << key;
        EXPECT_EQ(v, value) << "wrong value for " << key;
    }
    for (const std::string &key : workloadKeys()) {
        if (expected.count(key) == 0) {
            EXPECT_FALSE(store.get(key, v))
                << "served dropped/deleted key " << key;
        }
    }
    EXPECT_EQ(store.stats().liveRecords, expected.size());
}

TEST(StoreTorture, KillAtRandomOffsetRecoversIntactPrefix)
{
    std::mt19937_64 rng(20260806);
    for (int iteration = 0; iteration < 100; ++iteration) {
        SCOPED_TRACE("iteration " + std::to_string(iteration));
        TempDir dir;
        {
            PersistentStore store(tortureConfig(dir.path()));
            runWorkload(store, rng);
            if (iteration % 4 == 3)
                store.compact(); // corrupt a post-compaction layout
        }

        // Parse every segment before corrupting anything.
        std::vector<std::string> segFiles;
        for (const std::string &name : dir.list())
            if (name.size() == 20 && name.substr(16) == ".seg")
                segFiles.push_back(name);
        ASSERT_FALSE(segFiles.empty());
        std::vector<std::vector<ParsedRecord>> parsed;
        for (const std::string &name : segFiles)
            parsed.push_back(parseSegment(
                test::readFile(dir.path() + "/" + name)));

        const int kind = iteration % 4;
        if (kind == 0 || kind == 1) {
            // Kill at a random offset in a random segment: truncate
            // there (torn append) or flip one bit (torn sector).
            const std::size_t target = rng() % segFiles.size();
            const std::string path =
                dir.path() + "/" + segFiles[target];
            std::string bytes = test::readFile(path);
            ASSERT_GE(bytes.size(), headerSize);
            const std::size_t point = rng() % bytes.size();

            // Records at/after the first affected one are dropped.
            std::vector<ParsedRecord> &records = parsed[target];
            if (point < headerSize) {
                records.clear(); // header torn: whole file is reset
            } else {
                std::size_t keep = 0;
                if (kind == 0) {
                    // Truncation at `point` keeps records that end
                    // at or before it.
                    while (keep < records.size() &&
                           records[keep].offset +
                                   records[keep].length <=
                               point)
                        ++keep;
                } else {
                    // A flipped bit kills the record containing it.
                    while (keep < records.size() &&
                           records[keep].offset +
                                   records[keep].length <=
                               point)
                        ++keep;
                    // point inside records[keep] (or past the last
                    // record, which cannot happen in an intact file).
                }
                records.resize(keep);
            }

            if (kind == 0)
                bytes.resize(point);
            else
                bytes[point] = static_cast<char>(
                    bytes[point] ^ (1 << (rng() % 8)));
            test::writeFile(path, bytes);
        } else if (kind == 2) {
            // Mid-compaction kill point A: died before the rename.
            // The half-written temp file must be ignored and removed.
            std::string garbage(
                64 + rng() % 512, static_cast<char>(rng() % 256));
            test::writeFile(dir.path() + "/compact-999.tmp",
                            garbage);
        } else {
            // Mid-compaction kill point B: died after the rename but
            // before unlinking the inputs — a fully duplicated
            // segment under a fresh id. LSN-max replay must make the
            // duplicates invisible.
            const std::size_t target = rng() % segFiles.size();
            test::writeFile(dir.path() + "/9999999999999999.seg",
                            test::readFile(dir.path() + "/" +
                                           segFiles[target]));
        }

        const std::map<std::string, std::string> expected =
            replay(parsed);
        {
            PersistentStore store(tortureConfig(dir.path()));
            expectExactly(store, expected);
            if (kind == 2) {
                // The temp file is gone after open.
                for (const std::string &name : dir.list())
                    EXPECT_EQ(name.find(".tmp"), std::string::npos);
            }
        }
        // Recovery repaired the files: a second open is clean and
        // serves the same data.
        {
            PersistentStore store(tortureConfig(dir.path()));
            EXPECT_EQ(store.stats().truncatedTails, 0u);
            expectExactly(store, expected);
        }
    }
}

} // namespace
} // namespace fosm::store
