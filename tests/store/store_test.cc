/**
 * @file
 * PersistentStore unit tests: the basic contract (put/get/remove,
 * persistence across reopen, newest-write-wins), segment rotation,
 * compaction (space reclaim + correctness), binary-safe keys and
 * values, verifyDir, and a reader/writer/compactor stress test that
 * the TSAN CI job runs for data races.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/codec.hh"
#include "store/store.hh"
#include "store_test_util.hh"

namespace fosm::store {
namespace {

using test::TempDir;

StoreConfig
smallConfig(const std::string &dir, std::size_t segmentBytes = 4096)
{
    StoreConfig config;
    config.dir = dir;
    config.maxSegmentBytes = segmentBytes;
    // Unit tests drive compaction explicitly.
    config.backgroundCompaction = false;
    config.compactMinDeadBytes = 0;
    return config;
}

TEST(Store, PutGetAcrossReopen)
{
    TempDir dir;
    {
        PersistentStore store(smallConfig(dir.path()));
        store.put("alpha", "1.06");
        store.put("beta", "0.36");
        std::string v;
        ASSERT_TRUE(store.get("alpha", v));
        EXPECT_EQ(v, "1.06");
        EXPECT_FALSE(store.get("gamma", v));
    }
    PersistentStore reopened(smallConfig(dir.path()));
    std::string v;
    ASSERT_TRUE(reopened.get("alpha", v));
    EXPECT_EQ(v, "1.06");
    ASSERT_TRUE(reopened.get("beta", v));
    EXPECT_EQ(v, "0.36");
    EXPECT_EQ(reopened.stats().liveRecords, 2u);
    EXPECT_EQ(reopened.stats().truncatedTails, 0u);
}

TEST(Store, NewestWriteWinsAcrossReopen)
{
    TempDir dir;
    {
        PersistentStore store(smallConfig(dir.path()));
        for (int i = 0; i < 10; ++i)
            store.put("key", "value-" + std::to_string(i));
    }
    PersistentStore reopened(smallConfig(dir.path()));
    std::string v;
    ASSERT_TRUE(reopened.get("key", v));
    EXPECT_EQ(v, "value-9");
    EXPECT_EQ(reopened.stats().liveRecords, 1u);
    EXPECT_EQ(reopened.stats().deadRecords, 9u);
}

TEST(Store, RemoveTombstonesAcrossReopen)
{
    TempDir dir;
    {
        PersistentStore store(smallConfig(dir.path()));
        store.put("keep", "a");
        store.put("drop", "b");
        store.remove("drop");
        std::string v;
        EXPECT_FALSE(store.get("drop", v));
        // Removing an absent key appends nothing.
        const std::uint64_t before = store.stats().appends;
        store.remove("never-existed");
        EXPECT_EQ(store.stats().appends, before);
    }
    PersistentStore reopened(smallConfig(dir.path()));
    std::string v;
    EXPECT_FALSE(reopened.get("drop", v));
    ASSERT_TRUE(reopened.get("keep", v));
    EXPECT_EQ(v, "a");
}

TEST(Store, BinarySafeKeysAndValues)
{
    TempDir dir;
    const std::string key("k\0ey\xff\n", 6);
    std::string value;
    value.push_back('\0');
    value += "binary";
    value.push_back('\0');
    {
        PersistentStore store(smallConfig(dir.path()));
        store.put(key, value);
        store.put("empty", "");
    }
    PersistentStore reopened(smallConfig(dir.path()));
    std::string v;
    ASSERT_TRUE(reopened.get(key, v));
    EXPECT_EQ(v, value);
    ASSERT_TRUE(reopened.get("empty", v));
    EXPECT_EQ(v, "");
}

TEST(Store, RotatesSegmentsAndReadsAllOfThem)
{
    TempDir dir;
    const int n = 200;
    {
        PersistentStore store(smallConfig(dir.path(), 1024));
        for (int i = 0; i < n; ++i)
            store.put("key-" + std::to_string(i),
                      std::string(64, static_cast<char>('a' + i % 26)));
        EXPECT_GT(store.stats().segments, 3u);
        std::string v;
        for (int i = 0; i < n; ++i) {
            ASSERT_TRUE(store.get("key-" + std::to_string(i), v));
            EXPECT_EQ(v[0], static_cast<char>('a' + i % 26));
        }
    }
    PersistentStore reopened(smallConfig(dir.path(), 1024));
    std::string v;
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(reopened.get("key-" + std::to_string(i), v));
}

TEST(Store, CompactionReclaimsDeadSpaceAndPreservesData)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path(), 1024));
    for (int round = 0; round < 20; ++round)
        for (int i = 0; i < 20; ++i)
            store.put("key-" + std::to_string(i),
                      "round-" + std::to_string(round));
    const StoreStats before = store.stats();
    ASSERT_GT(before.deadBytes, 0u);

    store.compact();

    const StoreStats after = store.stats();
    EXPECT_EQ(after.compactions, 1u);
    EXPECT_EQ(after.liveRecords, 20u);
    EXPECT_LT(after.totalBytes, before.totalBytes);
    EXPECT_LT(after.deadBytes, before.deadBytes);
    std::string v;
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(store.get("key-" + std::to_string(i), v));
        EXPECT_EQ(v, "round-19");
    }

    // And the compacted layout must reopen cleanly.
    // (The active segment keeps its records through compaction.)
    store.flush();
}

TEST(Store, CompactionSurvivesReopen)
{
    TempDir dir;
    {
        PersistentStore store(smallConfig(dir.path(), 512));
        for (int round = 0; round < 10; ++round)
            for (int i = 0; i < 10; ++i)
                store.put("k" + std::to_string(i),
                          "r" + std::to_string(round) + "-" +
                              std::string(32, 'x'));
        store.remove("k0");
        store.compact();
    }
    PersistentStore reopened(smallConfig(dir.path(), 512));
    std::string v;
    EXPECT_FALSE(reopened.get("k0", v));
    for (int i = 1; i < 10; ++i) {
        ASSERT_TRUE(reopened.get("k" + std::to_string(i), v));
        EXPECT_EQ(v.substr(0, 3), "r9-");
    }
    EXPECT_EQ(reopened.stats().truncatedTails, 0u);
}

TEST(Store, ForEachLiveVisitsEveryKeyOnce)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path()));
    store.put("b", "2");
    store.put("a", "1");
    store.put("c", "3");
    store.remove("c");
    std::vector<std::string> seen;
    store.forEachLive([&](const std::string &key,
                          const std::string &value, std::uint64_t) {
        seen.push_back(key + "=" + value);
    });
    EXPECT_EQ(seen, (std::vector<std::string>{"a=1", "b=2"}));
}

TEST(Store, VerifyDirReportsIntactSegments)
{
    TempDir dir;
    {
        PersistentStore store(smallConfig(dir.path(), 1024));
        for (int i = 0; i < 50; ++i)
            store.put("key-" + std::to_string(i),
                      std::string(40, 'v'));
    }
    const std::vector<SegmentReport> reports =
        verifyDir(dir.path());
    ASSERT_GT(reports.size(), 1u);
    std::uint64_t records = 0;
    for (const SegmentReport &r : reports) {
        EXPECT_TRUE(r.intact) << r.file << ": " << r.error;
        records += r.records;
    }
    EXPECT_EQ(records, 50u);
}

TEST(Store, StatsCountGetsAndHits)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path()));
    store.put("present", "x");
    std::string v;
    store.get("present", v);
    store.get("absent", v);
    const StoreStats s = store.stats();
    EXPECT_EQ(s.gets, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.appends, 1u);
}

// -- Per-segment LSN watermarks and collectSince (replication) -----

TEST(StoreRepl, SegmentLsnSpansCoverEveryAppendAndSurviveReopen)
{
    TempDir dir;
    const int n = 100;
    {
        PersistentStore store(smallConfig(dir.path(), 1024));
        for (int i = 0; i < n; ++i)
            store.put("key-" + std::to_string(i),
                      std::string(48, 'v'));
        EXPECT_EQ(store.maxLsn(), static_cast<std::uint64_t>(n));
        EXPECT_EQ(store.stats().maxLsn,
                  static_cast<std::uint64_t>(n));
    }
    PersistentStore reopened(smallConfig(dir.path(), 1024));
    const std::vector<SegmentLsnInfo> segs =
        reopened.segmentLsns();
    ASSERT_GT(segs.size(), 1u);
    // Append-only log: spans are disjoint, ascending, and their
    // union covers LSNs 1..n with no gaps.
    std::uint64_t expectNext = 1;
    for (const SegmentLsnInfo &seg : segs) {
        if (seg.records == 0)
            continue; // a fresh active segment has no span yet
        EXPECT_EQ(seg.minLsn, expectNext);
        EXPECT_GE(seg.maxLsn, seg.minLsn);
        EXPECT_EQ(seg.maxLsn - seg.minLsn + 1, seg.records);
        expectNext = seg.maxLsn + 1;
    }
    EXPECT_EQ(expectNext, static_cast<std::uint64_t>(n) + 1);
    EXPECT_EQ(reopened.maxLsn(), static_cast<std::uint64_t>(n));
}

TEST(StoreRepl, CompactionPreservesLsnsAndWatermarks)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path(), 1024));
    for (int round = 0; round < 10; ++round)
        for (int i = 0; i < 10; ++i)
            store.put("key-" + std::to_string(i),
                      "round-" + std::to_string(round));
    const std::uint64_t head = store.maxLsn();
    store.compact();
    // LSN-preserving compaction: live records keep their original
    // LSNs, so replica watermarks stay valid across a compaction.
    EXPECT_EQ(store.maxLsn(), head);
    std::uint64_t minSeen = 0, maxSeen = 0;
    store.forEachLiveKey(
        [&](const std::string &, std::uint64_t lsn) {
            if (minSeen == 0 || lsn < minSeen)
                minSeen = lsn;
            maxSeen = std::max(maxSeen, lsn);
        });
    // The live records are the last round's ten appends.
    EXPECT_EQ(maxSeen, head);
    EXPECT_EQ(minSeen, head - 9);
    // Every live LSN is still covered by some segment span (the
    // anti-entropy fast path consults the spans to decide whether a
    // segment can hold anything above a replica's watermark).
    const std::vector<SegmentLsnInfo> segs = store.segmentLsns();
    store.forEachLiveKey(
        [&](const std::string &key, std::uint64_t lsn) {
            bool covered = false;
            for (const SegmentLsnInfo &seg : segs)
                covered |= seg.records > 0 && seg.minLsn <= lsn &&
                           lsn <= seg.maxLsn;
            EXPECT_TRUE(covered) << key << " lsn " << lsn;
        });
}

TEST(StoreRepl, CollectSinceReturnsExactlyTheNewerLiveEntries)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path()));
    for (int i = 0; i < 10; ++i)
        store.put("key-" + std::to_string(i),
                  "value-" + std::to_string(i)); // LSNs 1..10
    bool more = true;
    const auto entries = store.collectSince(
        5, 1000, 1 << 20,
        [](const std::string &) { return true; }, more);
    EXPECT_FALSE(more);
    ASSERT_EQ(entries.size(), 5u);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].lsn, 6 + i); // ascending by LSN
        EXPECT_EQ(entries[i].key, "key-" + std::to_string(5 + i));
        EXPECT_EQ(entries[i].value,
                  "value-" + std::to_string(5 + i));
    }

    // Overwritten versions are gone: only the live LSN shows up.
    store.put("key-0", "rewritten"); // LSN 11
    const auto all = store.collectSince(
        0, 1000, 1 << 20,
        [](const std::string &) { return true; }, more);
    ASSERT_EQ(all.size(), 10u);
    EXPECT_EQ(all.back().key, "key-0");
    EXPECT_EQ(all.back().lsn, 11u);
    EXPECT_EQ(all.front().lsn, 2u);
}

TEST(StoreRepl, CollectSinceHonorsFilterAndCapsWithMore)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path()));
    for (int i = 0; i < 30; ++i)
        store.put((i % 2 ? "keep-" : "drop-") + std::to_string(i),
                  "v");
    bool more = false;
    // The filter sees the key; caps bound one response batch.
    auto page = store.collectSince(
        0, 5, 1 << 20,
        [](const std::string &key) {
            return key.rfind("keep-", 0) == 0;
        },
        more);
    ASSERT_EQ(page.size(), 5u);
    EXPECT_TRUE(more);
    // Resume from the page's last LSN: no overlap, no gap.
    const std::uint64_t resume = page.back().lsn;
    page = store.collectSince(
        resume, 1000, 1 << 20,
        [](const std::string &key) {
            return key.rfind("keep-", 0) == 0;
        },
        more);
    EXPECT_FALSE(more);
    EXPECT_EQ(page.size(), 10u); // 15 keep keys total, 5 served
    for (const LiveEntry &e : page)
        EXPECT_GT(e.lsn, resume);
}

TEST(StoreRepl, CollectSinceFastPathWhenCaughtUp)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path(), 1024));
    for (int i = 0; i < 50; ++i)
        store.put("key-" + std::to_string(i),
                  std::string(40, 'v'));
    bool more = true;
    // A caught-up replica's sweep: every segment watermark is at or
    // below `since`, so the scan returns without touching records.
    const auto entries = store.collectSince(
        store.maxLsn(), 1000, 1 << 20,
        [](const std::string &) { return true; }, more);
    EXPECT_TRUE(entries.empty());
    EXPECT_FALSE(more);
}

TEST(StoreRepl, CommitHookSeesEveryPutWithMonotonicLsns)
{
    TempDir dir;
    PersistentStore store(smallConfig(dir.path()));
    std::vector<std::pair<std::string, std::uint64_t>> seen;
    store.setCommitHook([&](const std::string &key,
                            std::string_view,
                            std::uint64_t lsn) {
        seen.emplace_back(key, lsn);
    });
    store.put("a", "1");
    store.put("b", "2");
    store.put("a", "3");
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].first, "a");
    EXPECT_LT(seen[0].second, seen[1].second);
    EXPECT_LT(seen[1].second, seen[2].second);
    store.setCommitHook(nullptr);
    store.put("c", "4");
    EXPECT_EQ(seen.size(), 3u);
}

// The TSAN job runs this: concurrent readers, a writer, and explicit
// compactions must not race. Correctness: every read observes some
// value the writer actually wrote for that key.
TEST(Store, ConcurrentReadWriteCompact)
{
    TempDir dir;
    StoreConfig config = smallConfig(dir.path(), 2048);
    PersistentStore store(config);
    constexpr int keys = 16;
    for (int i = 0; i < keys; ++i)
        store.put("key-" + std::to_string(i), "v0");

    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (int round = 1; round < 60; ++round)
            for (int i = 0; i < keys; ++i)
                store.put("key-" + std::to_string(i),
                          "v" + std::to_string(round) +
                              std::string(24, 'p'));
        stop.store(true);
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            std::string v;
            while (!stop.load()) {
                for (int i = 0; i < keys; ++i) {
                    ASSERT_TRUE(
                        store.get("key-" + std::to_string(i), v));
                    ASSERT_FALSE(v.empty());
                    ASSERT_EQ(v[0], 'v');
                }
                // Back off between sweeps: glibc's rwlock prefers
                // readers, and three spinning readers would starve
                // the writer (real callers compute between gets).
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            }
        });
    }
    std::thread compactor([&] {
        while (!stop.load()) {
            store.compact();
            // Each compaction fsyncs; back-to-back runs would make
            // this test fsync-bound (and crawl under TSAN).
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });
    writer.join();
    compactor.join();
    for (std::thread &t : readers)
        t.join();

    std::string v;
    for (int i = 0; i < keys; ++i) {
        ASSERT_TRUE(store.get("key-" + std::to_string(i), v));
        EXPECT_EQ(v.substr(0, 4), "v59p");
    }
}

TEST(StoreCodec, RoundTripsEveryFieldKind)
{
    Encoder enc;
    enc.u32(0xDEADBEEFu);
    enc.u64(0x0123456789ABCDEFull);
    enc.f64(1.0625e-3);
    enc.bytes(std::string_view("payload\0with-nul", 16));
    enc.u32Vector({1, 2, 3});
    enc.f64Vector({0.5, -2.25});

    Decoder dec(enc.str());
    std::uint32_t a;
    std::uint64_t b;
    double c;
    std::string d;
    std::vector<std::uint32_t> e;
    std::vector<double> f;
    ASSERT_TRUE(dec.u32(a));
    ASSERT_TRUE(dec.u64(b));
    ASSERT_TRUE(dec.f64(c));
    ASSERT_TRUE(dec.bytes(d));
    ASSERT_TRUE(dec.u32Vector(e));
    ASSERT_TRUE(dec.f64Vector(f));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(a, 0xDEADBEEFu);
    EXPECT_EQ(b, 0x0123456789ABCDEFull);
    EXPECT_EQ(c, 1.0625e-3);
    EXPECT_EQ(d, std::string("payload\0with-nul", 16));
    EXPECT_EQ(e, (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_EQ(f, (std::vector<double>{0.5, -2.25}));
}

TEST(StoreCodec, TruncatedInputFailsCleanly)
{
    Encoder enc;
    enc.u64(7);
    enc.bytes("hello");
    const std::string full = enc.str();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        // The Decoder only borrows its input; the view must outlive
        // it (a substr temporary here is a use-after-scope).
        const std::string prefix = full.substr(0, cut);
        Decoder dec(prefix);
        std::uint64_t a;
        std::string b;
        const bool complete = dec.u64(a) && dec.bytes(b);
        EXPECT_FALSE(complete) << "cut at " << cut;
        EXPECT_FALSE(dec.atEnd());
    }
}

TEST(StoreCodec, CorruptLengthDoesNotAllocate)
{
    Encoder enc;
    enc.u64(~0ull); // absurd element count
    Decoder dec(enc.str());
    std::vector<std::uint32_t> v;
    EXPECT_FALSE(dec.u32Vector(v));
    EXPECT_FALSE(dec.ok());
}

} // namespace
} // namespace fosm::store
