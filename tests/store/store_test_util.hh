/**
 * @file
 * Filesystem scaffolding for the store tests: a self-deleting
 * temporary directory and raw file helpers the torture test uses to
 * inflict precise corruption.
 */

#ifndef FOSM_TESTS_STORE_STORE_TEST_UTIL_HH
#define FOSM_TESTS_STORE_STORE_TEST_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fosm::test {

/** mkdtemp() wrapper that removes the tree on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        char buf[] = "/tmp/fosm-store-test-XXXXXX";
        path_ = ::mkdtemp(buf);
    }

    ~TempDir() { removeAll(); }

    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    const std::string &path() const { return path_; }

    /** Delete every file inside (the store layout is flat). */
    void
    removeAll()
    {
        if (path_.empty())
            return;
        for (const std::string &f : list())
            ::unlink((path_ + "/" + f).c_str());
        ::rmdir(path_.c_str());
        path_.clear();
    }

    /** File names inside the directory, sorted. */
    std::vector<std::string>
    list() const
    {
        std::vector<std::string> names;
        DIR *d = ::opendir(path_.c_str());
        if (!d)
            return names;
        while (const dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                names.push_back(name);
        }
        ::closedir(d);
        std::sort(names.begin(), names.end());
        return names;
    }

  private:
    std::string path_;
};

inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

inline void
writeFile(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size()));
}

} // namespace fosm::test

#endif // FOSM_TESTS_STORE_STORE_TEST_UTIL_HH
