/**
 * @file
 * CRC32C vectors (RFC 3720 / iSCSI) and incremental-update checks.
 * The store's recovery semantics hinge entirely on this checksum
 * rejecting corruption, so the polynomial must be pinned to the
 * standard — these vectors fail for plain CRC32 (zlib) or any
 * table-generation slip.
 */

#include <gtest/gtest.h>

#include <string>

#include "store/crc32c.hh"

namespace fosm::store {
namespace {

TEST(Crc32c, StandardVectors)
{
    // The canonical check value for CRC32C.
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
    // RFC 3720 B.4 test patterns.
    EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
    EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32c, EmptyIsZero)
{
    EXPECT_EQ(crc32c(std::string_view{}), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot)
{
    const std::string data =
        "the quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= data.size(); ++split) {
        const std::uint32_t first =
            crc32c(data.data(), split);
        const std::uint32_t both = crc32c(
            data.data() + split, data.size() - split, first);
        EXPECT_EQ(both, crc32c(data)) << "split at " << split;
    }
}

TEST(Crc32c, DetectsSingleBitFlips)
{
    std::string data = "persistent result store";
    const std::uint32_t good = crc32c(data);
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            data[byte] ^= static_cast<char>(1 << bit);
            EXPECT_NE(crc32c(data), good);
            data[byte] ^= static_cast<char>(1 << bit);
        }
    }
}

} // namespace
} // namespace fosm::store
