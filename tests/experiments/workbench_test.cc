/** @file Tests for the shared experiment harness. */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "experiments/workbench.hh"

namespace fosm {
namespace {

TEST(Workbench, BaselineMachineMatchesPaper)
{
    const MachineConfig m = Workbench::baselineMachine();
    EXPECT_EQ(m.width, 4u);
    EXPECT_EQ(m.frontEndDepth, 5u);
    EXPECT_EQ(m.windowSize, 48u);
    EXPECT_EQ(m.robSize, 128u);
    EXPECT_EQ(m.deltaI, 8u);
    EXPECT_EQ(m.deltaD, 200u);
    EXPECT_EQ(m.clusters, 1u);
}

TEST(Workbench, SimConfigSyncsMissDelays)
{
    const SimConfig c = Workbench::baselineSimConfig();
    EXPECT_EQ(c.machine.deltaI, c.hierarchy.l2Latency);
    EXPECT_EQ(c.machine.deltaD, c.hierarchy.memLatency);
    EXPECT_EQ(c.predictor, PredictorKind::GShare);
    EXPECT_EQ(c.predictorEntries, 8192u);
    EXPECT_FALSE(c.dtlb.enabled);
    EXPECT_FALSE(c.fuPools.anyLimited());
}

TEST(Workbench, TwelveBenchmarks)
{
    EXPECT_EQ(Workbench::benchmarks().size(), 12u);
}

TEST(Workbench, WorkloadCachedAcrossCalls)
{
    Workbench wb;
    const WorkloadData &a = wb.workload("eon");
    const WorkloadData &b = wb.workload("eon");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.trace.size(), wb.traceInstructions());
    EXPECT_EQ(a.profile->name, "eon");
}

TEST(Workbench, WorkloadDataConsistent)
{
    Workbench wb;
    const WorkloadData &data = wb.workload("gap");
    EXPECT_EQ(data.missProfile.instructions, data.trace.size());
    EXPECT_EQ(data.iwPoints.size(), 5u);
    EXPECT_GT(data.iw.alpha(), 0.5);
    EXPECT_GT(data.iw.beta(), 0.1);
    EXPECT_LT(data.iw.beta(), 1.0);
    EXPECT_NEAR(data.iw.avgLatency(), data.missProfile.avgLatency,
                1e-12);
    EXPECT_EQ(data.iw.issueWidth(), 4u);
}

TEST(Workbench, UnknownBenchmarkFatal)
{
    Workbench wb;
    EXPECT_EXIT(wb.workload("quake"), ::testing::ExitedWithCode(1),
                "unknown workload profile");
}

TEST(Workbench, ConcurrentWorkloadCallsBuildOnce)
{
    // Many threads racing on the same names must all get the same
    // cached entry (each workload is built exactly once).
    Workbench wb;
    const std::vector<std::string> &names = Workbench::benchmarks();
    std::vector<std::vector<const WorkloadData *>> seen(
        4, std::vector<const WorkloadData *>(names.size(), nullptr));
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < names.size(); ++i) {
                // Stagger the order so the threads collide on
                // different names at different times.
                const std::size_t j = (i + t * 3) % names.size();
                seen[t][j] = &wb.workload(names[j]);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t t = 1; t < seen.size(); ++t)
            EXPECT_EQ(seen[t][i], seen[0][i]) << names[i];
    }
}

TEST(Workbench, ConcurrentBuildMatchesSerial)
{
    // A Workbench populated by concurrent workload() calls must hold
    // data identical to one built serially.
    Workbench concurrent;
    concurrent.buildAll();
    Workbench serial;
    for (const std::string &name : Workbench::benchmarks()) {
        const WorkloadData &c = concurrent.workload(name);
        const WorkloadData &s = serial.workload(name);
        EXPECT_EQ(c.trace.size(), s.trace.size()) << name;
        EXPECT_EQ(c.missProfile.mispredictions,
                  s.missProfile.mispredictions)
            << name;
        EXPECT_EQ(c.missProfile.longLoadMisses,
                  s.missProfile.longLoadMisses)
            << name;
        EXPECT_EQ(c.missProfile.avgLatency, s.missProfile.avgLatency)
            << name;
        ASSERT_EQ(c.iwPoints.size(), s.iwPoints.size()) << name;
        for (std::size_t p = 0; p < c.iwPoints.size(); ++p) {
            EXPECT_EQ(c.iwPoints[p].windowSize,
                      s.iwPoints[p].windowSize)
                << name;
            EXPECT_EQ(c.iwPoints[p].ipc, s.iwPoints[p].ipc) << name;
        }
        EXPECT_EQ(c.iw.alpha(), s.iw.alpha()) << name;
        EXPECT_EQ(c.iw.beta(), s.iw.beta()) << name;
    }
}

TEST(RelativeError, Basics)
{
    EXPECT_NEAR(relativeError(1.1, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(relativeError(0.9, 1.0), 0.1, 1e-12);
    EXPECT_EQ(relativeError(0.0, 0.0), 0.0);
    EXPECT_EQ(relativeError(1.0, 0.0), 1.0);
}

TEST(Workbench, FitIwWrapsFromPoints)
{
    std::vector<IwPoint> points;
    for (std::uint32_t w : {4u, 8u, 16u, 32u})
        points.push_back({w, 1.4 * std::pow(w, 0.55)});
    const IWCharacteristic iw = Workbench::fitIw(points, 1.3, 8);
    EXPECT_NEAR(iw.alpha(), 1.4, 1e-6);
    EXPECT_NEAR(iw.beta(), 0.55, 1e-9);
    EXPECT_EQ(iw.issueWidth(), 8u);
}

} // namespace
} // namespace fosm
