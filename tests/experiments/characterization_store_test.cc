/**
 * @file
 * CharacterizationStore tests: the binary codec round-trips every
 * MissProfile field exactly (doubles by bit image), damaged input is
 * rejected rather than half-decoded, keys pin the schema/format
 * versions and trace digest, and a Workbench reopened over the same
 * store reloads its characterization instead of rebuilding it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "experiments/characterization_store.hh"
#include "experiments/workbench.hh"

#include "../store/store_test_util.hh"

namespace fosm {
namespace {

/** A characterization exercising every encoded field, including
 *  histogram overflow and non-round doubles. */
Characterization
sampleCharacterization()
{
    Characterization c;
    MissProfile &p = c.missProfile;
    p.instructions = 200000;
    for (std::size_t i = 0; i < numInstClasses; ++i)
        p.mix.fraction[i] = 0.1 + 0.01 * static_cast<double>(i);
    p.branches = 40000;
    p.mispredictions = 1700;
    p.mispredictGap.add(3);
    p.mispredictGap.add(17, 2);
    p.mispredictGap.add(900);
    p.mispredictGap.add(99999, 2); // lands in the overflow bucket
    p.icacheL1Misses = 812;
    p.icacheL2Misses = 77;
    p.icacheMissGap.add(250);
    p.icacheMissGap.add(4096);
    p.loads = 52000;
    p.stores = 31000;
    p.shortLoadMisses = 1500;
    p.longLoadMisses = 310;
    p.storeMisses = 120;
    p.ldmGaps = {1, 2, 3, 640, 65535};
    p.dtlbLoadMisses = 44;
    p.dtlbStoreMisses = 11;
    p.dtlbGaps = {10, 20, 30};
    p.avgLatency = 4.0 / 3.0;
    c.iwPoints = {{4, 1.125},
                  {8, 1.9},
                  {16, 2.75},
                  {32, 3.0000000000000004},
                  {64, 3.25}};
    return c;
}

void
expectHistogramEq(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.counts(), b.counts());
    EXPECT_EQ(a.samples(), b.samples());
    EXPECT_EQ(a.overflow(), b.overflow());
    // Bit-equal, not approximately equal: the weighted sum is stored
    // verbatim so mean() reproduces the original FP result exactly.
    EXPECT_EQ(a.weightedSum(), b.weightedSum());
    EXPECT_EQ(a.mean(), b.mean());
}

void
expectCharacterizationEq(const Characterization &a,
                         const Characterization &b)
{
    const MissProfile &p = a.missProfile;
    const MissProfile &q = b.missProfile;
    EXPECT_EQ(p.instructions, q.instructions);
    for (std::size_t i = 0; i < numInstClasses; ++i)
        EXPECT_EQ(p.mix.fraction[i], q.mix.fraction[i]) << i;
    EXPECT_EQ(p.branches, q.branches);
    EXPECT_EQ(p.mispredictions, q.mispredictions);
    expectHistogramEq(p.mispredictGap, q.mispredictGap);
    EXPECT_EQ(p.icacheL1Misses, q.icacheL1Misses);
    EXPECT_EQ(p.icacheL2Misses, q.icacheL2Misses);
    expectHistogramEq(p.icacheMissGap, q.icacheMissGap);
    EXPECT_EQ(p.loads, q.loads);
    EXPECT_EQ(p.stores, q.stores);
    EXPECT_EQ(p.shortLoadMisses, q.shortLoadMisses);
    EXPECT_EQ(p.longLoadMisses, q.longLoadMisses);
    EXPECT_EQ(p.storeMisses, q.storeMisses);
    EXPECT_EQ(p.ldmGaps, q.ldmGaps);
    EXPECT_EQ(p.dtlbLoadMisses, q.dtlbLoadMisses);
    EXPECT_EQ(p.dtlbStoreMisses, q.dtlbStoreMisses);
    EXPECT_EQ(p.dtlbGaps, q.dtlbGaps);
    EXPECT_EQ(p.avgLatency, q.avgLatency);
    ASSERT_EQ(a.iwPoints.size(), b.iwPoints.size());
    for (std::size_t i = 0; i < a.iwPoints.size(); ++i) {
        EXPECT_EQ(a.iwPoints[i].windowSize, b.iwPoints[i].windowSize);
        EXPECT_EQ(a.iwPoints[i].ipc, b.iwPoints[i].ipc);
    }
}

store::StoreConfig
storeConfig(const std::string &dir)
{
    store::StoreConfig config;
    config.dir = dir;
    config.backgroundCompaction = false;
    return config;
}

TEST(CharacterizationStore, EncodeDecodeRoundTripsEveryFieldExactly)
{
    const Characterization original = sampleCharacterization();
    const std::string bytes = CharacterizationStore::encode(original);
    Characterization decoded;
    ASSERT_TRUE(CharacterizationStore::decode(bytes, decoded));
    expectCharacterizationEq(decoded, original);
}

TEST(CharacterizationStore, DecodeRejectsTruncationAndTrailingBytes)
{
    const std::string bytes =
        CharacterizationStore::encode(sampleCharacterization());
    Characterization out;
    // Every proper prefix must fail cleanly: vector lengths are
    // embedded in the data, so a shorter input either underruns a
    // read or leaves trailing slack — never half-decodes.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(CharacterizationStore::decode(
            bytes.substr(0, len), out))
            << "prefix of " << len;
    }
    EXPECT_FALSE(CharacterizationStore::decode(bytes + "x", out));
    EXPECT_TRUE(CharacterizationStore::decode(bytes, out));
}

TEST(CharacterizationStore, KeyPinsVersionsLengthAndDigest)
{
    const std::string key =
        CharacterizationStore::key("gcc", 5000, 0x1234);
    EXPECT_EQ(key.rfind("c/v", 0), 0u);
    EXPECT_NE(key.find("/gcc/"), std::string::npos);
    EXPECT_NE(key.find("/5000/"), std::string::npos);
    EXPECT_NE(key, CharacterizationStore::key("gcc", 5000, 0x1235));
    EXPECT_NE(key, CharacterizationStore::key("gcc", 6000, 0x1234));
    EXPECT_NE(key, CharacterizationStore::key("gzip", 5000, 0x1234));
}

TEST(CharacterizationStore, SaveLoadRoundTripsAcrossReopen)
{
    test::TempDir dir;
    const std::string key =
        CharacterizationStore::key("synthetic", 200000, 0xabcdef);
    const Characterization original = sampleCharacterization();
    {
        CharacterizationStore cs(
            std::make_shared<store::PersistentStore>(
                storeConfig(dir.path())));
        Characterization miss;
        EXPECT_FALSE(cs.load(key, miss));
        cs.save(key, original);
    }
    CharacterizationStore cs(std::make_shared<store::PersistentStore>(
        storeConfig(dir.path())));
    Characterization loaded;
    ASSERT_TRUE(cs.load(key, loaded));
    expectCharacterizationEq(loaded, original);
}

TEST(CharacterizationStore, WorkbenchReloadsInsteadOfRebuilding)
{
    ::setenv("FOSM_TRACE_INSTS", "5000", 1);
    test::TempDir dir;

    // Cold pass: builds from the trace and persists.
    Characterization cold;
    double coldAlpha = 0.0, coldBeta = 0.0;
    {
        Workbench bench;
        bench.setCharacterizationStore(
            std::make_shared<CharacterizationStore>(
                std::make_shared<store::PersistentStore>(
                    storeConfig(dir.path()))));
        const WorkloadData &data = bench.workload("gcc");
        EXPECT_EQ(bench.characterizationLoads(), 0u);
        cold.missProfile = data.missProfile;
        cold.iwPoints = data.iwPoints;
        coldAlpha = data.iw.alpha();
        coldBeta = data.iw.beta();
    }

    // Warm pass over the same directory: loaded, not rebuilt, and
    // every derived number (including the fitted IW characteristic)
    // matches the cold build bit for bit.
    Workbench bench;
    bench.setCharacterizationStore(
        std::make_shared<CharacterizationStore>(
            std::make_shared<store::PersistentStore>(
                storeConfig(dir.path()))));
    const WorkloadData &data = bench.workload("gcc");
    EXPECT_EQ(bench.characterizationLoads(), 1u);
    expectCharacterizationEq(
        Characterization{data.missProfile, data.iwPoints}, cold);
    EXPECT_EQ(data.iw.alpha(), coldAlpha);
    EXPECT_EQ(data.iw.beta(), coldBeta);
}

} // namespace
} // namespace fosm
