/** @file Unit and property tests for the set-associative cache. */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace fosm {
namespace {

CacheConfig
smallCache(std::uint64_t size = 1024, std::uint32_t assoc = 2,
           std::uint32_t line = 64)
{
    CacheConfig c;
    c.name = "test";
    c.sizeBytes = size;
    c.assoc = assoc;
    c.lineBytes = line;
    return c;
}

TEST(CacheConfig, SetsComputation)
{
    EXPECT_EQ(smallCache(1024, 2, 64).sets(), 8u);
    EXPECT_EQ(smallCache(4096, 4, 128).sets(), 8u);
    EXPECT_EQ(smallCache(512 * 1024, 4, 128).sets(), 1024u);
}

TEST(Cache, FirstAccessMisses)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, SecondAccessHits)
{
    Cache c(smallCache());
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.stats().misses, 1u);
    EXPECT_NEAR(c.stats().missRate(), 0.5, 1e-12);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c(smallCache(1024, 2, 64));
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x1004));
    EXPECT_TRUE(c.access(0x103F));
    EXPECT_FALSE(c.access(0x1040)); // next line
}

TEST(Cache, ConflictEvictsLru)
{
    // 2-way, 8 sets, 64B lines: addresses 64*8 apart map to set 0.
    Cache c(smallCache(1024, 2, 64));
    const Addr stride = 64 * 8;
    c.access(0 * stride); // A
    c.access(1 * stride); // B
    c.access(0 * stride); // touch A (B is now LRU)
    c.access(2 * stride); // C evicts B
    EXPECT_TRUE(c.probe(0 * stride));
    EXPECT_FALSE(c.probe(1 * stride));
    EXPECT_TRUE(c.probe(2 * stride));
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c(smallCache());
    c.access(0x1000);
    const std::uint64_t misses = c.stats().misses;
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.stats().misses, misses);
    EXPECT_FALSE(c.access(0x2000) == false && false);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallCache());
    c.access(0x1000);
    c.flush();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.access(0x1000));
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallCache());
    c.access(0x1000);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.access(0x1000));
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup)
{
    Cache c(smallCache(4096, 4, 64));
    Rng rng(1);
    std::vector<Addr> lines;
    for (int i = 0; i < 32; ++i) // 32 * 64B = 2KB working set
        lines.push_back(i * 64);
    for (Addr a : lines)
        c.access(a);
    c.resetStats();
    for (int i = 0; i < 10000; ++i)
        c.access(lines[rng.nextBounded(lines.size())]);
    EXPECT_EQ(c.stats().misses, 0u);
}

/**
 * Reference model: fully-associative-per-set LRU via std::list, to
 * validate the production cache against an obviously-correct one.
 */
class ReferenceLru
{
  public:
    ReferenceLru(std::uint32_t sets, std::uint32_t ways,
                 std::uint32_t line)
        : sets_(sets), ways_(ways), line_(line), lists_(sets)
    {
    }

    bool
    access(Addr addr)
    {
        const Addr tag = addr / line_;
        const std::uint32_t set = tag % sets_;
        auto &list = lists_[set];
        const auto it = std::find(list.begin(), list.end(), tag);
        if (it != list.end()) {
            list.erase(it);
            list.push_front(tag);
            return true;
        }
        list.push_front(tag);
        if (list.size() > ways_)
            list.pop_back();
        return false;
    }

  private:
    std::uint32_t sets_, ways_, line_;
    std::vector<std::list<Addr>> lists_;
};

TEST(Cache, MatchesReferenceLruOnRandomStream)
{
    const CacheConfig config = smallCache(2048, 4, 64);
    Cache cache(config);
    ReferenceLru ref(config.sets(), config.assoc, config.lineBytes);
    Rng rng(99);
    for (int i = 0; i < 50000; ++i) {
        // Mix of hot and cold addresses to exercise eviction.
        const Addr addr = rng.bernoulli(0.7)
            ? rng.nextBounded(4096)
            : rng.nextBounded(1 << 20);
        EXPECT_EQ(cache.access(addr), ref.access(addr))
            << "divergence at access " << i << " addr " << addr;
    }
}

/** Property sweep: miss rate is monotone non-increasing in size. */
class CacheSizeSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheSizeSweep, BiggerCacheNeverWorseOnZipfStream)
{
    const std::uint32_t assoc = GetParam();
    Rng rng(7);
    std::vector<Addr> stream;
    for (int i = 0; i < 40000; ++i)
        stream.push_back(rng.zipf(1 << 14, 0.8) * 16);

    double prev_rate = 1.1;
    for (std::uint64_t size : {1024u, 4096u, 16384u, 65536u}) {
        Cache c(smallCache(size, assoc, 64));
        for (Addr a : stream)
            c.access(a);
        const double rate = c.stats().missRate();
        EXPECT_LE(rate, prev_rate + 0.01)
            << "size " << size << " assoc " << assoc;
        prev_rate = rate;
    }
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheSizeSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(Cache, HigherAssociativityReducesConflicts)
{
    // Pathological stream: 4 lines that all map to set 0 of a 1KB
    // direct-mapped cache (16 sets of 64B), thrashing it; the 8-way
    // cache holds them all.
    const Addr stride = 64 * 16;
    Cache direct(smallCache(1024, 1, 64));
    Cache assoc8(smallCache(1024, 8, 64));
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 4; ++i) {
            direct.access(i * stride);
            assoc8.access(i * stride);
        }
    }
    EXPECT_LT(assoc8.stats().missRate(), direct.stats().missRate());
}

TEST(CacheDeath, RejectsNonPowerOfTwoLine)
{
    CacheConfig c = smallCache(1024, 2, 48);
    EXPECT_DEATH(Cache{c}, "");
}

} // namespace
} // namespace fosm
