/** @file Tests for the TLB model (paper Section 7, future-work 4). */

#include <gtest/gtest.h>

#include "cache/tlb.hh"

namespace fosm {
namespace {

TlbConfig
smallTlb()
{
    TlbConfig c;
    c.enabled = true;
    c.entries = 8;
    c.assoc = 2;
    c.pageBytes = 4096;
    c.walkLatency = 30;
    return c;
}

TEST(Tlb, FirstTouchMisses)
{
    Tlb tlb(smallTlb());
    EXPECT_FALSE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10000));
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, SamePageDifferentOffsetHits)
{
    Tlb tlb(smallTlb());
    tlb.access(0x10000);
    EXPECT_TRUE(tlb.access(0x10FFF));
    EXPECT_FALSE(tlb.access(0x11000)); // next page
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb(smallTlb());
    // Touch 9 pages mapping across 4 sets of 2 ways: some set gets
    // 3 pages, evicting its LRU.
    for (Addr page = 0; page < 9; ++page)
        tlb.access(page * 4096);
    std::uint32_t resident = 0;
    for (Addr page = 0; page < 9; ++page)
        resident += tlb.probe(page * 4096) ? 1 : 0;
    EXPECT_LE(resident, 8u);
    EXPECT_GE(resident, 7u);
}

TEST(Tlb, WorkingSetWithinEntriesAlwaysHits)
{
    Tlb tlb(smallTlb());
    for (int round = 0; round < 3; ++round) {
        for (Addr page = 0; page < 8; ++page)
            tlb.access(page * 4096);
    }
    // 8 pages across 4 sets x 2 ways: exactly fits.
    EXPECT_EQ(tlb.stats().misses, 8u);
}

TEST(Tlb, FlushAndResetStats)
{
    Tlb tlb(smallTlb());
    tlb.access(0x4000);
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses, 0u);
    tlb.flush();
    EXPECT_FALSE(tlb.probe(0x4000));
}

TEST(TlbDeath, RejectsZeroEntries)
{
    TlbConfig c = smallTlb();
    c.entries = 0;
    EXPECT_DEATH(Tlb{c}, "at least one entry");
}

} // namespace
} // namespace fosm
