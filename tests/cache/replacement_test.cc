/** @file Unit tests for the replacement policies. */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hh"

namespace fosm {
namespace {

TEST(LruPolicy, VictimIsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.fill(0, w);
    lru.touch(0, 0); // 1 is now oldest
    EXPECT_EQ(lru.victim(0), 1u);
    lru.touch(0, 1);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(LruPolicy, SetsIndependent)
{
    LruPolicy lru(2, 2);
    lru.fill(0, 0);
    lru.fill(0, 1);
    lru.fill(1, 1);
    lru.fill(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(FifoPolicy, HitsDoNotChangeOrder)
{
    FifoPolicy fifo(1, 3);
    fifo.fill(0, 0);
    fifo.fill(0, 1);
    fifo.fill(0, 2);
    fifo.touch(0, 0); // no effect on FIFO
    EXPECT_EQ(fifo.victim(0), 0u);
    fifo.fill(0, 0); // re-fill way 0: now newest
    EXPECT_EQ(fifo.victim(0), 1u);
}

TEST(RandomPolicy, VictimsInRange)
{
    RandomPolicy rnd(1, 4, 5);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t v = rnd.victim(0);
        EXPECT_LT(v, 4u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all ways eventually chosen
}

TEST(Factory, BuildsEachKind)
{
    EXPECT_EQ(makeReplacementPolicy(ReplPolicyKind::Lru, 4, 2)->name(),
              "lru");
    EXPECT_EQ(makeReplacementPolicy(ReplPolicyKind::Fifo, 4, 2)->name(),
              "fifo");
    EXPECT_EQ(
        makeReplacementPolicy(ReplPolicyKind::Random, 4, 2)->name(),
        "random");
}

} // namespace
} // namespace fosm
