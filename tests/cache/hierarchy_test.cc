/** @file Unit tests for the L1I/L1D/L2 hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace fosm {
namespace {

HierarchyConfig
tinyHierarchy()
{
    HierarchyConfig c;
    c.l1i = {"l1i", 1024, 2, 64, ReplPolicyKind::Lru};
    c.l1d = {"l1d", 1024, 2, 64, ReplPolicyKind::Lru};
    c.l2 = {"l2", 8192, 4, 64, ReplPolicyKind::Lru};
    c.l1Latency = 1;
    c.l2Latency = 8;
    c.memLatency = 200;
    return c;
}

TEST(Hierarchy, ColdAccessGoesToMemory)
{
    CacheHierarchy h(tinyHierarchy());
    const AccessResult r = h.accessData(0x10000);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_EQ(r.latency, 201u);
    EXPECT_TRUE(r.isL1Miss());
    EXPECT_TRUE(r.isL2Miss());
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(tinyHierarchy());
    h.accessData(0x10000);
    const AccessResult r = h.accessData(0x10000);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_FALSE(r.isL1Miss());
}

TEST(Hierarchy, L1EvictionStillHitsL2)
{
    CacheHierarchy h(tinyHierarchy());
    // L1D: 1KB 2-way 64B -> 8 sets; addresses 512B apart share a set.
    const Addr stride = 64 * 8;
    h.accessData(0 * stride);
    h.accessData(1 * stride);
    h.accessData(2 * stride); // evicts line 0 from L1 (still in L2)
    const AccessResult r = h.accessData(0 * stride);
    EXPECT_EQ(r.level, HitLevel::L2);
    EXPECT_EQ(r.latency, 9u);
    EXPECT_TRUE(r.isL1Miss());
    EXPECT_FALSE(r.isL2Miss());
}

TEST(Hierarchy, InstAndDataPathsSeparateL1)
{
    CacheHierarchy h(tinyHierarchy());
    h.fetchInst(0x4000);
    // Same address via the data path misses L1D but hits the shared L2.
    const AccessResult r = h.accessData(0x4000);
    EXPECT_EQ(r.level, HitLevel::L2);
}

TEST(Hierarchy, StatsTracked)
{
    CacheHierarchy h(tinyHierarchy());
    h.fetchInst(0x4000);
    h.fetchInst(0x4000);
    EXPECT_EQ(h.l1i().stats().accesses, 2u);
    EXPECT_EQ(h.l1i().stats().misses, 1u);
    EXPECT_EQ(h.l2().stats().accesses, 1u);
}

TEST(Hierarchy, ResetStatsAndFlush)
{
    CacheHierarchy h(tinyHierarchy());
    h.accessData(0x123400);
    h.resetStats();
    EXPECT_EQ(h.l1d().stats().accesses, 0u);
    EXPECT_TRUE(h.accessData(0x123400).level == HitLevel::L1);

    h.flush();
    EXPECT_EQ(h.accessData(0x123400).level, HitLevel::Memory);
}

TEST(Hierarchy, BaselineConfigMatchesPaper)
{
    const HierarchyConfig c;
    EXPECT_EQ(c.l1i.sizeBytes, 4u * 1024);
    EXPECT_EQ(c.l1i.assoc, 4u);
    EXPECT_EQ(c.l1i.lineBytes, 128u);
    EXPECT_EQ(c.l1d.sizeBytes, 4u * 1024);
    EXPECT_EQ(c.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(c.l2Latency, 8u);
    EXPECT_EQ(c.memLatency, 200u);
}

} // namespace
} // namespace fosm
