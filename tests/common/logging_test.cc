/** @file Death tests for the logging/error helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace fosm {
namespace {

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(fosm_panic("boom ", 42), "panic: boom 42");
}

TEST(Logging, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fosm_fatal("bad config"),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(Logging, AssertPassesOnTrue)
{
    fosm_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Logging, AssertAbortsOnFalse)
{
    EXPECT_DEATH(fosm_assert(false, "ctx ", 7), "assertion failed");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning ", 1);
    inform("status ", 2.5);
    SUCCEED();
}

} // namespace
} // namespace fosm
