/** @file Unit tests for RunningStats and Histogram. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"

namespace fosm {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesNaiveComputation)
{
    Rng rng(5);
    std::vector<double> xs;
    RunningStats s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(10.0, 3.0);
        xs.push_back(x);
        s.add(x);
    }
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    const double mean = sum / xs.size();
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    const double var = ss / (xs.size() - 1);

    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-9);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-9);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    Rng rng(9);
    RunningStats a, b, combined;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble() * 100.0;
        a.add(x);
        combined.add(x);
    }
    for (int i = 0; i < 700; ++i) {
        const double x = rng.normal(-5.0, 2.0);
        b.add(x);
        combined.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), mean);

    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), mean);
}

TEST(RunningStats, SumAndReset)
{
    RunningStats s;
    s.add(1.5);
    s.add(2.5);
    EXPECT_NEAR(s.sum(), 4.0, 1e-12);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BasicCounts)
{
    Histogram h(10);
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_EQ(h.countAt(3), 2u);
    EXPECT_EQ(h.countAt(7), 1u);
    EXPECT_EQ(h.countAt(0), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h(10);
    h.add(2, 5);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.countAt(2), 5u);
    EXPECT_NEAR(h.mean(), 2.0, 1e-12);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.add(100);
    h.add(2);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.countAt(100), 0u);
}

TEST(Histogram, Mean)
{
    Histogram h(100);
    h.add(10);
    h.add(20);
    h.add(30);
    EXPECT_NEAR(h.mean(), 20.0, 1e-12);
}

TEST(Histogram, Cdf)
{
    Histogram h(10);
    for (std::uint64_t v : {1, 2, 3, 4})
        h.add(v);
    EXPECT_NEAR(h.cdf(0), 0.0, 1e-12);
    EXPECT_NEAR(h.cdf(2), 0.5, 1e-12);
    EXPECT_NEAR(h.cdf(4), 1.0, 1e-12);
    EXPECT_NEAR(h.cdf(100), 1.0, 1e-12);
}

TEST(Histogram, CdfExcludesOverflow)
{
    Histogram h(4);
    h.add(1);
    h.add(99);
    EXPECT_NEAR(h.cdf(4), 0.5, 1e-12);
}

TEST(Histogram, PmfSumsToNonOverflowMass)
{
    Histogram h(8);
    h.add(1);
    h.add(2);
    h.add(50); // overflow
    const std::vector<double> pmf = h.pmf();
    double total = 0.0;
    for (double p : pmf)
        total += p;
    EXPECT_NEAR(total, 2.0 / 3.0, 1e-12);
}

TEST(Histogram, EmptyPmfAndCdf)
{
    Histogram h(8);
    EXPECT_EQ(h.cdf(3), 0.0);
    for (double p : h.pmf())
        EXPECT_EQ(p, 0.0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(SafeRatio, HandlesZeroDenominator)
{
    EXPECT_EQ(safeRatio(5.0, 0.0), 0.0);
    EXPECT_EQ(safeRatio(6.0, 2.0), 3.0);
}

} // namespace
} // namespace fosm
