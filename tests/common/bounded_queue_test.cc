/** @file Unit tests for the bounded MPMC task queue. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"

namespace fosm {
namespace {

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    int out = 0;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 3);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushRejectsWhenFull)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)); // full: the 503 path
    int out = 0;
    EXPECT_TRUE(q.pop(out));
    EXPECT_TRUE(q.tryPush(3)); // room again
}

TEST(BoundedQueue, TryPushRejectsWhenClosed)
{
    BoundedQueue<int> q(4);
    q.close();
    EXPECT_FALSE(q.tryPush(1));
    EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, CloseDrainsQueuedItems)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.tryPush(10));
    EXPECT_TRUE(q.tryPush(11));
    q.close();
    int out = 0;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 10);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 11);
    EXPECT_FALSE(q.pop(out)); // closed and drained: consumer exits
}

TEST(BoundedQueue, PopBlocksUntilPush)
{
    BoundedQueue<int> q(1);
    std::atomic<int> got{0};
    std::thread consumer([&] {
        int out = 0;
        if (q.pop(out))
            got.store(out);
    });
    // Give the consumer a moment to block, then feed it.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(q.tryPush(42));
    consumer.join();
    EXPECT_EQ(got.load(), 42);
}

TEST(BoundedQueue, CloseWakesBlockedConsumers)
{
    BoundedQueue<int> q(1);
    std::atomic<int> exited{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i) {
        consumers.emplace_back([&] {
            int out = 0;
            while (q.pop(out)) {
            }
            exited.fetch_add(1);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    for (std::thread &t : consumers)
        t.join();
    EXPECT_EQ(exited.load(), 3);
}

TEST(BoundedQueue, PopBatchDrainsUpToMaxInFifoOrder)
{
    BoundedQueue<int> q(16);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(q.tryPush(i));

    std::vector<int> batch;
    ASSERT_TRUE(q.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
    ASSERT_TRUE(q.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{4, 5, 6, 7}));
    // Fewer than max left: the batch is just smaller.
    ASSERT_TRUE(q.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{8, 9}));
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, PopBatchBlocksThenReturnsFalseWhenClosedEmpty)
{
    BoundedQueue<int> q(4);
    std::vector<int> batch{99}; // stale content must be cleared
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.tryPush(7);
    });
    ASSERT_TRUE(q.popBatch(batch, 8));
    EXPECT_EQ(batch, (std::vector<int>{7}));
    producer.join();

    q.close();
    ASSERT_FALSE(q.popBatch(batch, 8));
    EXPECT_TRUE(batch.empty());
}

TEST(BoundedQueue, PopBatchDrainsRemainderAfterClose)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.tryPush(i));
    q.close();
    std::vector<int> batch;
    ASSERT_TRUE(q.popBatch(batch, 3));
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
    ASSERT_TRUE(q.popBatch(batch, 3));
    EXPECT_EQ(batch, (std::vector<int>{3, 4}));
    EXPECT_FALSE(q.popBatch(batch, 3));
}

TEST(BoundedQueue, ManyProducersManyConsumers)
{
    constexpr int producers = 4;
    constexpr int consumers = 4;
    constexpr int perProducer = 2000;
    BoundedQueue<int> q(64);
    std::atomic<std::uint64_t> consumedSum{0};
    std::atomic<std::uint64_t> consumedCount{0};

    std::vector<std::thread> threads;
    for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&] {
            int out = 0;
            while (q.pop(out)) {
                consumedSum.fetch_add(out);
                consumedCount.fetch_add(1);
            }
        });
    }
    std::uint64_t producedSum = 0;
    std::vector<std::thread> prod;
    std::atomic<std::uint64_t> producedAtomic{0};
    for (int p = 0; p < producers; ++p) {
        prod.emplace_back([&, p] {
            for (int i = 0; i < perProducer; ++i) {
                const int item = p * perProducer + i;
                while (!q.tryPush(item))
                    std::this_thread::yield();
                producedAtomic.fetch_add(item);
            }
        });
    }
    for (std::thread &t : prod)
        t.join();
    producedSum = producedAtomic.load();
    q.close();
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(consumedCount.load(),
              static_cast<std::uint64_t>(producers * perProducer));
    EXPECT_EQ(consumedSum.load(), producedSum);
}

} // namespace
} // namespace fosm
