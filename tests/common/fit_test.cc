/** @file Unit tests for the least-squares fits. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/fit.hh"
#include "common/rng.hh"

namespace fosm {
namespace {

TEST(FitLine, RecoversExactLine)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y;
    for (double xi : x)
        y.push_back(2.5 * xi - 1.0);
    const LineFit fit = fitLine(x, y);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_EQ(fit.points, 5u);
}

TEST(FitLine, HorizontalLine)
{
    std::vector<double> x{1, 2, 3};
    std::vector<double> y{4, 4, 4};
    const LineFit fit = fitLine(x, y);
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
    // Zero total variance: define R^2 = 1.
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineApproximates)
{
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        const double xi = i * 0.1;
        x.push_back(xi);
        y.push_back(3.0 * xi + 1.0 + rng.normal(0.0, 0.05));
    }
    const LineFit fit = fitLine(x, y);
    EXPECT_NEAR(fit.slope, 3.0, 0.02);
    EXPECT_NEAR(fit.intercept, 1.0, 0.05);
    EXPECT_GT(fit.r2, 0.99);
}

TEST(FitPowerLaw, RecoversExactPowerLaw)
{
    std::vector<double> x{4, 8, 16, 32, 64};
    std::vector<double> y;
    for (double xi : x)
        y.push_back(1.3 * std::pow(xi, 0.5));
    const PowerFit fit = fitPowerLaw(x, y);
    EXPECT_NEAR(fit.alpha, 1.3, 1e-9);
    EXPECT_NEAR(fit.beta, 0.5, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(PowerFit, EvaluatesLaw)
{
    PowerFit fit;
    fit.alpha = 2.0;
    fit.beta = 0.5;
    EXPECT_NEAR(fit(16.0), 8.0, 1e-12);
    EXPECT_NEAR(fit(1.0), 2.0, 1e-12);
}

/** Parameterized: fit recovery across the Table 1 parameter space. */
struct PowerCase
{
    double alpha;
    double beta;
};

class PowerLawSweep : public ::testing::TestWithParam<PowerCase>
{
};

TEST_P(PowerLawSweep, RecoversParameters)
{
    const PowerCase c = GetParam();
    std::vector<double> x{4, 8, 16, 32, 64, 128};
    std::vector<double> y;
    for (double xi : x)
        y.push_back(c.alpha * std::pow(xi, c.beta));
    const PowerFit fit = fitPowerLaw(x, y);
    EXPECT_NEAR(fit.alpha, c.alpha, 1e-6);
    EXPECT_NEAR(fit.beta, c.beta, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Space, PowerLawSweep,
    ::testing::Values(PowerCase{1.3, 0.5}, PowerCase{1.2, 0.7},
                      PowerCase{1.7, 0.3}, PowerCase{1.0, 1.0},
                      PowerCase{2.0, 0.1}));

TEST(FitPowerLaw, NoisyRecovery)
{
    Rng rng(7);
    std::vector<double> x, y;
    for (double xi : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        x.push_back(xi);
        y.push_back(1.5 * std::pow(xi, 0.6) *
                    (1.0 + rng.normal(0.0, 0.02)));
    }
    const PowerFit fit = fitPowerLaw(x, y);
    EXPECT_NEAR(fit.beta, 0.6, 0.05);
    EXPECT_NEAR(fit.alpha, 1.5, 0.2);
}

TEST(FitLineDeath, RejectsSizeMismatch)
{
    std::vector<double> x{1, 2, 3};
    std::vector<double> y{1, 2};
    EXPECT_DEATH(fitLine(x, y), "size mismatch");
}

TEST(FitLineDeath, RejectsSinglePoint)
{
    std::vector<double> x{1};
    std::vector<double> y{1};
    EXPECT_DEATH(fitLine(x, y), "at least 2 points");
}

TEST(FitPowerLawDeath, RejectsNonPositive)
{
    std::vector<double> x{1, 2};
    std::vector<double> y{1, 0};
    EXPECT_DEATH(fitPowerLaw(x, y), "positive");
}

} // namespace
} // namespace fosm
