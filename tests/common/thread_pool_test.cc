/**
 * @file
 * Tests for the fixed-size thread pool and its fork-join helpers:
 * deterministic result ordering, exception propagation, inline
 * execution for size-1 pools, nested-call reentrancy and concurrent
 * top-level submissions.
 */

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace fosm {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelMapKeepsInputOrder)
{
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    const std::vector<int> out =
        parallelMap(items, [](int v) { return v * v; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], items[i] * items[i]);
}

TEST(ThreadPoolTest, MapMatchesSerialForNonTrivialTypes)
{
    const auto fn = [](std::size_t i) {
        return std::string(i % 7 + 1, 'a' + static_cast<char>(i % 26));
    };
    std::vector<std::string> serial;
    for (std::size_t i = 0; i < 100; ++i)
        serial.push_back(fn(i));
    EXPECT_EQ(parallelMapIndex(100, fn), serial);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("boom 37");
                         }),
        std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(100, [](std::size_t i) {
            if (i % 10 == 3) // 3, 13, 23, ...
                throw std::runtime_error("boom " +
                                         std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

TEST(ThreadPoolTest, PoolSurvivesAFailedLoop)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     10, [](std::size_t) { throw std::range_error(""); }),
                 std::range_error);
    // The pool must be reusable after an exception.
    std::atomic<int> count{0};
    pool.parallelFor(10, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInlineOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(16);
    pool.parallelFor(ids.size(), [&](std::size_t i) {
        ids[i] = std::this_thread::get_id();
    });
    for (const std::thread::id &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, SizeOneMatchesMultiThreadResults)
{
    const auto task = [](std::size_t i) {
        double acc = 0.0;
        for (std::size_t k = 0; k <= i; ++k)
            acc += static_cast<double>(k) * 1.5;
        return acc;
    };
    ThreadPool serial(1);
    ThreadPool parallel(4);
    constexpr std::size_t n = 64;
    std::vector<double> a(n), b(n);
    serial.parallelFor(n, [&](std::size_t i) { a[i] = task(i); });
    parallel.parallelFor(n, [&](std::size_t i) { b[i] = task(i); });
    EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline)
{
    // A parallelFor from inside a pool task must not deadlock; it
    // serializes on the task's own thread.
    std::atomic<int> inner_total{0};
    parallelFor(8, [&](std::size_t) {
        parallelFor(8, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentTopLevelCallsAreSafe)
{
    // Several plain threads submitting top-level loops to the global
    // pool at once; each loop must see exactly its own iterations.
    constexpr int submitters = 4;
    constexpr std::size_t n = 200;
    std::vector<std::vector<int>> results(submitters);
    std::vector<std::thread> threads;
    for (int s = 0; s < submitters; ++s) {
        threads.emplace_back([&, s] {
            std::vector<int> out(n, -1);
            parallelFor(n, [&](std::size_t i) {
                out[i] = s * 1000 + static_cast<int>(i);
            });
            results[s] = std::move(out);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int s = 0; s < submitters; ++s) {
        ASSERT_EQ(results[s].size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(results[s][i], s * 1000 + static_cast<int>(i));
    }
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultSize(), 1u);
    EXPECT_GE(ThreadPool::global().size(), 1u);
}

} // namespace
} // namespace fosm
