/** @file Unit tests for the text table formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace fosm {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RowCount)
{
    TextTable t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(TextTable, RejectsWrongRowWidth)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_DEATH(TextTable({}), "at least one column");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "Figure 15");
    EXPECT_NE(os.str().find("Figure 15"), std::string::npos);
    EXPECT_NE(os.str().find("==="), std::string::npos);
}

} // namespace
} // namespace fosm
