/** @file Unit tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hh"

namespace fosm {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NextBoundedStaysInRange)
{
    Rng rng(11);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, NextBoundedCoversRange)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(17);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMean)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, GeometricMean)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    const double p = 0.25;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of failures before success: (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GeometricPOneAlwaysZero)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(37);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(41);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(7.0);
    EXPECT_NEAR(sum / n, 7.0, 0.2);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(43);
    std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ZipfSkewsTowardSmallIndices)
{
    Rng rng(47);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.zipf(100, 1.0)];
    // Head must dominate the tail.
    EXPECT_GT(counts[0], counts[50] * 5);
    EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(Rng, ZipfZeroSkewIsUniformish)
{
    Rng rng(53);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.zipf(10, 0.0)];
    for (int c : counts)
        EXPECT_NEAR(c / 100000.0, 0.1, 0.01);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(59);
    for (double s : {0.0, 0.5, 1.0, 1.5}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.zipf(17, s), 17u);
    }
}

TEST(DiscreteSampler, MatchesWeights)
{
    Rng rng(61);
    DiscreteSampler sampler({2.0, 2.0, 6.0});
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[sampler(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(DiscreteSampler, ProbabilityAccessor)
{
    DiscreteSampler sampler({1.0, 1.0, 2.0});
    EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
    EXPECT_NEAR(sampler.probability(1), 0.25, 1e-12);
    EXPECT_NEAR(sampler.probability(2), 0.50, 1e-12);
}

TEST(DiscreteSampler, ZeroWeightCategoryNeverDrawn)
{
    Rng rng(67);
    DiscreteSampler sampler({1.0, 0.0, 1.0});
    for (int i = 0; i < 10000; ++i)
        EXPECT_NE(sampler(rng), 1u);
}

/** Parameterized sweep: geometric mean tracks 1/p across p values. */
class GeometricSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GeometricSweep, MeanMatchesFormula)
{
    const double p = GetParam();
    Rng rng(71);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / n, expected, std::max(0.05, expected * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, GeometricSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.35, 0.5,
                                           0.75, 0.9));

} // namespace
} // namespace fosm
