/** @file Spec parsing, determinism and counters of FaultInjector. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injector.hh"

namespace fosm {
namespace {

/** Every test starts and ends with the injector disarmed. */
class FaultInjectorTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }

    static bool configure(const std::string &spec,
                          std::uint64_t seed = 1)
    {
        std::string error;
        const bool ok =
            FaultInjector::instance().configure(spec, seed, error);
        EXPECT_TRUE(ok || !error.empty());
        return ok;
    }
};

TEST_F(FaultInjectorTest, DisabledByDefault)
{
    EXPECT_FALSE(FaultInjector::active());
    EXPECT_FALSE(faultAt("store.write"));
    EXPECT_EQ(FaultInjector::instance().injectedTotal(), 0u);
}

TEST_F(FaultInjectorTest, ParsesMultiRuleSpec)
{
    ASSERT_TRUE(configure("store.write=short:0.05,"
                          "upstream.recv=stall:0.1:800,"
                          "serve.handler=error:1.0"));
    EXPECT_TRUE(FaultInjector::active());
    const std::vector<std::string> points =
        FaultInjector::instance().armedPoints();
    EXPECT_EQ(points.size(), 3u);
    // std::map ordering: sorted by point name.
    EXPECT_EQ(points[0], "serve.handler");
    EXPECT_EQ(points[1], "store.write");
    EXPECT_EQ(points[2], "upstream.recv");
}

TEST_F(FaultInjectorTest, MalformedSpecsRejectedAndKeepOldRules)
{
    ASSERT_TRUE(configure("store.write=error:1.0"));
    const char *bad[] = {
        "no-equals-sign",
        "=error:1.0",
        "p=error",            // missing probability
        "p=explode:0.5",      // unknown kind
        "p=error:nan-ish",    // unparsable probability
        "p=error:1.5",        // probability out of range
        "p=error:-0.1",       // probability out of range
        "p=delay:0.5:abc",    // unparsable millis
        "p=delay:0.5:-1",     // negative millis
        "p=delay:0.5:900000", // millis over the cap
    };
    for (const char *spec : bad) {
        std::string error;
        EXPECT_FALSE(FaultInjector::instance().configure(
            spec, 1, error))
            << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
    // The good rule from before every failed configure survives.
    EXPECT_TRUE(FaultInjector::active());
    EXPECT_EQ(FaultInjector::instance().armedPoints(),
              std::vector<std::string>{"store.write"});
}

TEST_F(FaultInjectorTest, ProbabilityOneAlwaysFires)
{
    ASSERT_TRUE(configure("p=error:1.0"));
    for (int i = 0; i < 100; ++i) {
        const FaultAction action = faultAt("p");
        ASSERT_TRUE(action);
        EXPECT_EQ(action.kind, FaultKind::Error);
    }
    EXPECT_EQ(FaultInjector::instance().injected("p"), 100u);
    EXPECT_EQ(FaultInjector::instance().injectedTotal(), 100u);
}

TEST_F(FaultInjectorTest, ProbabilityZeroNeverFires)
{
    ASSERT_TRUE(configure("p=error:0.0"));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultAt("p"));
    EXPECT_EQ(FaultInjector::instance().injected("p"), 0u);
}

TEST_F(FaultInjectorTest, UnarmedPointNeverFires)
{
    ASSERT_TRUE(configure("p=error:1.0"));
    EXPECT_FALSE(faultAt("other.point"));
    EXPECT_EQ(FaultInjector::instance().injected("other.point"), 0u);
}

TEST_F(FaultInjectorTest, DelayKindsCarryMillis)
{
    ASSERT_TRUE(configure("a=delay:1.0:7,b=stall:1.0"));
    const FaultAction delay = faultAt("a");
    ASSERT_EQ(delay.kind, FaultKind::Delay);
    EXPECT_EQ(delay.delayMs, 7);
    // Stall without explicit millis gets the long default.
    const FaultAction stall = faultAt("b");
    ASSERT_EQ(stall.kind, FaultKind::Stall);
    EXPECT_EQ(stall.delayMs, 2000);
}

TEST_F(FaultInjectorTest, SameSeedReplaysSameDecisions)
{
    const std::string spec = "p=error:0.3";
    ASSERT_TRUE(configure(spec, 42));
    std::vector<bool> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(static_cast<bool>(faultAt("p")));

    ASSERT_TRUE(configure(spec, 42));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(static_cast<bool>(faultAt("p")), first[i]) << i;

    // A different seed produces a different sequence.
    ASSERT_TRUE(configure(spec, 43));
    std::vector<bool> other;
    for (int i = 0; i < 200; ++i)
        other.push_back(static_cast<bool>(faultAt("p")));
    EXPECT_NE(first, other);
}

TEST_F(FaultInjectorTest, PointsDrawFromIndependentStreams)
{
    // Interleaving samples at a second point must not perturb the
    // first point's sequence — that is what makes drills replayable.
    ASSERT_TRUE(configure("a=error:0.3,b=error:0.3", 7));
    std::vector<bool> alone;
    for (int i = 0; i < 100; ++i)
        alone.push_back(static_cast<bool>(faultAt("a")));

    ASSERT_TRUE(configure("a=error:0.3,b=error:0.3", 7));
    for (int i = 0; i < 100; ++i) {
        (void)faultAt("b"); // interleaved noise
        EXPECT_EQ(static_cast<bool>(faultAt("a")), alone[i]) << i;
    }
}

TEST_F(FaultInjectorTest, EmptySpecDisables)
{
    ASSERT_TRUE(configure("p=error:1.0"));
    EXPECT_TRUE(FaultInjector::active());
    ASSERT_TRUE(configure(""));
    EXPECT_FALSE(FaultInjector::active());
    EXPECT_TRUE(FaultInjector::instance().armedPoints().empty());
}

TEST_F(FaultInjectorTest, ApproximatesConfiguredProbability)
{
    ASSERT_TRUE(configure("p=error:0.25", 99));
    int fired = 0;
    for (int i = 0; i < 4000; ++i)
        fired += faultAt("p") ? 1 : 0;
    EXPECT_GT(fired, 4000 * 0.15);
    EXPECT_LT(fired, 4000 * 0.35);
}

} // namespace
} // namespace fosm
