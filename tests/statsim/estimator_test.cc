/** @file Unit tests for the statistical profile estimator. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "common/rng.hh"
#include "statsim/profile_estimator.hh"
#include "workload/generator.hh"

namespace fosm {
namespace {

TEST(Estimator, ExactMixRecovery)
{
    test::TraceBuilder b;
    for (int i = 0; i < 1000; ++i) {
        switch (i % 5) {
          case 0: b.load(1, 0x1000); break;
          case 1: b.store(0x2000); break;
          case 2: b.branch(false); break;
          default: b.alu(2); break;
        }
    }
    const Profile est = estimateProfile(b.take());
    EXPECT_NEAR(est.mix.load, 0.2, 1e-9);
    EXPECT_NEAR(est.mix.store, 0.2, 1e-9);
    EXPECT_NEAR(est.mix.branch, 0.2, 1e-9);
    EXPECT_NEAR(est.mix.alu(), 0.4, 1e-9);
}

TEST(Estimator, SourceArityRecovery)
{
    test::TraceBuilder b;
    // Alternate 0-source and 2-source ALU ops.
    for (int i = 0; i < 1000; ++i) {
        if (i % 2 == 0)
            b.alu(1);
        else
            b.alu(2, 1, 1);
    }
    const Profile est = estimateProfile(b.take());
    EXPECT_NEAR(est.dep.twoSourceFrac, 0.5, 0.01);
    EXPECT_NEAR(est.dep.noSourceFrac, 0.5, 0.01);
}

TEST(Estimator, BiasedSiteClassified)
{
    test::TraceBuilder b;
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        b.branch(rng.bernoulli(0.97)).at(0x100);
        b.alu(1).at(0x104);
        b.alu(2).at(0x108);
    }
    const Profile est = estimateProfile(b.take());
    EXPECT_GT(est.branch.biasedFrac, 0.9);
    EXPECT_LT(est.branch.loopFrac, 0.1);
}

TEST(Estimator, LoopSiteClassifiedByRunVariance)
{
    // Deterministic trip-3 loop: TTN TTN ... taken rate 2/3 with
    // zero run-length variance.
    test::TraceBuilder b;
    for (int i = 0; i < 3000; ++i) {
        b.branch(i % 3 != 2).at(0x200);
        b.alu(1).at(0x204);
    }
    const Profile est = estimateProfile(b.take());
    EXPECT_GT(est.branch.loopFrac, 0.9);
    EXPECT_NEAR(est.branch.meanLoopTrip, 3.0, 0.5);
}

TEST(Estimator, Trip2LoopNotMistakenForCoin)
{
    // TNTN...: rate 0.5; run variance 0 -> loop, not random.
    test::TraceBuilder b;
    for (int i = 0; i < 2000; ++i) {
        b.branch(i % 2 == 0).at(0x300);
        b.alu(1).at(0x304);
    }
    const Profile est = estimateProfile(b.take());
    EXPECT_GT(est.branch.loopFrac, 0.9);
}

TEST(Estimator, CoinClassifiedRandom)
{
    test::TraceBuilder b;
    Rng rng(2);
    for (int i = 0; i < 4000; ++i) {
        b.branch(rng.bernoulli(0.5)).at(0x400);
        b.alu(1).at(0x404);
    }
    const Profile est = estimateProfile(b.take());
    // Neither biased nor loop: the remainder is the random share.
    EXPECT_LT(est.branch.biasedFrac + est.branch.loopFrac, 0.2);
}

TEST(Estimator, DependenceMixtureRecovery)
{
    // Sources at distance 2 (half) and distance 40 (half).
    test::TraceBuilder b;
    for (int i = 0; i < 5000; ++i) {
        const RegIndex dst = static_cast<RegIndex>(i % 64);
        RegIndex src = invalidReg;
        if (i >= 40) {
            src = (i % 2 == 0) ? static_cast<RegIndex>((i - 2) % 64)
                               : static_cast<RegIndex>((i - 40) % 64);
        }
        b.alu(dst, src);
    }
    const Profile est = estimateProfile(b.take());
    EXPECT_NEAR(est.dep.meanShortDistance, 2.0, 0.5);
    EXPECT_NEAR(est.dep.meanLongDistance, 40.0, 4.0);
    EXPECT_NEAR(est.dep.longFrac, 0.5, 0.05);
}

TEST(Estimator, FootprintFromPcSpan)
{
    test::TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.alu(1).at(0x1000 + i * 4);
    b.alu(1).at(0x1000 + 20000);
    const Profile est = estimateProfile(b.take());
    // Span ~20KB -> rounded up to 32KB.
    EXPECT_EQ(est.code.footprintBytes, 32u * 1024);
}

TEST(Estimator, ColdStreamFractionMatchesLongMissRate)
{
    // Loads alternating between one hot line and unique cold lines.
    test::TraceBuilder b;
    for (int i = 0; i < 8000; ++i) {
        if (i % 4 == 0)
            b.load(1, 0x40000000ull + i * 4096ull); // always cold
        else
            b.load(2, 0x1000); // hot
    }
    const Profile est = estimateProfile(b.take());
    // A quarter of memory accesses are long misses.
    EXPECT_NEAR(est.data.coldFrac +
                    0.038 * est.data.burstColdFrac, // burst duty part
                0.25, 0.08);
    est.validate();
}

TEST(Estimator, CloneOfCloneIsStable)
{
    // Estimating a clone's profile should land near the clone's own
    // statistics (fixed-point-ish behaviour).
    const Trace original =
        generateTrace(profileByName("crafty"), 60000);
    const Profile est1 = estimateProfile(original);
    const Trace clone1 = generateTrace(est1, 60000);
    const Profile est2 = estimateProfile(clone1);
    EXPECT_NEAR(est2.mix.load, est1.mix.load, 0.03);
    EXPECT_NEAR(est2.mix.branch, est1.mix.branch, 0.03);
    EXPECT_NEAR(est2.dep.longFrac, est1.dep.longFrac, 0.15);
}

} // namespace
} // namespace fosm
