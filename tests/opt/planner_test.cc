/**
 * @file
 * Sweep-planner tests: probe-before-schedule dedupe (with pinned
 * hit/scheduled counts), characterization-key collapsing over the
 * misses only, batch chunking, and the stats the fosm_opt_* metrics
 * report.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "opt/planner.hh"

namespace fosm::opt {
namespace {

TEST(Planner, AllMissesChunkedIntoBatches)
{
    const SweepPlan plan = planSweep(
        10, [](std::size_t) { return false; }, nullptr, 4);
    EXPECT_TRUE(plan.cached.empty());
    ASSERT_EQ(plan.misses.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(plan.misses[i], i);
    ASSERT_EQ(plan.batches.size(), 3u);
    EXPECT_EQ(plan.batches[0].size(), 4u);
    EXPECT_EQ(plan.batches[1].size(), 4u);
    EXPECT_EQ(plan.batches[2].size(), 2u);
    EXPECT_EQ(plan.stats.points, 10u);
    EXPECT_EQ(plan.stats.cacheHits, 0u);
    EXPECT_EQ(plan.stats.scheduled, 10u);
    EXPECT_EQ(plan.stats.batches, 3u);
}

TEST(Planner, ProbeHitsAreNeverScheduled)
{
    // Evens cached: the dedupe-count pin.
    const SweepPlan plan = planSweep(
        9, [](std::size_t i) { return i % 2 == 0; }, nullptr, 100);
    EXPECT_EQ(plan.cached,
              (std::vector<std::size_t>{0, 2, 4, 6, 8}));
    EXPECT_EQ(plan.misses, (std::vector<std::size_t>{1, 3, 5, 7}));
    EXPECT_EQ(plan.stats.cacheHits, 5u);
    EXPECT_EQ(plan.stats.scheduled, 4u);
    ASSERT_EQ(plan.batches.size(), 1u);
    EXPECT_EQ(plan.batches[0], plan.misses);
}

TEST(Planner, CharacterizationKeysCollapseOverMissesOnly)
{
    // Points alternate widths {2,4}; all width-2 points are cached,
    // so only width 4 needs a characterization.
    const SweepPlan plan = planSweep(
        8, [](std::size_t i) { return i % 2 == 0; },
        [](std::size_t i) { return i % 2 == 0 ? 2u : 4u; }, 0);
    ASSERT_EQ(plan.characterizationKeys.size(), 1u);
    EXPECT_EQ(plan.characterizationKeys[0], 4u);
    EXPECT_EQ(plan.stats.characterizations, 1u);
}

TEST(Planner, CharacterizationKeysFirstSeenOrder)
{
    const std::vector<std::uint64_t> widths = {8, 2, 8, 4, 2, 8};
    const SweepPlan plan = planSweep(
        widths.size(), [](std::size_t) { return false; },
        [&](std::size_t i) { return widths[i]; }, 0);
    EXPECT_EQ(plan.characterizationKeys,
              (std::vector<std::uint64_t>{8, 2, 4}));
    EXPECT_EQ(plan.stats.characterizations, 3u);
}

TEST(Planner, ZeroBatchRowsMeansOneBatch)
{
    const SweepPlan plan = planSweep(
        100, [](std::size_t) { return false; }, nullptr, 0);
    ASSERT_EQ(plan.batches.size(), 1u);
    EXPECT_EQ(plan.batches[0].size(), 100u);
    EXPECT_EQ(plan.stats.batches, 1u);
}

TEST(Planner, AllCachedSchedulesNothing)
{
    const SweepPlan plan = planSweep(
        5, [](std::size_t) { return true; },
        [](std::size_t) { return 2u; }, 10);
    EXPECT_EQ(plan.cached.size(), 5u);
    EXPECT_TRUE(plan.misses.empty());
    EXPECT_TRUE(plan.batches.empty());
    EXPECT_TRUE(plan.characterizationKeys.empty());
    EXPECT_EQ(plan.stats.cacheHits, 5u);
    EXPECT_EQ(plan.stats.scheduled, 0u);
    EXPECT_EQ(plan.stats.characterizations, 0u);
}

TEST(Planner, EmptySweep)
{
    const SweepPlan plan = planSweep(
        0, [](std::size_t) { return false; }, nullptr, 4);
    EXPECT_TRUE(plan.cached.empty());
    EXPECT_TRUE(plan.misses.empty());
    EXPECT_TRUE(plan.batches.empty());
    EXPECT_EQ(plan.stats.points, 0u);
}

TEST(Planner, ProbeCalledExactlyOncePerPointInOrder)
{
    std::vector<std::size_t> probed;
    planSweep(
        6,
        [&](std::size_t i) {
            probed.push_back(i);
            return false;
        },
        nullptr, 2);
    EXPECT_EQ(probed, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

} // namespace
} // namespace fosm::opt
