/**
 * @file
 * Constraint/objective expression language tests: precedence and
 * associativity, boolean semantics (1.0/0.0), the divide-by-zero
 * contract, parse-time rejection of typos and syntax errors, and the
 * referenced-variable report.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "opt/expr.hh"

namespace fosm::opt {
namespace {

const std::vector<std::string> kVars = {"width", "window", "cpi"};

double
evalText(const std::string &text, std::vector<double> values = {})
{
    values.resize(kVars.size(), 0.0);
    Expr e;
    std::string error;
    EXPECT_TRUE(Expr::parse(text, kVars, e, &error))
        << text << ": " << error;
    return e.eval(values);
}

TEST(Expr, ArithmeticPrecedence)
{
    EXPECT_EQ(evalText("1 + 2 * 3"), 7.0);
    EXPECT_EQ(evalText("(1 + 2) * 3"), 9.0);
    EXPECT_EQ(evalText("2 - 3 - 4"), -5.0); // left-associative
    EXPECT_EQ(evalText("7 / 2"), 3.5);
    EXPECT_EQ(evalText("10 % 4"), 2.0);
    EXPECT_EQ(evalText("-2 * 3"), -6.0);
    EXPECT_EQ(evalText("--2"), 2.0);
}

TEST(Expr, ComparisonsAndBooleans)
{
    EXPECT_EQ(evalText("2 < 3"), 1.0);
    EXPECT_EQ(evalText("2 >= 3"), 0.0);
    EXPECT_EQ(evalText("3 <= 3"), 1.0);
    EXPECT_EQ(evalText("2 == 2"), 1.0);
    EXPECT_EQ(evalText("2 != 2"), 0.0);
    EXPECT_EQ(evalText("1 && 0"), 0.0);
    EXPECT_EQ(evalText("0 || 3"), 1.0); // non-zero is true, result 1
    EXPECT_EQ(evalText("!0"), 1.0);
    EXPECT_EQ(evalText("!5"), 0.0);
    EXPECT_EQ(evalText("!(1 == 2)"), 1.0);
    // && binds tighter than ||.
    EXPECT_EQ(evalText("1 || 0 && 0"), 1.0);
    // Comparison binds tighter than &&.
    EXPECT_EQ(evalText("1 < 2 && 3 < 4"), 1.0);
}

TEST(Expr, DivisionByZeroYieldsZeroNotACrash)
{
    EXPECT_EQ(evalText("1 / 0"), 0.0);
    EXPECT_EQ(evalText("1 % 0"), 0.0);
    // A constraint dividing by zero must reject nothing: 0 is falsy.
    EXPECT_EQ(evalText("10 / (2 - 2) > 1"), 0.0);
}

TEST(Expr, VariablesBindByPosition)
{
    Expr e;
    std::string error;
    ASSERT_TRUE(Expr::parse("width * window + cpi", kVars, e, &error))
        << error;
    EXPECT_EQ(e.eval({4.0, 64.0, 1.5}), 257.5);
    EXPECT_EQ(e.eval({2.0, 32.0, 0.5}), 64.5);
}

TEST(Expr, UnknownIdentifierRejectedAtParseTime)
{
    Expr e;
    std::string error;
    EXPECT_FALSE(Expr::parse("widht <= 4", kVars, e, &error));
    EXPECT_NE(error.find("widht"), std::string::npos) << error;
}

TEST(Expr, SyntaxErrorsRejected)
{
    Expr e;
    std::string error;
    for (const char *bad :
         {"", "1 +", "(1 + 2", "1 2", "&& 1", "width <", "1 = 2"}) {
        EXPECT_FALSE(Expr::parse(bad, kVars, e, &error))
            << "'" << bad << "' parsed";
    }
}

TEST(Expr, ReferencedVariablesDeduplicatedInParseOrder)
{
    Expr e;
    std::string error;
    ASSERT_TRUE(Expr::parse("window + width * width", kVars, e,
                            &error))
        << error;
    ASSERT_EQ(e.referenced().size(), 2u);
    EXPECT_EQ(e.referenced()[0], 1u); // window first
    EXPECT_EQ(e.referenced()[1], 0u);
}

TEST(Expr, EmptyAndTextRoundTrip)
{
    Expr e;
    EXPECT_TRUE(e.empty());
    std::string error;
    ASSERT_TRUE(Expr::parse("width <= 8", kVars, e, &error));
    EXPECT_FALSE(e.empty());
    EXPECT_EQ(e.text(), "width <= 8");
}

TEST(Expr, EvaluationIsBitStable)
{
    Expr e;
    std::string error;
    ASSERT_TRUE(Expr::parse("cpi + 0.001 * window / width", kVars, e,
                            &error));
    const std::vector<double> v = {3.0, 48.0, 0.73};
    const double first = e.eval(v);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(e.eval(v), first);
}

} // namespace
} // namespace fosm::opt
