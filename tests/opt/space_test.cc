/**
 * @file
 * Design-space tests: cardinality (including overflow saturation),
 * the odometer enumeration order every ordinal-based tie-break keys
 * off, constraint and cluster-divisibility filtering, and the member
 * accessor table.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "opt/space.hh"

namespace fosm::opt {
namespace {

AxisSpec
axis(const std::string &name, std::vector<std::uint64_t> values)
{
    AxisSpec a;
    a.name = name;
    a.values = std::move(values);
    return a;
}

TEST(Space, CardinalityIsTheUnfilteredProduct)
{
    SpaceSpec spec;
    EXPECT_EQ(spec.cardinality(), 1u); // no axes: the baseline alone

    spec.axes.push_back(axis("width", {2, 4}));
    spec.axes.push_back(axis("deltaD", {100, 200, 300}));
    EXPECT_EQ(spec.cardinality(), 6u);

    spec.axes.push_back(axis("deltaI", {}));
    EXPECT_EQ(spec.cardinality(), 0u); // any empty axis empties it
}

TEST(Space, CardinalitySaturatesOnOverflow)
{
    // 5 axes x 8192 values = 2^65 points: must saturate, not wrap.
    SpaceSpec spec;
    std::vector<std::uint64_t> big(8192);
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = i + 1;
    for (const char *name :
         {"width", "frontEndDepth", "windowSize", "deltaI", "deltaD"})
        spec.axes.push_back(axis(name, big));
    EXPECT_EQ(spec.cardinality(),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Space, OdometerOrderLastAxisFastest)
{
    SpaceSpec spec;
    spec.axes.push_back(axis("width", {2, 4}));
    spec.axes.push_back(axis("deltaD", {100, 200, 300}));
    const EnumeratedSpace space = enumerate(spec);
    ASSERT_EQ(space.machines.size(), 6u);
    EXPECT_EQ(space.infeasible, 0u);
    const std::uint64_t expected[6][2] = {
        {2, 100}, {2, 200}, {2, 300}, {4, 100}, {4, 200}, {4, 300}};
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(space.machines[i].width, expected[i][0]) << i;
        EXPECT_EQ(space.machines[i].deltaD, expected[i][1]) << i;
    }
}

TEST(Space, UnsweptMembersComeFromTheBaseline)
{
    SpaceSpec spec;
    spec.baseline.robSize = 256;
    spec.axes.push_back(axis("width", {2, 4}));
    const EnumeratedSpace space = enumerate(spec);
    ASSERT_EQ(space.machines.size(), 2u);
    for (const MachineConfig &m : space.machines)
        EXPECT_EQ(m.robSize, 256u);
}

TEST(Space, ConstraintFiltersAndCountsInfeasible)
{
    SpaceSpec spec;
    spec.axes.push_back(axis("width", {2, 4, 6, 8}));
    std::string error;
    ASSERT_TRUE(Expr::parse("width < 5", machineVariableNames(),
                            spec.constraint, &error))
        << error;
    const EnumeratedSpace space = enumerate(spec);
    ASSERT_EQ(space.machines.size(), 2u);
    EXPECT_EQ(space.infeasible, 2u);
    EXPECT_EQ(space.machines[0].width, 2u);
    EXPECT_EQ(space.machines[1].width, 4u);
}

TEST(Space, ConstraintSeesAliases)
{
    SpaceSpec spec;
    spec.axes.push_back(axis("windowSize", {32, 64, 128}));
    std::string error;
    ASSERT_TRUE(Expr::parse("window <= 64", machineVariableNames(),
                            spec.constraint, &error))
        << error;
    const EnumeratedSpace space = enumerate(spec);
    ASSERT_EQ(space.machines.size(), 2u);
    EXPECT_EQ(space.infeasible, 1u);
}

TEST(Space, ClusterDivisibilityRuleApplies)
{
    // width and windowSize must both divide by clusters — the same
    // rule machineFromJson enforces on single requests.
    SpaceSpec spec;
    spec.baseline.clusters = 2;
    spec.axes.push_back(axis("width", {2, 3, 4}));
    const EnumeratedSpace space = enumerate(spec);
    ASSERT_EQ(space.machines.size(), 2u);
    EXPECT_EQ(space.infeasible, 1u); // width 3 % 2 != 0
    EXPECT_EQ(space.machines[0].width, 2u);
    EXPECT_EQ(space.machines[1].width, 4u);
}

TEST(Space, MemberAccessorsRoundTrip)
{
    const auto &names = machineMemberNames();
    ASSERT_EQ(names.size(), 9u);
    MachineConfig m;
    std::uint64_t v = 11;
    for (const std::string &name : names) {
        ASSERT_TRUE(setMachineMember(m, name, v)) << name;
        EXPECT_EQ(machineMember(m, name), v) << name;
        ++v;
    }
    EXPECT_FALSE(setMachineMember(m, "bogus", 1));
    EXPECT_EQ(machineMember(m, "bogus"), 0u);
}

TEST(Space, CanonicalMemberNameResolvesAliases)
{
    EXPECT_EQ(canonicalMemberName("width"), "width");
    EXPECT_EQ(canonicalMemberName("depth"), "frontEndDepth");
    EXPECT_EQ(canonicalMemberName("window"), "windowSize");
    EXPECT_EQ(canonicalMemberName("rob"), "robSize");
    EXPECT_EQ(canonicalMemberName("bogus"), "");
    // Variable names = 9 members + 3 aliases.
    EXPECT_EQ(machineVariableNames().size(), 12u);
}

} // namespace
} // namespace fosm::opt
