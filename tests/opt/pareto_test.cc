/**
 * @file
 * Pareto-frontier tests: dominance over minimization scores,
 * first-ordinal tie-breaking for bitwise-equal vectors, agreement
 * with a naive O(n^2) reference over a deterministic pseudo-random
 * set, and the single-objective argmin.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "opt/pareto.hh"

namespace fosm::opt {
namespace {

std::vector<double>
flatten(const std::vector<std::vector<double>> &points)
{
    std::vector<double> scores;
    for (const auto &p : points)
        scores.insert(scores.end(), p.begin(), p.end());
    return scores;
}

/** Textbook O(n^2) dominance with the same first-index-wins rule. */
std::vector<std::size_t>
referenceFrontier(const std::vector<std::vector<double>> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated;
             ++j) {
            if (j == i)
                continue;
            bool allLe = true, anyLt = false;
            for (std::size_t k = 0; k < points[i].size(); ++k) {
                allLe = allLe && points[j][k] <= points[i][k];
                anyLt = anyLt || points[j][k] < points[i][k];
            }
            if (allLe && anyLt)
                dominated = true; // strictly dominated
            else if (allLe && !anyLt && j < i)
                dominated = true; // bitwise tie: first index wins
        }
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

TEST(Pareto, TwoObjectiveFrontier)
{
    const std::vector<std::vector<double>> points = {
        {1, 3}, {2, 2}, {3, 1}, {2, 3}, {3, 3}};
    const auto frontier = paretoFrontier(flatten(points), 2);
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, EqualVectorsKeepOnlyTheFirstOrdinal)
{
    const std::vector<std::vector<double>> points = {
        {1, 1}, {1, 1}, {2, 2}, {1, 1}};
    const auto frontier = paretoFrontier(flatten(points), 2);
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0}));
}

TEST(Pareto, SingleObjectiveFrontierIsTheFirstMinimum)
{
    const std::vector<double> scores = {3, 1, 2, 1};
    EXPECT_EQ(paretoFrontier(scores, 1),
              (std::vector<std::size_t>{1}));
    EXPECT_EQ(argminFirstObjective(scores, 1), 1u);
}

TEST(Pareto, ArgminBreaksTiesByLowestIndex)
{
    // Two objectives; argmin looks only at column 0.
    const std::vector<std::vector<double>> points = {
        {2, 0}, {1, 9}, {1, 0}, {3, 0}};
    EXPECT_EQ(argminFirstObjective(flatten(points), 2), 1u);
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(paretoFrontier({}, 2).empty());
}

TEST(Pareto, SinglePointIsItsOwnFrontier)
{
    EXPECT_EQ(paretoFrontier({5.0, 7.0}, 2),
              (std::vector<std::size_t>{0}));
}

TEST(Pareto, AgreesWithNaiveReferenceOnPseudoRandomSets)
{
    // Deterministic LCG: the same set every run, every platform.
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    const auto next = [&] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((state >> 33) % 97);
    };
    for (const std::size_t nObj : {2u, 3u}) {
        std::vector<std::vector<double>> points;
        for (std::size_t i = 0; i < 300; ++i) {
            std::vector<double> p;
            for (std::size_t k = 0; k < nObj; ++k)
                p.push_back(next());
            points.push_back(std::move(p));
        }
        EXPECT_EQ(paretoFrontier(flatten(points), nObj),
                  referenceFrontier(points))
            << nObj << " objectives";
    }
}

TEST(Pareto, FrontierIndicesAscending)
{
    const std::vector<std::vector<double>> points = {
        {5, 1}, {1, 5}, {3, 3}, {4, 2}, {2, 4}};
    const auto frontier = paretoFrontier(flatten(points), 2);
    EXPECT_TRUE(std::is_sorted(frontier.begin(), frontier.end()));
    EXPECT_EQ(frontier.size(), 5u); // nothing dominates anything
}

} // namespace
} // namespace fosm::opt
