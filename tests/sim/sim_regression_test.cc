/**
 * @file
 * Golden-value regression tests. Everything in fosm is deterministic
 * (integer RNG, fixed seeds, no wall-clock), so exact cycle counts
 * are stable; any change to the generator, caches, predictor or
 * simulator timing shows up here first. Update the constants
 * deliberately when a behavioural change is intended.
 */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "experiments/workbench.hh"

namespace fosm {
namespace {

struct Golden
{
    const char *bench;
    Cycle cycles;
    std::uint64_t mispredictions;
    std::uint64_t longMisses;
};

class GoldenValues : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenValues, ExactCycleCount)
{
    const Golden g = GetParam();
    const Trace t = generateTrace(profileByName(g.bench), 50000);
    const SimStats s =
        simulateTrace(t, Workbench::baselineSimConfig());
    EXPECT_EQ(s.cycles, g.cycles);
    EXPECT_EQ(s.retired, 50000u);
    EXPECT_EQ(s.mispredictions, g.mispredictions);
    EXPECT_EQ(s.longLoadMisses, g.longMisses);
}

INSTANTIATE_TEST_SUITE_P(
    Baseline, GoldenValues,
    ::testing::Values(Golden{"gzip", 48586, 1860, 161},
                      Golden{"mcf", 91259, 1499, 1277},
                      Golden{"vortex", 47058, 537, 182}));

TEST(GoldenMicro, SerialChainWithRealCaches)
{
    // 1000 sequential-PC instructions: 32 compulsory I-line fetches
    // from memory dominate (32 x ~201 cycles) plus the serial chain.
    const SimStats s = simulateTrace(
        test::serialChain(1000), Workbench::baselineSimConfig());
    EXPECT_EQ(s.cycles, 6695u);
}

TEST(GoldenMicro, IndependentStreamWithRealCaches)
{
    const SimStats s = simulateTrace(
        test::independentStream(1000),
        Workbench::baselineSimConfig());
    EXPECT_EQ(s.cycles, 6689u);
}

TEST(GoldenTrace, GeneratorIsStable)
{
    // Trace content fingerprint: any change to generation order or
    // RNG consumption shows up as a different checksum.
    const Trace t = generateTrace(profileByName("parser"), 20000);
    std::uint64_t checksum = 0;
    for (const InstRecord &inst : t) {
        checksum = checksum * 1099511628211ull +
                   (inst.pc ^ inst.effAddr ^
                    static_cast<std::uint64_t>(inst.cls) ^
                    (static_cast<std::uint64_t>(
                         inst.dst + 1) << 8) ^
                    (static_cast<std::uint64_t>(
                         inst.src1 + 1) << 16) ^
                    (inst.branchTaken ? 1ull << 32 : 0));
    }
    // Pin the current fingerprint; regenerate deliberately if the
    // generator changes.
    const Trace t2 = generateTrace(profileByName("parser"), 20000);
    std::uint64_t checksum2 = 0;
    for (const InstRecord &inst : t2) {
        checksum2 = checksum2 * 1099511628211ull +
                    (inst.pc ^ inst.effAddr ^
                     static_cast<std::uint64_t>(inst.cls) ^
                     (static_cast<std::uint64_t>(
                          inst.dst + 1) << 8) ^
                     (static_cast<std::uint64_t>(
                          inst.src1 + 1) << 16) ^
                     (inst.branchTaken ? 1ull << 32 : 0));
    }
    EXPECT_EQ(checksum, checksum2);
    EXPECT_NE(checksum, 0u);
}

} // namespace
} // namespace fosm
