/** @file Dedicated simulator tests for functional-unit pools. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "experiments/workbench.hh"

namespace fosm {
namespace {

SimConfig
idealWithPools(const FuPoolConfig &pools)
{
    SimConfig c = Workbench::baselineSimConfig();
    c.options.idealBranchPredictor = true;
    c.options.idealIcache = true;
    c.options.idealDcache = true;
    c.fuPools = pools;
    return c;
}

TEST(FuPoolSim, BranchesShareAluPool)
{
    // Alternating ALU and branch with a single ALU unit: the shared
    // pool serves one operation per cycle total.
    test::TraceBuilder b;
    for (int i = 0; i < 3000; ++i) {
        if (i % 2 == 0)
            b.alu(static_cast<RegIndex>(i % 32));
        else
            b.branch(false);
    }
    FuPoolConfig pools;
    pools.intAlu = {1, true};
    const SimStats s = simulateTrace(b.take(), idealWithPools(pools));
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);
}

TEST(FuPoolSim, StoresConsumeMemPort)
{
    test::TraceBuilder b;
    for (int i = 0; i < 3000; ++i) {
        if (i % 2 == 0)
            b.load(static_cast<RegIndex>(i % 32), 0x10000000ull);
        else
            b.store(0x10000100ull);
    }
    FuPoolConfig pools;
    pools.memPort = {1, true};
    const SimStats s = simulateTrace(b.take(), idealWithPools(pools));
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);

    // With two ports the stream is width-limited again.
    pools.memPort = {2, true};
    test::TraceBuilder b2;
    for (int i = 0; i < 3000; ++i) {
        if (i % 2 == 0)
            b2.load(static_cast<RegIndex>(i % 32), 0x10000000ull);
        else
            b2.store(0x10000100ull);
    }
    const SimStats s2 =
        simulateTrace(b2.take(), idealWithPools(pools));
    EXPECT_NEAR(s2.ipc(), 2.0, 0.1);
}

TEST(FuPoolSim, NonBindingPoolIsFree)
{
    // Plenty of every unit: IPC equals the unbounded machine.
    const Trace t = test::independentStream(5000);
    const SimStats bounded =
        simulateTrace(t, idealWithPools(FuPoolConfig::typical4Wide()));
    FuPoolConfig none;
    const SimStats unbounded =
        simulateTrace(t, idealWithPools(none));
    EXPECT_EQ(bounded.cycles, unbounded.cycles);
}

TEST(FuPoolSim, MixedPipelinedUnpipelined)
{
    // 1 in 10 instructions is a divide with one unpipelined divider:
    // each issued instruction carries 0.1 divides x 12 cycles = 1.2
    // divider-cycles of demand, so the divider's unit utilization
    // bounds IPC at 1/1.2 ~ 0.83 - far below the width of 4. This
    // is exactly the effectiveIssueWidth formula the model uses.
    test::TraceBuilder b;
    for (int i = 0; i < 4000; ++i) {
        if (i % 10 == 0)
            b.add(InstClass::IntDiv, static_cast<RegIndex>(i % 32));
        else
            b.alu(static_cast<RegIndex>(i % 32));
    }
    FuPoolConfig pools;
    pools.intDiv = {1, false};
    const SimStats s = simulateTrace(b.take(), idealWithPools(pools));
    EXPECT_NEAR(s.ipc(), 1.0 / 1.2, 0.1);
}

TEST(FuPoolSim, NoDeadlockUnderStarvation)
{
    // Everything scarce, dependent workload: must still complete.
    const Trace t = generateTrace(profileByName("vpr"), 20000);
    FuPoolConfig pools;
    pools.intAlu = {1, true};
    pools.intMul = {1, false};
    pools.intDiv = {1, false};
    pools.fpAlu = {1, false};
    pools.memPort = {1, true};
    const SimStats s = simulateTrace(t, idealWithPools(pools));
    EXPECT_EQ(s.retired, 20000u);
    EXPECT_GT(s.ipc(), 0.1);
    EXPECT_LT(s.ipc(), 2.0);
}

TEST(FuPoolSim, OldestFirstPriorityPreserved)
{
    // With one ALU, a younger ready instruction cannot bypass an
    // older ready one: retirement stays strictly in order and the
    // total cycle count equals the instruction count plus startup.
    const SimStats s = simulateTrace(
        test::independentStream(2000),
        idealWithPools([] {
            FuPoolConfig p;
            p.intAlu = {1, true};
            return p;
        }()));
    EXPECT_NEAR(static_cast<double>(s.cycles), 2000.0, 20.0);
}

} // namespace
} // namespace fosm
