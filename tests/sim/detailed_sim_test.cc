/** @file Cycle-level tests for the detailed simulator. */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "sim/detailed_sim.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace fosm {
namespace {

/** Baseline machine with every miss source idealized. */
SimConfig
idealConfig()
{
    SimConfig c;
    c.machine.width = 4;
    c.machine.frontEndDepth = 5;
    c.machine.windowSize = 48;
    c.machine.robSize = 128;
    c.options.idealBranchPredictor = true;
    c.options.idealIcache = true;
    c.options.idealDcache = true;
    c.syncMissDelays();
    return c;
}

TEST(DetailedSim, SingleInstructionLatency)
{
    test::TraceBuilder b;
    b.alu(1);
    const SimStats s = simulateTrace(b.take(), idealConfig());
    EXPECT_EQ(s.retired, 1u);
    // Fetch at 0, dispatch at DeltaP, issue one cycle later,
    // complete and retire the cycle after: DeltaP + 3.
    EXPECT_EQ(s.cycles, 8u);
}

TEST(DetailedSim, IndependentStreamReachesWidth)
{
    const SimStats s =
        simulateTrace(test::independentStream(20000), idealConfig());
    EXPECT_NEAR(s.ipc(), 4.0, 0.05);
}

TEST(DetailedSim, SerialChainIpcOne)
{
    const SimStats s =
        simulateTrace(test::serialChain(5000), idealConfig());
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);
}

TEST(DetailedSim, WidthOneSerializes)
{
    SimConfig c = idealConfig();
    c.machine.width = 1;
    const SimStats s =
        simulateTrace(test::independentStream(5000), c);
    EXPECT_NEAR(s.ipc(), 1.0, 0.05);
}

TEST(DetailedSim, WindowOfOneStillFlows)
{
    SimConfig c = idealConfig();
    c.machine.windowSize = 1;
    c.machine.robSize = 4;
    const SimStats s =
        simulateTrace(test::independentStream(2000), c);
    EXPECT_NEAR(s.ipc(), 1.0, 0.1);
}

TEST(DetailedSim, NonUnitLatencySerialChain)
{
    // Serial chain of multiplies: one result every 3 cycles.
    test::TraceBuilder b;
    for (int i = 0; i < 2000; ++i)
        b.add(InstClass::IntMul, static_cast<RegIndex>(i % 2),
              i == 0 ? invalidReg
                     : static_cast<RegIndex>((i - 1) % 2));
    const SimStats s = simulateTrace(b.take(), idealConfig());
    EXPECT_NEAR(s.ipc(), 1.0 / 3.0, 0.02);
}

TEST(DetailedSim, CorrectlyPredictedBranchesFree)
{
    // All not-taken branches: the two-bit counters start at weakly
    // not-taken, so every prediction is correct and flow never stops.
    test::TraceBuilder b;
    for (int i = 0; i < 4000; ++i) {
        if (i % 4 == 3)
            b.branch(false);
        else
            b.alu(static_cast<RegIndex>(i % 32));
    }
    SimConfig c = idealConfig();
    c.options.idealBranchPredictor = false;
    const SimStats s = simulateTrace(b.take(), c);
    EXPECT_EQ(s.mispredictions, 0u);
    EXPECT_NEAR(s.ipc(), 4.0, 0.1);
}

/** Cycles for a stream with one mispredicted branch in the middle. */
Cycle
cyclesWithOneMispredict(std::uint32_t front_end_depth)
{
    test::TraceBuilder b;
    for (int i = 0; i < 1000; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    // First taken branch at a fresh PC: weakly-not-taken counter
    // mispredicts it deterministically.
    b.branch(true);
    for (int i = 0; i < 1000; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    SimConfig c = idealConfig();
    c.options.idealBranchPredictor = false;
    c.machine.frontEndDepth = front_end_depth;
    const SimStats s = simulateTrace(b.take(), c);
    EXPECT_EQ(s.mispredictions, 1u);
    return s.cycles;
}

TEST(DetailedSim, MispredictPenaltyNearModel)
{
    test::TraceBuilder base;
    for (int i = 0; i < 2000; ++i)
        base.alu(static_cast<RegIndex>(i % 32));
    base.branch(true);
    SimConfig ideal = idealConfig();
    const Cycle baseline =
        simulateTrace(base.take(), ideal).cycles;

    const Cycle with = cyclesWithOneMispredict(5);
    const double penalty =
        static_cast<double>(with) - static_cast<double>(baseline);
    // Isolated misprediction: at least the refill depth, at most
    // drain + DeltaP + ramp for this machine.
    EXPECT_GE(penalty, 5.0);
    EXPECT_LE(penalty, 16.0);
}

TEST(DetailedSim, MispredictPenaltyGrowsWithPipeDepth)
{
    const Cycle shallow = cyclesWithOneMispredict(5);
    const Cycle deep = cyclesWithOneMispredict(9);
    // Each extra front-end stage costs about one cycle per
    // misprediction (plus the one-time pipe fill of 4 cycles).
    const double diff =
        static_cast<double>(deep) - static_cast<double>(shallow);
    EXPECT_NEAR(diff, 8.0, 3.0); // 4 stages refill + 4 initial fill
}

/** Code loop over `bytes` of sequential code, `passes` times. */
Trace
codeLoopTrace(std::uint64_t bytes, int passes)
{
    test::TraceBuilder b;
    const std::uint64_t insts = bytes / 4;
    for (int p = 0; p < passes; ++p) {
        for (std::uint64_t i = 0; i < insts; ++i) {
            b.alu(static_cast<RegIndex>(i % 32))
                .at(0x10000 + i * 4);
        }
    }
    return b.take();
}

TEST(DetailedSim, IcacheMissPenaltyMatchesServiceLevel)
{
    // 16KB of code walked 16 times: 4x the L1I, well within L2. The
    // first pass misses to memory (compulsory), later passes are
    // L1I capacity misses served by L2 in DeltaI = 8 cycles.
    const Trace t = codeLoopTrace(16 * 1024, 16);
    SimConfig real = idealConfig();
    real.options.idealIcache = false;
    const SimStats with = simulateTrace(t, real);
    const SimStats ideal = simulateTrace(t, idealConfig());

    EXPECT_EQ(with.icacheL2Misses, 128u); // 16KB / 128B compulsory
    EXPECT_EQ(with.icacheL1Misses, 16u * 128u);

    const double measured = static_cast<double>(with.cycles) -
                            static_cast<double>(ideal.cycles);
    // Section 4.2: penalty per miss ~ its miss delay, so the total is
    // the mix of memory-serviced and L2-serviced misses.
    const double expected =
        static_cast<double>(with.icacheL2Misses) * 200.0 +
        static_cast<double>(with.icacheL1Misses -
                            with.icacheL2Misses) * 8.0;
    EXPECT_NEAR(measured, expected, 0.15 * expected);
}

TEST(DetailedSim, IcachePenaltyIndependentOfDepth)
{
    // Figure 11: per-miss penalty is independent of front-end depth.
    const Trace t = codeLoopTrace(16 * 1024, 16);

    auto penalty = [&](std::uint32_t depth) {
        SimConfig real = idealConfig();
        real.options.idealIcache = false;
        real.machine.frontEndDepth = depth;
        SimConfig ideal = idealConfig();
        ideal.machine.frontEndDepth = depth;
        const SimStats w = simulateTrace(t, real);
        const SimStats i = simulateTrace(t, ideal);
        return (static_cast<double>(w.cycles) -
                static_cast<double>(i.cycles)) /
               static_cast<double>(w.icacheL1Misses);
    };
    EXPECT_NEAR(penalty(5), penalty(9), 2.0);
}

/** Trace: pad alus, then `loads` cold loads `spacing` apart. */
Trace
loadTrace(int loads, int spacing, bool dependent = false)
{
    test::TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    RegIndex prev = invalidReg;
    for (int l = 0; l < loads; ++l) {
        const RegIndex dst = static_cast<RegIndex>(100 + l);
        b.load(dst, 0x40000000ull + l * 0x10000,
               dependent ? prev : invalidReg);
        prev = dst;
        for (int i = 0; i < spacing; ++i)
            b.alu(static_cast<RegIndex>(i % 32));
    }
    for (int i = 0; i < 500; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    return b.take();
}

TEST(DetailedSim, IsolatedLongMissPenaltyNearDeltaD)
{
    SimConfig real = idealConfig();
    real.options.idealDcache = false;
    const SimStats with = simulateTrace(loadTrace(1, 0), real);
    const SimStats ideal =
        simulateTrace(loadTrace(1, 0), idealConfig());
    EXPECT_EQ(with.longLoadMisses, 1u);
    const double penalty = static_cast<double>(with.cycles) -
                           static_cast<double>(ideal.cycles);
    // Equation (6): DeltaD - rob_fill (the stream behind the load is
    // independent, so the ROB fills at the dispatch width:
    // 128/4 = 32) -> ~200 - 32 = 168.
    EXPECT_GE(penalty, 140.0);
    EXPECT_LE(penalty, 205.0);
}

TEST(DetailedSim, OverlappedMissesShareOnePenalty)
{
    SimConfig real = idealConfig();
    real.options.idealDcache = false;

    const SimStats one = simulateTrace(loadTrace(1, 0), real);
    const SimStats ideal1 =
        simulateTrace(loadTrace(1, 0), idealConfig());
    const double isolated = static_cast<double>(one.cycles) -
                            static_cast<double>(ideal1.cycles);

    // Two independent loads 20 instructions apart: within the ROB,
    // their 200-cycle misses overlap (Figure 13).
    const SimStats two = simulateTrace(loadTrace(2, 20), real);
    const SimStats ideal2 =
        simulateTrace(loadTrace(2, 20), idealConfig());
    const double combined = static_cast<double>(two.cycles) -
                            static_cast<double>(ideal2.cycles);
    EXPECT_EQ(two.longLoadMisses, 2u);
    EXPECT_NEAR(combined, isolated, 30.0);
}

TEST(DetailedSim, DistantMissesSerialize)
{
    SimConfig real = idealConfig();
    real.options.idealDcache = false;
    // 400 instructions apart: far beyond the 128-entry ROB.
    const SimStats two = simulateTrace(loadTrace(2, 400), real);
    const SimStats ideal =
        simulateTrace(loadTrace(2, 400), idealConfig());
    const double combined = static_cast<double>(two.cycles) -
                            static_cast<double>(ideal.cycles);
    EXPECT_GT(combined, 280.0); // ~2 isolated penalties
}

TEST(DetailedSim, DependentMissesSerializeEvenWhenClose)
{
    SimConfig real = idealConfig();
    real.options.idealDcache = false;
    const SimStats dep =
        simulateTrace(loadTrace(2, 20, true), real);
    const SimStats indep =
        simulateTrace(loadTrace(2, 20, false), real);
    EXPECT_GT(dep.cycles, indep.cycles + 150);
}

TEST(DetailedSim, IsolationModeConvertsOverlaps)
{
    SimConfig iso = idealConfig();
    iso.options.idealDcache = false;
    iso.options.isolateDcacheMisses = true;
    const SimStats s = simulateTrace(loadTrace(2, 20), iso);
    // The second would-be miss became a hit.
    EXPECT_EQ(s.longLoadMisses, 1u);
}

TEST(DetailedSim, ShortMissCountedNotStalling)
{
    // Two L1D-conflicting lines that fit in L2; baseline L1D is 4KB
    // 4-way with 128B lines -> 8 sets, set stride 1KB.
    test::TraceBuilder b;
    for (int i = 0; i < 200; ++i)
        b.load(static_cast<RegIndex>(i % 32),
               0x10000000ull + (i % 8) * 0x400);
    SimConfig real = idealConfig();
    real.options.idealDcache = false;
    const SimStats s = simulateTrace(b.take(), real);
    EXPECT_GT(s.shortLoadMisses, 100u);
    EXPECT_EQ(s.longLoadMisses, 8u); // compulsory only
}

TEST(DetailedSim, RetireIsInOrder)
{
    // A long-latency op followed by fast ops: ROB must hold the fast
    // ops until the divide retires, so cycles reflect the stall.
    test::TraceBuilder b;
    b.add(InstClass::IntDiv, 1);
    for (int i = 0; i < 20; ++i)
        b.alu(static_cast<RegIndex>(2 + i % 30));
    const SimStats s = simulateTrace(b.take(), idealConfig());
    // Divide: fetch 0, dispatch 5, issue 6, complete 18, retire 18;
    // remaining 20 retire at 4/cycle: +5 cycles.
    EXPECT_GE(s.cycles, 19u);
    EXPECT_LE(s.cycles, 26u);
}

TEST(DetailedSim, WindowSizeMonotonicOnRealWorkload)
{
    const Trace t = generateTrace(profileByName("vortex"), 30000);
    SimConfig c = idealConfig();
    double prev = 0.0;
    for (std::uint32_t w : {8u, 16u, 32u, 64u}) {
        c.machine.windowSize = w;
        c.machine.robSize = 4 * w;
        const double ipc = simulateTrace(t, c).ipc();
        EXPECT_GE(ipc, prev - 0.05) << "window " << w;
        prev = ipc;
    }
}

TEST(DetailedSim, MispredictedBranchIssuesFromDrainedWindow)
{
    // Section 4.1 validation: few useful instructions left in the
    // window when a mispredicted branch issues.
    const Trace t = generateTrace(profileByName("gzip"), 50000);
    SimConfig c = idealConfig();
    c.options.idealBranchPredictor = false;
    const SimStats s = simulateTrace(t, c);
    ASSERT_GT(s.mispredictions, 100u);
    EXPECT_LT(s.windowAtBranchIssue.mean(), 10.0);
}

TEST(DetailedSim, MissedLoadIsOldAtIssue)
{
    // Section 4.3 validation: on average a long-missing load has few
    // instructions ahead of it in the ROB (paper: 9 on average, with
    // outliers up to 27).
    // The paper's experiment (Section 4.3), adapted to this front
    // end. With Figure 3's idealized never-ending fetch supply, the
    // ROB equilibrium is pegged full, so a missing load issues with
    // the ROB already full behind it: rob_fill ~ 0 and the isolated
    // penalty is ~ DeltaD - the same conclusion the paper reaches
    // from its measurement that the load is old at issue (their
    // simulator's front end had real fetch breaks, draining the ROB
    // between misses; see EXPERIMENTS.md).
    SimConfig c = idealConfig();
    c.options.idealDcache = false;
    c.options.isolateDcacheMisses = true;
    const SimStats s = simulateTrace(loadTrace(5, 2000), c);
    ASSERT_EQ(s.longLoadMisses, 5u);
    // ROB nearly full at issue => at most a few cycles of rob_fill.
    EXPECT_GT(s.robAheadOfMissedLoad.max(), 100.0);
}

TEST(DetailedSim, TimelineRecordsRetirement)
{
    SimConfig c = idealConfig();
    c.options.timelineBucketCycles = 16;
    const SimStats s =
        simulateTrace(test::independentStream(4000), c);
    ASSERT_FALSE(s.timeline.empty());
    std::uint64_t total = 0;
    for (std::uint32_t v : s.timeline)
        total += v;
    EXPECT_EQ(total, 4000u);
}

TEST(DetailedSim, OverlapCountersDuringLongMiss)
{
    // A cold load followed immediately by a mispredicted branch: the
    // misprediction begins while the miss is outstanding.
    test::TraceBuilder b;
    for (int i = 0; i < 100; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    b.load(1, 0x40000000ull);
    // Enough distance that the branch is fetched after the load has
    // issued and while its 200-cycle miss is outstanding.
    for (int i = 0; i < 100; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    b.branch(true); // mispredicted (cold counter)
    for (int i = 0; i < 100; ++i)
        b.alu(static_cast<RegIndex>(i % 32));
    SimConfig c = idealConfig();
    c.options.idealDcache = false;
    c.options.idealBranchPredictor = false;
    const SimStats s = simulateTrace(b.take(), c);
    EXPECT_EQ(s.mispredictsDuringLongMiss, 1u);
}

TEST(DetailedSimDeath, RejectsRobSmallerThanWindow)
{
    SimConfig c = idealConfig();
    c.machine.windowSize = 64;
    c.machine.robSize = 32;
    const Trace t = test::independentStream(10);
    EXPECT_DEATH(simulateTrace(t, c), "ROB");
}

} // namespace
} // namespace fosm
