/**
 * @file
 * Golden-statistics regression test for the detailed and window
 * simulators. The values below were generated from the seed
 * implementation (before the hot-path overhaul: O(1) window removal,
 * producer-wakeup lists, dead-cycle skipping) and pin the exact
 * cycle counts and event statistics for every workload profile under
 * four configurations:
 *
 *   - the baseline detailed-simulator config,
 *   - a "stress" config exercising clusters, limited FU pools, the
 *     data TLB and the fetch buffer at once,
 *   - a width-limited window simulation (W=32, issue 4),
 *   - an unbounded unit-latency window simulation (W=64).
 *
 * Any optimization of the simulator hot paths must keep every one of
 * these numbers bit-identical; a change here is a behavior change,
 * not a speedup.
 */

#include <gtest/gtest.h>

#include "experiments/workbench.hh"
#include "iw/window_sim.hh"

namespace fosm {
namespace {

constexpr std::uint64_t kInsts = 60000;

struct Golden
{
    const char *name;
    // Baseline detailed simulation.
    std::uint64_t cycles;
    std::uint64_t mispredictions;
    std::uint64_t icacheL1Misses;
    std::uint64_t icacheL2Misses;
    std::uint64_t shortLoadMisses;
    std::uint64_t longLoadMisses;
    std::uint64_t windowAtBranchCount;
    double windowAtBranchMean;
    std::uint64_t robAheadCount;
    double robAheadMean;
    std::uint64_t windowAtReturnCount;
    double windowAtReturnMean;
    // Stress config (clusters + FU pools + TLB + fetch buffer).
    std::uint64_t stressCycles;
    std::uint64_t stressDtlbLoadMisses;
    std::uint64_t stressDtlbStoreMisses;
    std::uint64_t stressLongLoadMisses;
    // Window simulations.
    std::uint64_t limitedCycles;
    std::uint64_t unboundedCycles;
};

const Golden kGolden[] = {
    {"bzip",
     55193, 2112, 7, 7, 309, 181,
     2112, 2.8323863636363615, 181, 34.298342541436469, 181, 10.453038674033158,
     61826, 41, 12, 181,
     15059, 5997},
    {"crafty",
     63416, 1948, 116, 69, 241, 176,
     1948, 2.4733059548254692, 176, 32.465909090909058, 176, 9.2045454545454568,
     67945, 34, 15, 176,
     15009, 5220},
    {"eon",
     39701, 432, 23, 23, 154, 127,
     432, 3.4745370370370385, 127, 63.999999999999979, 127, 10.677165354330706,
     43150, 18, 13, 128,
     15027, 5293},
    {"gap",
     39664, 153, 6, 6, 484, 229,
     153, 3.5424836601307192, 229, 89.375545851528329, 229, 13.724890829694324,
     42561, 75, 27, 229,
     15002, 4301},
    {"gcc",
     71625, 953, 321, 131, 360, 175,
     953, 1.8709338929695702, 175, 60.891428571428548, 175, 12.388571428571426,
     76193, 32, 21, 175,
     15102, 6086},
    {"gzip",
     55402, 2211, 8, 8, 252, 172,
     2211, 2.9565807327001341, 172, 27.616279069767451, 172, 11.686046511627907,
     61815, 55, 21, 172,
     15039, 5583},
    {"mcf",
     107213, 1778, 8, 8, 1673, 1470,
     1778, 5.3357705286839137, 1470, 68.402721088435342, 1470, 15.696598639455773,
     121983, 1332, 370, 1470,
     15001, 3887},
    {"parser",
     62278, 1216, 55, 45, 594, 260,
     1216, 3.3273026315789473, 260, 48.415384615384639, 260, 16.553846153846148,
     69376, 119, 47, 259,
     15131, 6475},
    {"perl",
     61805, 2686, 34, 34, 230, 175,
     2686, 1.9791511541325384, 175, 30.051428571428577, 175, 7.7485714285714264,
     67331, 40, 11, 174,
     15043, 5307},
    {"twolf",
     75400, 741, 5, 5, 936, 615,
     741, 8.6329284750337276, 615, 56.80325203252027, 615, 22.450406504065029,
     85817, 456, 134, 615,
     15069, 6318},
    {"vortex",
     51142, 602, 110, 64, 491, 187,
     602, 1.8438538205980046, 187, 68.604278074866315, 187, 6.1711229946524062,
     52775, 51, 29, 187,
     15001, 2792},
    {"vpr",
     75689, 984, 9, 9, 405, 204,
     984, 7.7134146341463383, 204, 29.941176470588232, 204, 20.004901960784306,
     95961, 63, 27, 204,
     19805, 14946},
};

SimConfig
stressConfig()
{
    SimConfig cfg = Workbench::baselineSimConfig();
    cfg.machine.clusters = 2;
    cfg.machine.interClusterDelay = 2;
    cfg.fuPools.intAlu = {4, true};
    cfg.fuPools.intMul = {1, true};
    cfg.fuPools.intDiv = {1, false};
    cfg.fuPools.fpAlu = {2, true};
    cfg.fuPools.memPort = {2, true};
    cfg.dtlb.enabled = true;
    cfg.options.fetchBufferEntries = 16;
    cfg.options.fetchBandwidth = 8;
    cfg.syncMissDelays();
    return cfg;
}

class GoldenStatsTest : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenStatsTest, BaselineDetailedSim)
{
    const Golden &g = GetParam();
    const Trace trace = generateTrace(profileByName(g.name), kInsts);
    const SimStats s =
        simulateTrace(trace, Workbench::baselineSimConfig());

    EXPECT_EQ(s.cycles, g.cycles);
    EXPECT_EQ(s.mispredictions, g.mispredictions);
    EXPECT_EQ(s.icacheL1Misses, g.icacheL1Misses);
    EXPECT_EQ(s.icacheL2Misses, g.icacheL2Misses);
    EXPECT_EQ(s.shortLoadMisses, g.shortLoadMisses);
    EXPECT_EQ(s.longLoadMisses, g.longLoadMisses);
    EXPECT_EQ(s.windowAtBranchIssue.count(), g.windowAtBranchCount);
    EXPECT_DOUBLE_EQ(s.windowAtBranchIssue.mean(),
                     g.windowAtBranchMean);
    EXPECT_EQ(s.robAheadOfMissedLoad.count(), g.robAheadCount);
    EXPECT_DOUBLE_EQ(s.robAheadOfMissedLoad.mean(), g.robAheadMean);
    EXPECT_EQ(s.windowAtMissReturn.count(), g.windowAtReturnCount);
    EXPECT_DOUBLE_EQ(s.windowAtMissReturn.mean(),
                     g.windowAtReturnMean);
}

TEST_P(GoldenStatsTest, StressDetailedSim)
{
    const Golden &g = GetParam();
    const Trace trace = generateTrace(profileByName(g.name), kInsts);
    const SimStats s = simulateTrace(trace, stressConfig());

    EXPECT_EQ(s.cycles, g.stressCycles);
    EXPECT_EQ(s.dtlbLoadMisses, g.stressDtlbLoadMisses);
    EXPECT_EQ(s.dtlbStoreMisses, g.stressDtlbStoreMisses);
    EXPECT_EQ(s.longLoadMisses, g.stressLongLoadMisses);
}

TEST_P(GoldenStatsTest, WindowSims)
{
    const Golden &g = GetParam();
    const Trace trace = generateTrace(profileByName(g.name), kInsts);

    WindowSimConfig lim;
    lim.windowSize = 32;
    lim.issueWidth = 4;
    EXPECT_EQ(simulateWindow(trace, lim).cycles, g.limitedCycles);

    WindowSimConfig unb;
    unb.windowSize = 64;
    unb.issueWidth = 0;
    unb.unitLatency = true;
    EXPECT_EQ(simulateWindow(trace, unb).cycles, g.unboundedCycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, GoldenStatsTest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(info.param.name);
    });

} // namespace
} // namespace fosm
