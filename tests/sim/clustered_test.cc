/** @file Tests for clustered issue windows (Section 7 future-work 3). */

#include <gtest/gtest.h>

#include "../test_util.hh"
#include "experiments/workbench.hh"

namespace fosm {
namespace {

SimConfig
idealClustered(std::uint32_t clusters)
{
    SimConfig c = Workbench::baselineSimConfig();
    c.machine.clusters = clusters;
    c.options.idealBranchPredictor = true;
    c.options.idealIcache = true;
    c.options.idealDcache = true;
    return c;
}

TEST(ClusteredSim, OneClusterIsBaseline)
{
    const Trace t = test::independentStream(10000);
    const SimStats base = simulateTrace(t, idealClustered(1));
    EXPECT_NEAR(base.ipc(), 4.0, 0.05);
}

TEST(ClusteredSim, IndependentStreamUnaffected)
{
    // No dependences cross clusters: splitting the window costs
    // nothing for fully parallel work.
    const Trace t = test::independentStream(10000);
    const SimStats split = simulateTrace(t, idealClustered(4));
    EXPECT_NEAR(split.ipc(), 4.0, 0.05);
}

TEST(ClusteredSim, SerialChainPaysForwardingDelay)
{
    // A serial chain dispatched round-robin: with K clusters every
    // producer-consumer hop crosses clusters (distance 1 is never a
    // multiple of K), so each hop costs 1 + interClusterDelay.
    const Trace t = test::serialChain(4000);
    const SimStats unified = simulateTrace(t, idealClustered(1));
    SimConfig c2 = idealClustered(2);
    c2.machine.interClusterDelay = 1;
    const SimStats split = simulateTrace(t, c2);
    EXPECT_NEAR(unified.ipc(), 1.0, 0.05);
    EXPECT_NEAR(split.ipc(), 0.5, 0.05);
}

TEST(ClusteredSim, LargerForwardingDelayHurtsMore)
{
    const Trace t = test::serialChain(3000);
    SimConfig slow = idealClustered(2);
    slow.machine.interClusterDelay = 3;
    const SimStats s = simulateTrace(t, slow);
    // Each hop takes 1 + 3 cycles.
    EXPECT_NEAR(s.ipc(), 0.25, 0.03);
}

TEST(ClusteredSim, MoreClustersNeverFaster)
{
    const Trace t =
        generateTrace(profileByName("gzip"), 30000);
    double prev = 1e18;
    for (std::uint32_t k : {1u, 2u, 4u}) {
        const SimStats s = simulateTrace(t, idealClustered(k));
        EXPECT_LE(s.ipc(), prev + 0.03) << "clusters " << k;
        prev = s.ipc();
    }
}

TEST(ClusteredSim, ShortDependenceWorkloadSuffersMost)
{
    const Trace chains = generateTrace(profileByName("vpr"), 30000);
    const Trace strands =
        generateTrace(profileByName("vortex"), 30000);
    auto slowdown = [&](const Trace &t) {
        const double base = simulateTrace(t, idealClustered(1)).ipc();
        const double split =
            simulateTrace(t, idealClustered(4)).ipc();
        return base / split;
    };
    EXPECT_GT(slowdown(chains), slowdown(strands));
}

TEST(ClusteredModel, TracksSimulation)
{
    Workbench bench;
    const WorkloadData &data = bench.workload("crafty");
    for (std::uint32_t k : {2u, 4u}) {
        MachineConfig machine = Workbench::baselineMachine();
        machine.clusters = k;
        const FirstOrderModel model(machine);
        const CpiBreakdown cpi =
            model.evaluate(data.iw, data.missProfile);
        SimConfig sim_config = Workbench::baselineSimConfig();
        sim_config.machine = machine;
        const SimStats sim = simulateTrace(data.trace, sim_config);
        EXPECT_LT(relativeError(cpi.total(), sim.cpi()), 0.2)
            << "clusters " << k;
    }
}

TEST(ClusteredSimDeath, RejectsIndivisibleWidth)
{
    SimConfig c = idealClustered(3); // width 4 not divisible by 3
    const Trace t = test::independentStream(10);
    EXPECT_DEATH(simulateTrace(t, c), "divisible");
}

} // namespace
} // namespace fosm
