/** @file HTTP parser goldens plus live-server behavior tests. */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hh"
#include "server/http.hh"

namespace fosm::server {
namespace {

// -- Request parsing goldens ---------------------------------------

TEST(HttpParse, SimpleGet)
{
    const std::string raw = "GET /healthz HTTP/1.1\r\n"
                            "Host: localhost\r\n"
                            "\r\n";
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpRequest(raw, 1 << 20, req, consumed, error),
              ParseStatus::Ok)
        << error;
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/healthz");
    EXPECT_EQ(req.path(), "/healthz");
    EXPECT_EQ(req.version, "HTTP/1.1");
    EXPECT_EQ(req.header("host"), "localhost");
    EXPECT_TRUE(req.keepAlive);
    EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParse, PostWithBody)
{
    const std::string raw = "POST /v1/cpi HTTP/1.1\r\n"
                            "Content-Type: application/json\r\n"
                            "Content-Length: 19\r\n"
                            "\r\n"
                            "{\"workload\":\"gzip\"}";
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpRequest(raw, 1 << 20, req, consumed, error),
              ParseStatus::Ok)
        << error;
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.body, "{\"workload\":\"gzip\"}");
    EXPECT_EQ(consumed, raw.size());
}

TEST(HttpParse, HeaderNamesLowercasedValuesTrimmed)
{
    const std::string raw = "GET / HTTP/1.1\r\n"
                            "X-MiXeD-CaSe:   spaced value  \r\n"
                            "\r\n";
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpRequest(raw, 1 << 20, req, consumed, error),
              ParseStatus::Ok);
    EXPECT_EQ(req.header("x-mixed-case"), "spaced value");
}

TEST(HttpParse, QueryStringStripped)
{
    const std::string raw = "GET /metrics?format=text HTTP/1.1\r\n\r\n";
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpRequest(raw, 1 << 20, req, consumed, error),
              ParseStatus::Ok);
    EXPECT_EQ(req.target, "/metrics?format=text");
    EXPECT_EQ(req.path(), "/metrics");
}

TEST(HttpParse, IncompleteNeedsMoreBytes)
{
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(parseHttpRequest("GET / HT", 1 << 20, req, consumed,
                               error),
              ParseStatus::Incomplete);
    EXPECT_EQ(parseHttpRequest("POST / HTTP/1.1\r\n"
                               "Content-Length: 10\r\n\r\nabc",
                               1 << 20, req, consumed, error),
              ParseStatus::Incomplete);
}

TEST(HttpParse, PipelinedRemainderStaysInBuffer)
{
    const std::string one = "GET /a HTTP/1.1\r\n\r\n";
    const std::string raw = one + "GET /b HTTP/1.1\r\n\r\n";
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpRequest(raw, 1 << 20, req, consumed, error),
              ParseStatus::Ok);
    EXPECT_EQ(req.target, "/a");
    EXPECT_EQ(consumed, one.size());
}

TEST(HttpParse, MalformedRejected)
{
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    const char *bad[] = {
        "GARBAGE\r\n\r\n",
        "GET / HTTP/1.1 extra\r\n\r\n",
        "GET noslash HTTP/1.1\r\n\r\n",
        "GET / HTTP/2.0\r\n\r\n",
        "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    };
    for (const char *raw : bad) {
        EXPECT_EQ(parseHttpRequest(raw, 1 << 20, req, consumed,
                                   error),
                  ParseStatus::Bad)
            << raw;
    }
}

TEST(HttpParse, OversizedBodyRejected)
{
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(parseHttpRequest("POST / HTTP/1.1\r\n"
                               "Content-Length: 1000000\r\n\r\n",
                               1024, req, consumed, error),
              ParseStatus::TooLarge);
}

TEST(HttpParse, ConnectionCloseHonored)
{
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(parseHttpRequest("GET / HTTP/1.1\r\n"
                               "Connection: close\r\n\r\n",
                               1 << 20, req, consumed, error),
              ParseStatus::Ok);
    EXPECT_FALSE(req.keepAlive);
    // HTTP/1.0 defaults to close unless keep-alive is requested.
    ASSERT_EQ(parseHttpRequest("GET / HTTP/1.0\r\n\r\n", 1 << 20,
                               req, consumed, error),
              ParseStatus::Ok);
    EXPECT_FALSE(req.keepAlive);
}

// -- Response serialization goldens --------------------------------

TEST(HttpSerialize, GoldenResponseBytes)
{
    HttpResponse resp = HttpResponse::json(200, "{\"ok\":true}");
    EXPECT_EQ(serializeResponse(resp, true),
              "HTTP/1.1 200 OK\r\n"
              "Content-Type: application/json\r\n"
              "Content-Length: 11\r\n"
              "Connection: keep-alive\r\n"
              "\r\n"
              "{\"ok\":true}");
    EXPECT_EQ(serializeResponse(HttpResponse(404), false),
              "HTTP/1.1 404 Not Found\r\n"
              "Content-Length: 0\r\n"
              "Connection: close\r\n"
              "\r\n");
}

// -- Live server ---------------------------------------------------

/** Raw socket round trip: send bytes, read to EOF. */
std::string
rawRoundTrip(std::uint16_t port, const std::string &bytes)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

HttpServerConfig
testConfig()
{
    HttpServerConfig config;
    config.port = 0; // ephemeral
    config.workers = 2;
    return config;
}

TEST(HttpServer, ServesAndKeepsAlive)
{
    HttpServer server(testConfig(), [](const HttpRequest &req) {
        return HttpResponse::json(
            200, "{\"echo\":\"" + req.path() + "\"}");
    });
    server.start();

    HttpClient client("127.0.0.1", server.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/a", "", resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "{\"echo\":\"/a\"}");
    EXPECT_EQ(resp.header("connection"), "keep-alive");
    // Second request on the same connection.
    ASSERT_TRUE(client.request("POST", "/b", "x", resp));
    EXPECT_EQ(resp.body, "{\"echo\":\"/b\"}");

    server.requestStop();
    server.join();
    EXPECT_EQ(server.requestsServed(), 2u);
}

TEST(HttpServer, MalformedRequestGets400AndClose)
{
    HttpServer server(testConfig(), [](const HttpRequest &) {
        return HttpResponse::json(200, "{}");
    });
    server.start();
    const std::string reply =
        rawRoundTrip(server.port(), "NOT A REQUEST\r\n\r\n");
    EXPECT_EQ(reply.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u)
        << reply;
    EXPECT_NE(reply.find("Connection: close"), std::string::npos);
    server.requestStop();
    server.join();
}

TEST(HttpServer, HandlerExceptionBecomes500)
{
    HttpServer server(testConfig(), [](const HttpRequest &)
                          -> HttpResponse {
        throw std::runtime_error("boom \"quoted\"");
    });
    server.start();
    HttpClient client("127.0.0.1", server.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/x", "", resp));
    EXPECT_EQ(resp.status, 500);
    // The quote in the exception text must be JSON-escaped.
    EXPECT_EQ(resp.body, "{\"error\":\"boom \\\"quoted\\\"\"}");
    server.requestStop();
    server.join();
}

TEST(HttpServer, OverloadSheds503WithRetryAfter)
{
    std::mutex m;
    std::condition_variable cv;
    bool release = false;

    HttpServerConfig config = testConfig();
    config.workers = 1;
    config.queueCapacity = 1;
    config.retryAfterSeconds = 7;
    HttpServer server(config, [&](const HttpRequest &) {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
        return HttpResponse::json(200, "{\"slow\":true}");
    });
    server.start();

    // 6 concurrent clients against 1 worker + 1 queue slot: at least
    // 4 must be shed with 503, never a crash or a hang.
    constexpr int clients = 6;
    std::vector<std::thread> threads;
    std::atomic<int> got200{0}, got503{0}, other{0};
    std::atomic<bool> sawRetryAfter{false};
    for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&] {
            HttpClient client("127.0.0.1", server.port());
            ClientResponse resp;
            if (!client.request("POST", "/slow", "{}", resp)) {
                other.fetch_add(1);
                return;
            }
            if (resp.status == 200) {
                got200.fetch_add(1);
            } else if (resp.status == 503) {
                got503.fetch_add(1);
                if (resp.header("retry-after") == "7")
                    sawRetryAfter.store(true);
            } else {
                other.fetch_add(1);
            }
        });
    }

    // Wait until the server has actually shed load, then release the
    // worker so the accepted requests finish.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server.requestsRejected() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(server.requestsRejected(), 1u);
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(got200.load() + got503.load() + other.load(), clients);
    EXPECT_GE(got200.load(), 1);
    EXPECT_GE(got503.load(), 1);
    EXPECT_EQ(other.load(), 0);
    EXPECT_TRUE(sawRetryAfter.load());

    server.requestStop();
    server.join();
}

TEST(HttpServer, GracefulShutdownDrainsInflight)
{
    std::atomic<bool> entered{false};
    HttpServer server(testConfig(), [&](const HttpRequest &) {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return HttpResponse::json(200, "{\"done\":true}");
    });
    server.start();

    std::atomic<bool> gotResponse{false};
    std::thread client([&] {
        HttpClient c("127.0.0.1", server.port());
        ClientResponse resp;
        if (c.request("GET", "/slow", "", resp) &&
            resp.status == 200 && resp.body == "{\"done\":true}") {
            gotResponse.store(true);
        }
    });
    // Initiate shutdown while the request is being handled.
    while (!entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.requestStop();
    server.join();
    client.join();
    EXPECT_TRUE(gotResponse.load());
    EXPECT_EQ(server.requestsServed(), 1u);
}

TEST(HttpServer, MultiAcceptorServesConcurrentClients)
{
    HttpServerConfig config = testConfig();
    config.ioThreads = 3; // SO_REUSEPORT: three accept loops
    HttpServer server(config, [](const HttpRequest &req) {
        return HttpResponse::json(
            200, "{\"echo\":\"" + req.path() + "\"}");
    });
    server.start();

    constexpr int clients = 8;
    constexpr int perClient = 25;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            HttpClient client("127.0.0.1", server.port());
            ClientResponse resp;
            for (int i = 0; i < perClient; ++i) {
                const std::string path =
                    "/c" + std::to_string(c) + "/" +
                    std::to_string(i);
                if (client.request("GET", path, "", resp) &&
                    resp.status == 200 &&
                    resp.body ==
                        "{\"echo\":\"" + path + "\"}") {
                    ok.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), clients * perClient);

    server.requestStop();
    server.join();
    EXPECT_EQ(server.requestsServed(),
              static_cast<std::uint64_t>(clients * perClient));
}

TEST(HttpServer, MultiAcceptorGracefulShutdownDrains)
{
    HttpServerConfig config = testConfig();
    config.ioThreads = 2;
    std::atomic<bool> entered{false};
    HttpServer server(config, [&](const HttpRequest &) {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return HttpResponse::json(200, "{\"done\":true}");
    });
    server.start();

    std::atomic<bool> gotResponse{false};
    std::thread client([&] {
        HttpClient c("127.0.0.1", server.port());
        ClientResponse resp;
        if (c.request("GET", "/slow", "", resp) &&
            resp.status == 200) {
            gotResponse.store(true);
        }
    });
    while (!entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.requestStop();
    server.join();
    client.join();
    EXPECT_TRUE(gotResponse.load());
}

TEST(HttpServer, BatchedWorkersServeBackToBackRequests)
{
    HttpServerConfig config = testConfig();
    config.workers = 1;  // one consumer, so batches actually form
    config.batchSize = 8;
    std::atomic<int> handled{0};
    HttpServer server(config, [&](const HttpRequest &) {
        handled.fetch_add(1);
        return HttpResponse::json(200, "{}");
    });
    server.start();

    // Several clients queue up faster than the single worker drains,
    // exercising the popBatch path; every request must be answered
    // exactly once on the right connection.
    constexpr int clients = 6;
    constexpr int perClient = 20;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            HttpClient client("127.0.0.1", server.port());
            ClientResponse resp;
            for (int i = 0; i < perClient; ++i) {
                if (client.request("GET", "/b", "", resp) &&
                    resp.status == 200)
                    ok.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), clients * perClient);
    EXPECT_EQ(handled.load(), clients * perClient);

    server.requestStop();
    server.join();
}

TEST(HttpServer, StopFdTriggersShutdown)
{
    HttpServer server(testConfig(), [](const HttpRequest &) {
        return HttpResponse::json(200, "{}");
    });
    server.start();
    // One byte on the self-pipe — exactly what a signal handler does.
    const char b = 's';
    ASSERT_EQ(::write(server.stopFd(), &b, 1), 1);
    server.join(); // must return; a hang here fails via test timeout
    SUCCEED();
}

} // namespace
} // namespace fosm::server
