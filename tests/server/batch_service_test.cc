/**
 * @file
 * /v1/batch tests: per-row results bit-identical to /v1/cpi (the
 * cache-sharing contract), top-level and per-row validation, the
 * binary gateway wire format round-tripping to the same digests and
 * bytes as the JSON path, deadline shedding of partially evaluated
 * batches, and the startup schema pin on the persistent store.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/version.hh"
#include "server/service.hh"
#include "store/store.hh"

#include "../store/store_test_util.hh"

namespace fosm::server {
namespace {

MetricsRegistry &
sharedRegistry()
{
    static MetricsRegistry registry;
    return registry;
}

ModelService &
sharedService()
{
    static ModelService *service = [] {
        ::setenv("FOSM_TRACE_INSTS", "5000", 1);
        return new ModelService(ServiceConfig{}, sharedRegistry());
    }();
    return *service;
}

/** {workload, machine: shared, rows: [...]} */
json::Value
batchBody(const std::string &workload, json::Value sharedMachine,
          std::vector<json::Value> rows)
{
    json::Value body = json::Value::object();
    body.set("workload", workload);
    if (sharedMachine.isObject())
        body.set("machine", std::move(sharedMachine));
    json::Value arr = json::Value::array();
    for (json::Value &row : rows)
        arr.push(std::move(row));
    body.set("rows", std::move(arr));
    return body;
}

json::Value
deltaDRow(std::uint64_t deltaD)
{
    json::Value row = json::Value::object();
    row.set("deltaD", deltaD);
    return row;
}

double
columnAt(const json::Value &response, const char *column,
         std::size_t i)
{
    const json::Value *cpi = response.find("cpi");
    EXPECT_NE(cpi, nullptr);
    const json::Value *col = cpi->find(column);
    EXPECT_NE(col, nullptr);
    return col->items()[i].asDouble();
}

int
statusOfBatch(ModelService &service, const json::Value &body)
{
    try {
        service.batch(body);
        return 200;
    } catch (const ServiceError &e) {
        return e.status();
    }
}

// -- Bit-identity with the single-request path ---------------------

TEST(BatchService, RowsBitIdenticalToSingleRequests)
{
    ModelService &service = sharedService();
    json::Value shared = json::Value::object();
    shared.set("windowSize", 64);

    std::vector<json::Value> rows;
    for (const std::uint64_t d : {100u, 250u, 400u})
        rows.push_back(deltaDRow(d));
    {
        json::Value wide = json::Value::object();
        wide.set("width", 8);
        rows.push_back(std::move(wide));
    }
    const json::Value body =
        batchBody("gcc", shared, std::move(rows));
    const json::Value response = service.batch(body);
    ASSERT_EQ(response.find("rows")->asDouble(), 4.0);

    // Each row must serve the exact bytes /v1/cpi serves for the
    // merged machine — same doubles, same cache entry.
    const json::Value *reqRows = body.find("rows");
    for (std::size_t i = 0; i < reqRows->items().size(); ++i) {
        json::Value single = json::Value::object();
        single.set("workload", "gcc");
        json::Value machine = shared;
        for (const auto &member : reqRows->items()[i].members())
            machine.set(member.first, member.second);
        single.set("machine", std::move(machine));
        const json::Value direct = service.cpi(single);

        const json::Value *cpi = direct.find("cpi");
        ASSERT_NE(cpi, nullptr) << i;
        for (const char *c :
             {"ideal", "brmisp", "icacheL1", "icacheL2",
              "dcacheLong", "dtlb", "total"}) {
            EXPECT_EQ(columnAt(response, c, i),
                      cpi->find(c)->asDouble())
                << "row " << i << " column " << c;
        }
        EXPECT_EQ(response.find("ipc")->items()[i].asDouble(),
                  direct.find("ipc")->asDouble())
            << i;
        EXPECT_TRUE(
            response.find("errors")->items()[i].isNull())
            << i;
    }
}

TEST(BatchService, SingleRowBatchWorks)
{
    ModelService &service = sharedService();
    const json::Value response = service.batch(
        batchBody("mcf", json::Value(), {deltaDRow(333)}));
    EXPECT_EQ(response.find("rows")->asDouble(), 1.0);
    EXPECT_TRUE(response.find("errors")->items()[0].isNull());
    EXPECT_GT(columnAt(response, "total", 0), 0.0);
}

// -- Top-level and per-row validation ------------------------------

TEST(BatchService, EmptyRowsRejectedWith400)
{
    ModelService &service = sharedService();
    EXPECT_EQ(statusOfBatch(service, batchBody("gcc", json::Value(),
                                               {})),
              400);
    // Missing rows entirely.
    json::Value body = json::Value::object();
    body.set("workload", "gcc");
    EXPECT_EQ(statusOfBatch(service, body), 400);
    // Unknown top-level member.
    json::Value odd = batchBody("gcc", json::Value(), {deltaDRow(1)});
    odd.set("bogus", 1);
    EXPECT_EQ(statusOfBatch(service, odd), 400);
}

TEST(BatchService, OversizeBatchRejectedWith413)
{
    ModelService &service = sharedService();
    std::vector<json::Value> rows;
    rows.reserve(batch::maxRows + 1);
    for (std::size_t i = 0; i <= batch::maxRows; ++i)
        rows.push_back(json::Value::object());
    EXPECT_EQ(statusOfBatch(service, batchBody("gcc", json::Value(),
                                               std::move(rows))),
              413);
}

TEST(BatchService, MixedRowsYieldPerRowErrorsNotWholeBatch400)
{
    ModelService &service = sharedService();
    std::vector<json::Value> rows;
    rows.push_back(deltaDRow(150));     // valid
    rows.push_back(json::Value(42.0));  // not an object
    {
        json::Value bad = json::Value::object();
        bad.set("width", 0); // out of range
        rows.push_back(std::move(bad));
    }
    {
        json::Value unknown = json::Value::object();
        unknown.set("nonsense", 1);
        rows.push_back(std::move(unknown));
    }
    const json::Value response = service.batch(
        batchBody("gcc", json::Value(), std::move(rows)));

    const json::Value *errors = response.find("errors");
    ASSERT_NE(errors, nullptr);
    ASSERT_EQ(errors->items().size(), 4u);
    EXPECT_TRUE(errors->items()[0].isNull());
    for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_TRUE(errors->items()[i].isString()) << i;
        // The failed rows' numeric slots are null, not garbage.
        EXPECT_TRUE(response.find("cpi")
                        ->find("total")
                        ->items()[i]
                        .isNull())
            << i;
    }
    // Valid row still evaluated.
    EXPECT_GT(columnAt(response, "total", 0), 0.0);
}

// -- Binary wire format --------------------------------------------

TEST(BatchService, BinaryRequestDecodesToTheExactJsonBody)
{
    json::Value shared = json::Value::object();
    shared.set("windowSize", 64);
    json::Value options = json::Value::object();
    options.set("dcacheOverlap", false);
    std::vector<json::Value> rows = {deltaDRow(100), deltaDRow(250)};
    {
        // A row the packed-u32 fast path cannot carry: fractional
        // member, must ride as embedded JSON and still produce the
        // JSON path's exact validation error downstream.
        json::Value frac = json::Value::object();
        frac.set("width", 2.5);
        rows.push_back(std::move(frac));
    }
    json::Value body =
        batchBody("twolf", shared, std::move(rows));
    body.set("options", options);

    const batch::Request parsed = batch::parseRequest(body);
    std::vector<const json::Value *> rowPtrs;
    for (const json::Value &row : parsed.rows)
        rowPtrs.push_back(&row);
    const std::string wire = batch::encodeRequest(
        parsed.workload, &parsed.sharedMachine,
        &parsed.sharedOptions, rowPtrs);

    json::Value decoded;
    std::string error;
    ASSERT_TRUE(batch::decodeRequest(wire, decoded, &error))
        << error;
    // Canonical forms equal => identical digests, identical
    // downstream validation, identical responses.
    EXPECT_EQ(decoded.canonical(), body.canonical());
}

TEST(BatchService, BinaryRejectsGarbageAndWrongVersion)
{
    json::Value decoded;
    std::string error;
    EXPECT_FALSE(batch::decodeRequest("not a frame", decoded,
                                      &error));
    EXPECT_FALSE(batch::decodeRequest("", decoded, &error));

    batch::Result result;
    EXPECT_FALSE(batch::decodeResponse("junk", result, &error));
}

TEST(BatchService, BinaryHttpMatchesJsonHttpBitForBit)
{
    ModelService &service = sharedService();
    const json::Value body = batchBody(
        "gzip", json::Value(),
        {deltaDRow(110), deltaDRow(220), json::Value(1.0)});

    HttpRequest jsonReq;
    jsonReq.method = "POST";
    jsonReq.target = "/v1/batch";
    jsonReq.body = body.dump();
    const HttpResponse viaJson = service.batchHttp(jsonReq);
    ASSERT_EQ(viaJson.status, 200);

    const batch::Request parsed = batch::parseRequest(body);
    std::vector<const json::Value *> rowPtrs;
    for (const json::Value &row : parsed.rows)
        rowPtrs.push_back(&row);
    HttpRequest binReq;
    binReq.method = "POST";
    binReq.target = "/v1/batch";
    binReq.headers.emplace_back("content-type",
                                batch::contentType);
    binReq.body = batch::encodeRequest(parsed.workload, nullptr,
                                       nullptr, rowPtrs);
    const HttpResponse viaBinary = service.batchHttp(binReq);
    ASSERT_EQ(viaBinary.status, 200);
    bool binaryType = false;
    for (const auto &h : viaBinary.headers)
        if (h.first == "Content-Type" &&
            h.second == batch::contentType)
            binaryType = true;
    EXPECT_TRUE(binaryType);

    batch::Result decoded;
    std::string error;
    ASSERT_TRUE(
        batch::decodeResponse(viaBinary.body, decoded, &error))
        << error;
    // The binary response re-serialized as JSON is byte-identical
    // to the JSON path's response (round-trip double formatting).
    EXPECT_EQ(batch::toJson(decoded).dump(), viaJson.body);
}

TEST(BatchService, BinaryHttpRejectsBadFrameWith400)
{
    ModelService &service = sharedService();
    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/batch";
    req.headers.emplace_back("content-type", batch::contentType);
    req.body = "garbage bytes";
    EXPECT_EQ(service.batchHttp(req).status, 400);
}

// -- Digest equivalence pin ----------------------------------------

TEST(BatchService, DigestEquivalencePinsModelSchemaVersion)
{
    // The response-cache digest is versioned: bumping
    // modelSchemaVersion MUST break this pin so whoever bumps it
    // re-checks batch/single digest parity deliberately.
    EXPECT_EQ(modelSchemaVersion, 1u);
    EXPECT_EQ(batchWireFormatVersion, 1u);

    json::Value shared = json::Value::object();
    shared.set("robSize", 256);
    json::Value body =
        batchBody("gcc", shared, {deltaDRow(180)});
    const batch::Request parsed = batch::parseRequest(body);

    // JSON path digest for row 0.
    const json::Value mergedJson =
        batch::mergedRowBody(parsed, parsed.rows[0]);
    const std::string jsonKey =
        ModelService::cacheKey("/v1/cpi", mergedJson);
    EXPECT_EQ(jsonKey.rfind("v1\n/v1/cpi\n", 0), 0u) << jsonKey;

    // Binary round-trip digest for the same row.
    std::vector<const json::Value *> rowPtrs = {&parsed.rows[0]};
    const std::string wire = batch::encodeRequest(
        parsed.workload, &parsed.sharedMachine, nullptr, rowPtrs);
    json::Value decoded;
    std::string error;
    ASSERT_TRUE(batch::decodeRequest(wire, decoded, &error))
        << error;
    const batch::Request reparsed = batch::parseRequest(decoded);
    EXPECT_EQ(ModelService::cacheKey(
                  "/v1/cpi",
                  batch::mergedRowBody(reparsed, reparsed.rows[0])),
              jsonKey);

    // A bare row with no shared block digests like a bare /v1/cpi
    // request (no "machine" member at all).
    json::Value bare = json::Value::object();
    bare.set("workload", "gcc");
    batch::Request bareReq;
    bareReq.workload = "gcc";
    bareReq.rows.push_back(json::Value::object());
    EXPECT_EQ(ModelService::cacheKey(
                  "/v1/cpi",
                  batch::mergedRowBody(bareReq, bareReq.rows[0])),
              ModelService::cacheKey("/v1/cpi", bare));
}

// -- Deadline shedding ---------------------------------------------

TEST(BatchService, ExpiredDeadlineShedsUncachedRowsOnly)
{
    ModelService &service = sharedService();

    // Warm one design point through the single-request path — via
    // the handler, which is where the response cache is populated.
    json::Value warm = json::Value::object();
    warm.set("workload", "parser");
    {
        json::Value machine = json::Value::object();
        machine.set("deltaD", 510);
        warm.set("machine", std::move(machine));
    }
    HttpRequest warmReq;
    warmReq.method = "POST";
    warmReq.target = "/v1/cpi";
    warmReq.body = warm.dump();
    ASSERT_EQ(service.handler()(warmReq).status, 200);

    HttpRequest req;
    req.method = "POST";
    req.target = "/v1/batch";
    req.body = batchBody("parser", json::Value(),
                         {deltaDRow(510), deltaDRow(511)})
                   .dump();
    req.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(5);
    const HttpResponse response = service.batchHttp(req);
    ASSERT_EQ(response.status, 200);

    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(response.body, v, &error)) << error;
    const json::Value *errors = v.find("errors");
    ASSERT_NE(errors, nullptr);
    // The cached row is served from the response cache even with no
    // budget left; the fresh row is shed, not evaluated.
    EXPECT_TRUE(errors->items()[0].isNull());
    ASSERT_TRUE(errors->items()[1].isString());
    EXPECT_NE(errors->items()[1].asString().find("deadline"),
              std::string::npos);
}

// -- Persistent-store schema pin -----------------------------------

TEST(BatchService, StartupRefusesStoreFromAnotherSchemaVersion)
{
    ::setenv("FOSM_TRACE_INSTS", "5000", 1);
    test::TempDir dir;
    {
        store::StoreConfig sc;
        sc.dir = dir.path();
        store::PersistentStore stale(sc);
        stale.put("m/schemaVersion", "999");
    }
    ServiceConfig config;
    config.storeDir = dir.path();
    MetricsRegistry metrics;
    EXPECT_THROW(ModelService(config, metrics), std::runtime_error);
}

TEST(BatchService, StartupStampsFreshStoreWithSchemaVersion)
{
    ::setenv("FOSM_TRACE_INSTS", "5000", 1);
    test::TempDir dir;
    {
        MetricsRegistry metrics;
        ServiceConfig config;
        config.storeDir = dir.path();
        ModelService service(config, metrics);
    }
    store::StoreConfig sc;
    sc.dir = dir.path();
    store::PersistentStore store(sc);
    std::string persisted;
    ASSERT_TRUE(store.get("m/schemaVersion", persisted));
    EXPECT_EQ(persisted, std::to_string(modelSchemaVersion));
}

} // namespace
} // namespace fosm::server
