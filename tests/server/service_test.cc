/**
 * @file
 * Model-service tests: endpoint logic, request validation, response
 * caching, and the headline acceptance criterion — CPI numbers served
 * over HTTP are bit-identical to a direct FirstOrderModel call.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "model/trends.hh"
#include "server/client.hh"
#include "server/service.hh"

namespace fosm::server {
namespace {

/**
 * Shared service over a short trace so the whole suite builds each
 * workload characterization once. The env var must be set before the
 * first Workbench is constructed.
 */
MetricsRegistry &
sharedRegistry()
{
    static MetricsRegistry registry;
    return registry;
}

ModelService &
sharedService()
{
    static ModelService *service = [] {
        ::setenv("FOSM_TRACE_INSTS", "5000", 1);
        return new ModelService(ServiceConfig{}, sharedRegistry());
    }();
    return *service;
}

json::Value
cpiRequest(const std::string &workload)
{
    json::Value req = json::Value::object();
    req.set("workload", workload);
    return req;
}

double
member(const json::Value &v, const char *outer, const char *inner)
{
    const json::Value *o = v.find(outer);
    EXPECT_NE(o, nullptr) << outer;
    const json::Value *i = o->find(inner);
    EXPECT_NE(i, nullptr) << inner;
    return i->asDouble();
}

// -- The acceptance criterion --------------------------------------

TEST(Service, CpiBitIdenticalToDirectModelForAllWorkloads)
{
    ModelService &service = sharedService();
    const MachineConfig machine = Workbench::baselineMachine();
    const ModelOptions options;

    for (const std::string &name : Workbench::benchmarks()) {
        // What a direct caller computes from the same Workbench.
        const WorkloadData &data = service.workbench().workload(name);
        const IWCharacteristic iw = Workbench::fitIw(
            data.iwPoints, data.missProfile.avgLatency,
            machine.width);
        const CpiBreakdown direct =
            FirstOrderModel(machine, options)
                .evaluate(iw, data.missProfile);

        // What the service serves — after a full serialize/reparse
        // round trip, i.e. exactly the bytes an HTTP client gets.
        const json::Value served = service.cpi(cpiRequest(name));
        json::Value back;
        std::string error;
        ASSERT_TRUE(json::parse(served.dump(), back, &error))
            << error;

        EXPECT_EQ(member(back, "cpi", "ideal"), direct.ideal) << name;
        EXPECT_EQ(member(back, "cpi", "brmisp"), direct.brmisp)
            << name;
        EXPECT_EQ(member(back, "cpi", "icacheL1"), direct.icacheL1)
            << name;
        EXPECT_EQ(member(back, "cpi", "icacheL2"), direct.icacheL2)
            << name;
        EXPECT_EQ(member(back, "cpi", "dcacheLong"),
                  direct.dcacheLong)
            << name;
        EXPECT_EQ(member(back, "cpi", "dtlb"), direct.dtlb) << name;
        EXPECT_EQ(member(back, "cpi", "total"), direct.total())
            << name;
        const json::Value *ipc = back.find("ipc");
        ASSERT_NE(ipc, nullptr);
        EXPECT_EQ(ipc->asDouble(), direct.ipc()) << name;
        EXPECT_EQ(member(back, "iw", "alpha"), iw.alpha()) << name;
        EXPECT_EQ(member(back, "iw", "beta"), iw.beta()) << name;
    }
}

TEST(Service, CpiHonorsMachineOverrides)
{
    ModelService &service = sharedService();
    json::Value req = cpiRequest("mcf");
    json::Value machineJson = json::Value::object();
    machineJson.set("width", 8);
    machineJson.set("deltaD", 400);
    req.set("machine", std::move(machineJson));
    const json::Value served = service.cpi(req);

    MachineConfig machine = Workbench::baselineMachine();
    machine.width = 8;
    machine.deltaD = 400;
    const WorkloadData &data = service.workbench().workload("mcf");
    const IWCharacteristic iw = Workbench::fitIw(
        data.iwPoints, data.missProfile.avgLatency, machine.width);
    const CpiBreakdown direct =
        FirstOrderModel(machine, ModelOptions{})
            .evaluate(iw, data.missProfile);

    EXPECT_EQ(member(served, "cpi", "total"), direct.total());
    const json::Value *m = served.find("machine");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->find("width")->asInt(), 8);
    EXPECT_EQ(m->find("deltaD")->asInt(), 400);
}

// -- Validation ----------------------------------------------------

int
errorStatus(ModelService &service, const json::Value &request)
{
    try {
        service.cpi(request);
    } catch (const ServiceError &e) {
        return e.status();
    }
    return 0;
}

TEST(Service, RejectsInvalidCpiRequests)
{
    ModelService &service = sharedService();

    // Missing workload.
    EXPECT_EQ(errorStatus(service, json::Value::object()), 400);
    // Unknown workload.
    EXPECT_EQ(errorStatus(service, cpiRequest("nosuch")), 400);
    // Unknown top-level member (typo protection).
    {
        json::Value req = cpiRequest("gzip");
        req.set("wdith", 4);
        EXPECT_EQ(errorStatus(service, req), 400);
    }
    // Width out of range.
    {
        json::Value req = cpiRequest("gzip");
        json::Value m = json::Value::object();
        m.set("width", 1000);
        req.set("machine", std::move(m));
        EXPECT_EQ(errorStatus(service, req), 400);
    }
    // Non-integer width.
    {
        json::Value req = cpiRequest("gzip");
        json::Value m = json::Value::object();
        m.set("width", 2.5);
        req.set("machine", std::move(m));
        EXPECT_EQ(errorStatus(service, req), 400);
    }
    // Cluster divisibility.
    {
        json::Value req = cpiRequest("gzip");
        json::Value m = json::Value::object();
        m.set("width", 4);
        m.set("clusters", 3);
        req.set("machine", std::move(m));
        EXPECT_EQ(errorStatus(service, req), 400);
    }
    // Bad option enum.
    {
        json::Value req = cpiRequest("gzip");
        json::Value o = json::Value::object();
        o.set("branchMode", "bogus");
        req.set("options", std::move(o));
        EXPECT_EQ(errorStatus(service, req), 400);
    }
}

// -- Endpoint logic ------------------------------------------------

TEST(Service, IwCurveServesCachedCharacterization)
{
    ModelService &service = sharedService();
    json::Value req = json::Value::object();
    req.set("workload", "gzip");
    const json::Value out = service.iwCurve(req);

    const WorkloadData &data = service.workbench().workload("gzip");
    const json::Value *points = out.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->items().size(), data.iwPoints.size());
    for (std::size_t i = 0; i < data.iwPoints.size(); ++i) {
        const json::Value &p = points->items()[i];
        EXPECT_EQ(p.find("window")->asInt(),
                  static_cast<std::int64_t>(
                      data.iwPoints[i].windowSize));
        EXPECT_EQ(p.find("ipc")->asDouble(), data.iwPoints[i].ipc);
    }
}

TEST(Service, TrendsMatchesDirectSweep)
{
    ModelService &service = sharedService();
    json::Value req = json::Value::object();
    req.set("study", "pipeline-depth");
    json::Value widths = json::Value::array();
    widths.push(2);
    widths.push(4);
    req.set("widths", std::move(widths));
    json::Value depths = json::Value::array();
    depths.push(5);
    depths.push(10);
    req.set("depths", std::move(depths));
    const json::Value out = service.trends(req);

    const json::Value *series = out.find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->items().size(), 2u);

    const TrendConfig config;
    const std::vector<std::uint32_t> depthList = {5, 10};
    const std::uint32_t widthList[] = {2, 4};
    for (std::size_t i = 0; i < 2; ++i) {
        const auto direct =
            pipelineDepthSweep(widthList[i], depthList, config);
        const json::Value &entry = series->items()[i];
        EXPECT_EQ(entry.find("width")->asInt(),
                  static_cast<std::int64_t>(widthList[i]));
        const json::Value *points = entry.find("points");
        ASSERT_NE(points, nullptr);
        ASSERT_EQ(points->items().size(), direct.size());
        for (std::size_t j = 0; j < direct.size(); ++j) {
            EXPECT_EQ(points->items()[j].find("ipc")->asDouble(),
                      direct[j].ipc);
            EXPECT_EQ(points->items()[j].find("bips")->asDouble(),
                      direct[j].bips);
        }
    }
}

TEST(Service, CacheKeyIsCanonical)
{
    json::Value a;
    json::Value b;
    std::string error;
    ASSERT_TRUE(json::parse(
        "{\"workload\": \"gzip\", \"machine\": {\"width\": 8}}", a,
        &error));
    ASSERT_TRUE(json::parse(
        "{\"machine\":{\"width\":8},\"workload\":\"gzip\"}", b,
        &error));
    EXPECT_EQ(ModelService::cacheKey("/v1/cpi", a),
              ModelService::cacheKey("/v1/cpi", b));
    EXPECT_NE(ModelService::cacheKey("/v1/cpi", a),
              ModelService::cacheKey("/v1/iw-curve", a));
}

// -- Golden HTTP round trips ---------------------------------------

class LiveServer
{
  public:
    LiveServer()
        : server_(config(), sharedService().handler(),
                  &sharedRegistry()),
          started_(true)
    {
        server_.start();
    }

    ~LiveServer()
    {
        server_.requestStop();
        server_.join();
    }

    std::uint16_t port() { return server_.port(); }

  private:
    static HttpServerConfig
    config()
    {
        HttpServerConfig c;
        c.port = 0;
        c.workers = 2;
        return c;
    }

    HttpServer server_;
    bool started_;
};

TEST(ServiceHttp, HealthzGolden)
{
    LiveServer live;
    HttpClient client("127.0.0.1", live.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("GET", "/healthz", "", resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.reason, "OK");
    EXPECT_EQ(resp.header("content-type"), "application/json");
    EXPECT_EQ(resp.body,
              "{\"status\":\"ok\",\"service\":\"fosm-serve\","
              "\"workloads\":12}");
}

TEST(ServiceHttp, CpiOverHttpMatchesDirectCallByteForByte)
{
    LiveServer live;
    HttpClient client("127.0.0.1", live.port());
    ClientResponse resp;
    for (const std::string &name : Workbench::benchmarks()) {
        const std::string body = "{\"workload\":\"" + name + "\"}";
        ASSERT_TRUE(client.request("POST", "/v1/cpi", body, resp));
        EXPECT_EQ(resp.status, 200) << name << ": " << resp.body;
        // The wire bytes ARE the direct evaluation, serialized.
        EXPECT_EQ(resp.body,
                  sharedService().cpi(cpiRequest(name)).dump())
            << name;
    }
}

TEST(ServiceHttp, IwCurveAndTrendsOverHttp)
{
    LiveServer live;
    HttpClient client("127.0.0.1", live.port());
    ClientResponse resp;

    ASSERT_TRUE(client.request("POST", "/v1/iw-curve",
                               "{\"workload\":\"vpr\"}", resp));
    EXPECT_EQ(resp.status, 200);
    json::Value curveReq = json::Value::object();
    curveReq.set("workload", "vpr");
    EXPECT_EQ(resp.body, sharedService().iwCurve(curveReq).dump());

    ASSERT_TRUE(client.request(
        "POST", "/v1/trends",
        "{\"study\":\"issue-width\",\"widths\":[4]}", resp));
    EXPECT_EQ(resp.status, 200);
    json::Value trendReq = json::Value::object();
    trendReq.set("study", "issue-width");
    json::Value w = json::Value::array();
    w.push(4);
    trendReq.set("widths", std::move(w));
    EXPECT_EQ(resp.body, sharedService().trends(trendReq).dump());
}

TEST(ServiceHttp, ErrorPathsGolden)
{
    LiveServer live;
    HttpClient client("127.0.0.1", live.port());
    ClientResponse resp;

    // 400: malformed JSON body.
    ASSERT_TRUE(client.request("POST", "/v1/cpi", "{oops", resp));
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("\"error\""), std::string::npos);

    // 400: validation failure, exact body.
    ASSERT_TRUE(client.request("POST", "/v1/cpi",
                               "{\"workload\":\"nope\"}", resp));
    EXPECT_EQ(resp.status, 400);
    EXPECT_EQ(resp.body,
              "{\"error\":\"unknown workload 'nope'; valid: bzip, "
              "crafty, eon, gap, gcc, gzip, mcf, parser, perl, "
              "twolf, vortex, vpr\"}");

    // 404: unknown path.
    ASSERT_TRUE(client.request("GET", "/v2/nope", "", resp));
    EXPECT_EQ(resp.status, 404);

    // 405: wrong method, Allow advertised.
    ASSERT_TRUE(client.request("GET", "/v1/cpi", "", resp));
    EXPECT_EQ(resp.status, 405);
    EXPECT_EQ(resp.header("allow"), "POST");

    // /metrics speaks the Prometheus text format.
    ASSERT_TRUE(client.request("GET", "/metrics", "", resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.header("content-type"),
              "text/plain; version=0.0.4; charset=utf-8");
    EXPECT_NE(resp.body.find("# TYPE fosm_http_requests_total"),
              std::string::npos);
}

TEST(ServiceHttp, RepeatedRequestIsServedFromCache)
{
    LiveServer live;
    HttpClient client("127.0.0.1", live.port());
    ClientResponse first;
    ClientResponse second;
    // Unlikely to collide with other tests' bodies: a unique deltaI.
    const std::string body =
        "{\"workload\":\"eon\",\"machine\":{\"deltaI\":13}}";
    const std::uint64_t hitsBefore =
        sharedService().cache().hits();
    ASSERT_TRUE(client.request("POST", "/v1/cpi", body, first));
    // Same design point, different member order and whitespace.
    const std::string reordered =
        "{\"machine\": {\"deltaI\": 13}, \"workload\": \"eon\"}";
    ASSERT_TRUE(client.request("POST", "/v1/cpi", reordered, second));
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(second.status, 200);
    EXPECT_EQ(first.body, second.body); // byte-identical from cache
    EXPECT_GT(sharedService().cache().hits(), hitsBefore);
}

} // namespace
} // namespace fosm::server
