/** @file Unit tests for the server's JSON codec. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "server/json.hh"

namespace fosm::json {
namespace {

Value
mustParse(const std::string &text)
{
    Value v;
    std::string error;
    EXPECT_TRUE(parse(text, v, &error)) << text << ": " << error;
    return v;
}

std::string
parseError(const std::string &text)
{
    Value v;
    std::string error;
    EXPECT_FALSE(parse(text, v, &error)) << text;
    EXPECT_TRUE(v.isNull());
    return error;
}

// -- Parsing -------------------------------------------------------

TEST(JsonParse, Primitives)
{
    EXPECT_TRUE(mustParse("null").isNull());
    EXPECT_TRUE(mustParse("true").asBool());
    EXPECT_FALSE(mustParse("false").asBool(true));
    EXPECT_DOUBLE_EQ(mustParse("42").asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(mustParse("-17.5").asDouble(), -17.5);
    EXPECT_DOUBLE_EQ(mustParse("1e3").asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(mustParse("2.5E-2").asDouble(), 0.025);
    EXPECT_EQ(mustParse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NestedStructures)
{
    const Value v = mustParse(
        "{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}}");
    ASSERT_TRUE(v.isObject());
    const Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asDouble(), 1.0);
    const Value *b = a->items()[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->asBool());
    const Value *c = v.find("c");
    ASSERT_NE(c, nullptr);
    ASSERT_NE(c->find("d"), nullptr);
    EXPECT_TRUE(c->find("d")->isNull());
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(mustParse("\"a\\n\\t\\\"b\\\\\"").asString(),
              "a\n\t\"b\\");
    EXPECT_EQ(mustParse("\"\\u0041\\u00e9\"").asString(),
              "A\xc3\xa9"); // é in UTF-8
    // Surrogate pair: U+1F600.
    EXPECT_EQ(mustParse("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParse, WhitespaceTolerated)
{
    const Value v = mustParse(" \t\n{ \"k\" :\r [ 1 , 2 ] } \n");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("k")->items().size(), 2u);
}

// -- Malformed input -----------------------------------------------

TEST(JsonParse, RejectsMalformed)
{
    parseError("");
    parseError("   ");
    parseError("{");
    parseError("[1, 2");
    parseError("{\"a\": }");
    parseError("{\"a\" 1}");
    parseError("{'a': 1}");
    parseError("\"unterminated");
    parseError("tru");
    parseError("nulll");
    parseError("+1");
    parseError("01");      // leading zero
    parseError("1.");      // digits required after the point
    parseError(".5");
    parseError("1e");      // digits required in the exponent
    parseError("nan");
    parseError("Infinity");
    parseError("\"bad\\q escape\"");
    parseError("\"\\ud83d\""); // lone high surrogate
    parseError("[1,]");
    parseError("{\"a\":1,}");
}

TEST(JsonParse, RejectsTrailingGarbage)
{
    parseError("{} extra");
    parseError("1 2");
    parseError("null,");
}

TEST(JsonParse, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    deep += "1";
    for (int i = 0; i < 100; ++i)
        deep += "]";
    const std::string error = parseError(deep);
    EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

TEST(JsonParse, ErrorsCarryByteOffsets)
{
    const std::string error = parseError("{\"a\": blob}");
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

// -- Serialization -------------------------------------------------

TEST(JsonDump, InsertionOrderPreserved)
{
    Value v = Value::object();
    v.set("z", 1);
    v.set("a", 2);
    v.set("m", 3);
    EXPECT_EQ(v.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
}

TEST(JsonDump, CanonicalSortsKeysRecursively)
{
    Value inner = Value::object();
    inner.set("beta", 2);
    inner.set("alpha", 1);
    Value v = Value::object();
    v.set("z", std::move(inner));
    v.set("a", true);
    EXPECT_EQ(v.canonical(),
              "{\"a\":true,\"z\":{\"alpha\":1,\"beta\":2}}");
    // Semantically equal documents canonicalize identically.
    const Value other =
        mustParse("{\"z\": {\"alpha\": 1, \"beta\": 2}, \"a\": true}");
    EXPECT_EQ(other.canonical(), v.canonical());
}

TEST(JsonDump, StringEscaping)
{
    Value v("quote\" back\\ ctrl\x01\n");
    EXPECT_EQ(v.dump(), "\"quote\\\" back\\\\ ctrl\\u0001\\n\"");
}

TEST(JsonDump, IntegralNumbersHaveNoFraction)
{
    EXPECT_EQ(Value(5).dump(), "5");
    EXPECT_EQ(Value(-3).dump(), "-3");
    EXPECT_EQ(Value(std::uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(JsonDump, NonFiniteBecomesNull)
{
    EXPECT_EQ(Value(std::nan("")).dump(), "null");
    EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

// -- Round trips ---------------------------------------------------

TEST(JsonRoundTrip, DoublesAreBitIdentical)
{
    const double cases[] = {
        0.1,
        1.0 / 3.0,
        2.718281828459045,
        1.4900558581319288, // an actual fitted alpha
        0.47961459037623627,
        1e-300,
        1e300,
        5e-324, // min denormal
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),
        -123456.789012345678,
        0.0,
    };
    for (const double x : cases) {
        const std::string text = formatDouble(x);
        const Value v = mustParse(text);
        const double back = v.asDouble();
        EXPECT_EQ(std::memcmp(&back, &x, sizeof(double)), 0)
            << x << " -> " << text << " -> " << back;
    }
}

TEST(JsonRoundTrip, DocumentSurvivesReparse)
{
    Value doc = Value::object();
    doc.set("cpi", 1.1618801514675892);
    doc.set("name", "gzip \u00e9");
    Value arr = Value::array();
    arr.push(1);
    arr.push(0.25);
    arr.push(false);
    doc.set("points", std::move(arr));

    const std::string once = doc.dump();
    const Value back = mustParse(once);
    EXPECT_EQ(back.dump(), once);
    EXPECT_EQ(back.canonical(), doc.canonical());
}

TEST(JsonFnv, HashesDiffer)
{
    EXPECT_NE(fnv1a("a"), fnv1a("b"));
    EXPECT_NE(fnv1a(""), fnv1a("a"));
    EXPECT_EQ(fnv1a("design-point"), fnv1a("design-point"));
}

} // namespace
} // namespace fosm::json
