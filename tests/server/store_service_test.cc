/**
 * @file
 * Service persistence tests: a restarted service serves bit-identical
 * responses straight from the store (nonzero hit rate, no rebuild), a
 * fresh design point after restart is evaluated from the reloaded
 * characterization, /v1/store/stats reports both modes, and the trend
 * memo reuses rows across overlapping sweeps.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "server/service.hh"

#include "../store/store_test_util.hh"

namespace fosm::server {
namespace {

/** Drive the full handler: routing plus both cache tiers. */
HttpResponse
post(ModelService &service, const std::string &path,
     const std::string &body)
{
    HttpRequest request;
    request.method = "POST";
    request.target = path;
    request.body = body;
    return service.handler()(request);
}

ServiceConfig
storeConfig(const std::string &dir)
{
    // Short traces keep each characterization build cheap; must be
    // set before the first Workbench is constructed.
    ::setenv("FOSM_TRACE_INSTS", "5000", 1);
    ServiceConfig config;
    config.storeDir = dir;
    return config;
}

TEST(ServicePersistence, WarmRestartServesBitIdenticalResponses)
{
    test::TempDir dir;
    const std::string cpiBody = "{\"workload\":\"gcc\"}";

    std::string coldCpi, coldCurve;
    {
        MetricsRegistry metrics;
        ModelService cold(storeConfig(dir.path()), metrics);
        ASSERT_NE(cold.persistentCache(), nullptr);
        const HttpResponse r = post(cold, "/v1/cpi", cpiBody);
        ASSERT_EQ(r.status, 200);
        coldCpi = r.body;
        coldCurve = post(cold, "/v1/iw-curve", cpiBody).body;
        EXPECT_EQ(cold.persistentCache()->storeHits(), 0u);
    }

    MetricsRegistry metrics;
    ModelService warm(storeConfig(dir.path()), metrics);
    EXPECT_EQ(post(warm, "/v1/cpi", cpiBody).body, coldCpi);
    EXPECT_EQ(post(warm, "/v1/iw-curve", cpiBody).body, coldCurve);
    // Both answers came off disk: nonzero hit rate immediately after
    // restart, and the workload was never rebuilt (nor even loaded —
    // the whole response was stored).
    EXPECT_EQ(warm.persistentCache()->storeHits(), 2u);
    EXPECT_EQ(warm.workbench().characterizationLoads(), 0u);
}

TEST(ServicePersistence, FreshQueryAfterRestartUsesReloadedData)
{
    test::TempDir dir;
    // A design point only the warm service sees: it must be evaluated
    // fresh, from the characterization the cold service persisted.
    const std::string novel =
        "{\"workload\":\"gcc\",\"machine\":{\"width\":8}}";

    {
        MetricsRegistry metrics;
        ModelService cold(storeConfig(dir.path()), metrics);
        ASSERT_EQ(
            post(cold, "/v1/cpi", "{\"workload\":\"gcc\"}").status,
            200);
    }

    MetricsRegistry warmMetrics;
    ModelService warm(storeConfig(dir.path()), warmMetrics);
    const HttpResponse served = post(warm, "/v1/cpi", novel);
    ASSERT_EQ(served.status, 200);
    EXPECT_EQ(warm.persistentCache()->storeHits(), 0u);
    EXPECT_EQ(warm.workbench().characterizationLoads(), 1u);

    // Reference: the same evaluation memory-only, built from scratch.
    MetricsRegistry referenceMetrics;
    ModelService reference(ServiceConfig{}, referenceMetrics);
    EXPECT_EQ(served.body, post(reference, "/v1/cpi", novel).body);
}

TEST(ServicePersistence, PersistentTierAnswersWhenLruIsDisabled)
{
    test::TempDir dir;
    MetricsRegistry metrics;
    ServiceConfig config = storeConfig(dir.path());
    config.cacheCapacity = 0;
    ModelService service(config, metrics);

    const std::string body = "{\"workload\":\"mcf\"}";
    const std::string first = post(service, "/v1/cpi", body).body;
    EXPECT_EQ(service.persistentCache()->storeHits(), 0u);
    // No LRU to hit, so the repeat is served by the store.
    EXPECT_EQ(post(service, "/v1/cpi", body).body, first);
    EXPECT_EQ(service.persistentCache()->storeHits(), 1u);
}

TEST(ServicePersistence, StoreStatsReportsBothModes)
{
    {
        test::TempDir dir;
        MetricsRegistry metrics;
        ModelService service(storeConfig(dir.path()), metrics);
        ASSERT_EQ(
            post(service, "/v1/cpi", "{\"workload\":\"gzip\"}").status,
            200);
        const json::Value stats = service.storeStats();
        EXPECT_TRUE(stats.find("enabled")->asBool());
        const json::Value *s = stats.find("store");
        ASSERT_NE(s, nullptr);
        // One response plus one characterization were persisted.
        EXPECT_GE(s->find("liveRecords")->asInt(), 2);

        // The GET endpoint serves exactly this document.
        HttpRequest request;
        request.method = "GET";
        request.target = "/v1/store/stats";
        EXPECT_EQ(service.handler()(request).status, 200);
    }
    MetricsRegistry metrics;
    ModelService memoryOnly(ServiceConfig{}, metrics);
    const json::Value stats = memoryOnly.storeStats();
    EXPECT_FALSE(stats.find("enabled")->asBool());
    EXPECT_EQ(stats.find("store"), nullptr);
}

TEST(ServiceTrendMemo, OverlappingSweepsReuseRows)
{
    MetricsRegistry metrics;
    ModelService service(ServiceConfig{}, metrics);

    json::Value first = json::Value::object();
    first.set("study", "pipeline-depth");
    json::Value widths = json::Value::array();
    widths.push(2);
    widths.push(4);
    first.set("widths", std::move(widths));
    json::Value depths = json::Value::array();
    depths.push(5);
    depths.push(10);
    first.set("depths", std::move(depths));

    const json::Value a = service.trends(first);
    EXPECT_EQ(service.trendStudies().memoMisses(), 2u);
    EXPECT_EQ(service.trendStudies().memoHits(), 0u);

    // The identical request reuses every row.
    EXPECT_EQ(service.trends(first).dump(), a.dump());
    EXPECT_EQ(service.trendStudies().memoHits(), 2u);

    // A superset sweep reuses the overlap and computes only the new
    // width; the shared rows are bit-identical across responses.
    json::Value second = json::Value::object();
    second.set("study", "pipeline-depth");
    json::Value moreWidths = json::Value::array();
    moreWidths.push(2);
    moreWidths.push(4);
    moreWidths.push(8);
    second.set("widths", std::move(moreWidths));
    json::Value sameDepths = json::Value::array();
    sameDepths.push(5);
    sameDepths.push(10);
    second.set("depths", std::move(sameDepths));

    const json::Value c = service.trends(second);
    EXPECT_EQ(service.trendStudies().memoHits(), 4u);
    EXPECT_EQ(service.trendStudies().memoMisses(), 3u);
    const json::Value *seriesA = a.find("series");
    const json::Value *seriesC = c.find("series");
    ASSERT_NE(seriesA, nullptr);
    ASSERT_NE(seriesC, nullptr);
    ASSERT_EQ(seriesC->items().size(), 3u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(seriesC->items()[i].dump(),
                  seriesA->items()[i].dump());
    }

    // Width-study rows memoize in their own table.
    json::Value widthReq = json::Value::object();
    widthReq.set("study", "issue-width");
    json::Value w = json::Value::array();
    w.push(4);
    widthReq.set("widths", std::move(w));
    const json::Value d = service.trends(widthReq);
    EXPECT_EQ(service.trendStudies().memoMisses(), 4u);
    EXPECT_EQ(service.trends(widthReq).dump(), d.dump());
    EXPECT_EQ(service.trendStudies().memoHits(), 5u);
    EXPECT_EQ(service.trendStudies().size(), 4u);
}

} // namespace
} // namespace fosm::server
