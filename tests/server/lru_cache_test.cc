/** @file Unit tests for the sharded LRU response cache. */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/lru_cache.hh"

namespace fosm::server {
namespace {

TEST(ShardedLruCache, PutGetHit)
{
    ShardedLruCache<std::string> cache(8, 2);
    cache.put("k1", "v1");
    std::string out;
    EXPECT_TRUE(cache.get("k1", out));
    EXPECT_EQ(out, "v1");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(ShardedLruCache, MissOnAbsentKey)
{
    ShardedLruCache<std::string> cache(8, 2);
    std::string out;
    EXPECT_FALSE(cache.get("nope", out));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.0);
}

TEST(ShardedLruCache, PutOverwritesExisting)
{
    ShardedLruCache<std::string> cache(8, 1);
    cache.put("k", "old");
    cache.put("k", "new");
    std::string out;
    EXPECT_TRUE(cache.get("k", out));
    EXPECT_EQ(out, "new");
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed)
{
    // One shard so the eviction order is fully deterministic.
    ShardedLruCache<std::string> cache(3, 1);
    cache.put("a", "1");
    cache.put("b", "2");
    cache.put("c", "3");
    // Touch "a" so "b" is now the LRU entry.
    std::string out;
    EXPECT_TRUE(cache.get("a", out));
    cache.put("d", "4"); // evicts "b"
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.get("b", out));
    EXPECT_TRUE(cache.get("a", out));
    EXPECT_TRUE(cache.get("c", out));
    EXPECT_TRUE(cache.get("d", out));
}

TEST(ShardedLruCache, CapacityZeroDisables)
{
    ShardedLruCache<std::string> cache(0, 4);
    cache.put("k", "v");
    std::string out;
    EXPECT_FALSE(cache.get("k", out));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedLruCache, CapacitySpreadAcrossShards)
{
    // 8 entries over 3 shards rounds up to 3 per shard: the
    // configured capacity is a floor, not a ceiling.
    ShardedLruCache<int> cache(8, 3);
    EXPECT_EQ(cache.shardCount(), 3u);
    for (int i = 0; i < 64; ++i)
        cache.put("key" + std::to_string(i), i);
    EXPECT_LE(cache.size(), 9u);
    EXPECT_GE(cache.size(), 8u);
}

TEST(ShardedLruCache, HitRate)
{
    ShardedLruCache<int> cache(8, 1);
    cache.put("k", 1);
    int out = 0;
    cache.get("k", out);
    cache.get("k", out);
    cache.get("missing", out);
    EXPECT_NEAR(cache.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(ShardedLruCache, ClearEmptiesEveryShard)
{
    ShardedLruCache<int> cache(16, 4);
    for (int i = 0; i < 10; ++i)
        cache.put("key" + std::to_string(i), i);
    EXPECT_GT(cache.size(), 0u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    int out = 0;
    EXPECT_FALSE(cache.get("key1", out));
}

TEST(ShardedLruCache, TtlExpiresEntries)
{
    // 50ms TTL: a hit inside the window, a counted expiry past it.
    ShardedLruCache<std::string> cache(8, 1, 0.05);
    EXPECT_DOUBLE_EQ(cache.ttlSeconds(), 0.05);
    cache.put("k", "v");
    std::string out;
    EXPECT_TRUE(cache.get("k", out));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_FALSE(cache.get("k", out));
    EXPECT_EQ(cache.expirations(), 1u);
    EXPECT_EQ(cache.size(), 0u); // expired entries are erased

    // A put refreshes the clock: the entry lives a full TTL again.
    cache.put("k", "v2");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cache.put("k", "v3"); // re-stamp
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(cache.get("k", out)); // 30ms < 50ms since re-stamp
    EXPECT_EQ(out, "v3");
}

TEST(ShardedLruCache, TtlZeroNeverExpires)
{
    ShardedLruCache<std::string> cache(8, 1); // default: no TTL
    EXPECT_DOUBLE_EQ(cache.ttlSeconds(), 0.0);
    cache.put("k", "v");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::string out;
    EXPECT_TRUE(cache.get("k", out));
    EXPECT_EQ(cache.expirations(), 0u);
}

TEST(ShardedLruCache, ConcurrentAccessIsSafe)
{
    ShardedLruCache<int> cache(128, 8);
    constexpr int threads = 8;
    constexpr int opsPerThread = 5000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            int out = 0;
            for (int i = 0; i < opsPerThread; ++i) {
                const std::string key =
                    "key" + std::to_string((t * 31 + i) % 200);
                if (i % 3 == 0)
                    cache.put(key, i);
                else
                    cache.get(key, out);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    // No crash/deadlock, and the accounting stayed consistent:
    // every i % 3 != 0 iteration was a get (hit or miss).
    const int getsPerThread =
        opsPerThread - (opsPerThread + 2) / 3;
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::uint64_t>(threads * getsPerThread));
    EXPECT_LE(cache.size(), 128u + 8u);
}

} // namespace
} // namespace fosm::server
