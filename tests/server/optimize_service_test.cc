/**
 * @file
 * /v1/optimize tests: the frontier is bit-identical to a brute-force
 * /v1/batch enumeration plus a naive in-test dominance reference,
 * per-point results share cache entries with /v1/cpi by digest,
 * overlapping sweeps dedupe through the planner (pinned counts),
 * constraint/space edge cases (empty, single point, all-infeasible,
 * oversized), objective directions, request validation, and deadline
 * shedding to a 206 partial response.
 *
 * gtest_discover_tests runs each TEST in its own process, so the
 * shared service is cold per test: planner pins that assume an empty
 * cache hold as long as each test only relies on its own requests.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "server/service.hh"

namespace fosm::server {
namespace {

MetricsRegistry &
sharedRegistry()
{
    static MetricsRegistry registry;
    return registry;
}

ModelService &
sharedService()
{
    static ModelService *service = [] {
        ::setenv("FOSM_TRACE_INSTS", "5000", 1);
        return new ModelService(ServiceConfig{}, sharedRegistry());
    }();
    return *service;
}

/** Parse-or-die helper for literal request bodies. */
json::Value
parseBody(const std::string &text)
{
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::parse(text, v, &error)) << text << ": "
                                              << error;
    return v;
}

int
statusOf(ModelService &service, const json::Value &body)
{
    try {
        service.optimize(body);
        return 200;
    } catch (const ServiceError &e) {
        return e.status();
    }
}

double
number(const json::Value &v, const char *member)
{
    const json::Value *m = v.find(member);
    EXPECT_NE(m, nullptr) << member;
    return m ? m->asDouble() : -1.0;
}

/** Naive O(n^2) minimization dominance, first index wins on ties. */
std::vector<std::size_t>
referenceFrontier(const std::vector<std::vector<double>> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size() && !dominated;
             ++j) {
            if (j == i)
                continue;
            bool allLe = true, anyLt = false;
            for (std::size_t k = 0; k < points[i].size(); ++k) {
                allLe = allLe && points[j][k] <= points[i][k];
                anyLt = anyLt || points[j][k] < points[i][k];
            }
            dominated = (allLe && anyLt) ||
                        (allLe && !anyLt && j < i);
        }
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

// -- Correctness: frontier vs brute force --------------------------

TEST(OptimizeService, FrontierBitIdenticalToBruteForceBatch)
{
    ModelService &service = sharedService();
    const json::Value body = parseBody(R"({
        "workload": "gcc",
        "space": {"width": [2, 4, 8],
                  "deltaD": [100, 200, 300, 400]},
        "objectives": ["cpi", "width"]})");
    const json::Value result = service.optimize(body);

    // Pinned planner stats: a cold service schedules every point in
    // one batch and fits once per distinct width.
    const json::Value *planner = result.find("planner");
    ASSERT_NE(planner, nullptr);
    EXPECT_EQ(number(*planner, "points"), 12.0);
    EXPECT_EQ(number(*planner, "cacheHits"), 0.0);
    EXPECT_EQ(number(*planner, "scheduled"), 12.0);
    EXPECT_EQ(number(*planner, "characterizations"), 3.0);
    EXPECT_EQ(number(*planner, "batches"), 1.0);
    EXPECT_EQ(number(*planner, "batchesShed"), 0.0);
    EXPECT_TRUE(result.find("complete")->asBool(false));
    const json::Value *space = result.find("space");
    ASSERT_NE(space, nullptr);
    EXPECT_EQ(number(*space, "cardinality"), 12.0);
    EXPECT_EQ(number(*space, "feasible"), 12.0);
    EXPECT_EQ(number(*space, "evaluated"), 12.0);
    EXPECT_EQ(number(*space, "shed"), 0.0);

    // Brute force: the same 12 machines in enumeration order (width
    // is canonically before deltaD; the last axis spins fastest)
    // through /v1/batch, frontier recomputed with the naive O(n^2)
    // reference.
    json::Value batchBody = json::Value::object();
    batchBody.set("workload", "gcc");
    json::Value rows = json::Value::array();
    std::vector<std::uint64_t> widths, deltas;
    for (const std::uint64_t w : {2u, 4u, 8u}) {
        for (const std::uint64_t d : {100u, 200u, 300u, 400u}) {
            json::Value row = json::Value::object();
            row.set("width", w);
            row.set("deltaD", d);
            rows.push(std::move(row));
            widths.push_back(w);
            deltas.push_back(d);
        }
    }
    batchBody.set("rows", std::move(rows));
    const json::Value batch = service.batch(batchBody);
    const json::Value *total = batch.find("cpi")->find("total");
    const json::Value *ipc = batch.find("ipc");
    ASSERT_EQ(total->items().size(), 12u);

    std::vector<std::vector<double>> scores;
    for (std::size_t i = 0; i < 12; ++i)
        scores.push_back({total->items()[i].asDouble(),
                          static_cast<double>(widths[i])});
    const std::vector<std::size_t> expected =
        referenceFrontier(scores);

    const json::Value *frontier = result.find("frontier");
    ASSERT_NE(frontier, nullptr);
    ASSERT_EQ(frontier->items().size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
        const std::size_t i = expected[k];
        const json::Value &entry = frontier->items()[k];
        const json::Value *machine = entry.find("machine");
        ASSERT_NE(machine, nullptr) << k;
        EXPECT_EQ(number(*machine, "width"),
                  static_cast<double>(widths[i]));
        EXPECT_EQ(number(*machine, "deltaD"),
                  static_cast<double>(deltas[i]));
        // Bit-exact doubles: same cache entries, same kernels.
        EXPECT_EQ(number(entry, "cpi"),
                  total->items()[i].asDouble())
            << k;
        EXPECT_EQ(number(entry, "ipc"), ipc->items()[i].asDouble())
            << k;
        const json::Value *objs = entry.find("objectives");
        ASSERT_NE(objs, nullptr) << k;
        ASSERT_EQ(objs->items().size(), 2u);
        EXPECT_EQ(objs->items()[0].asDouble(), scores[i][0]) << k;
        EXPECT_EQ(objs->items()[1].asDouble(), scores[i][1]) << k;
    }

    // best = the frontier point minimizing objective 0.
    double minCpi = scores[expected[0]][0];
    for (const std::size_t i : expected)
        minCpi = std::min(minCpi, scores[i][0]);
    const json::Value *best = result.find("best");
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(number(*best, "cpi"), minCpi);

    // The default objective echo: explicit here, so "cpi"/"width".
    const json::Value *objectives = result.find("objectives");
    ASSERT_EQ(objectives->items().size(), 2u);
    EXPECT_EQ(objectives->items()[0].find("expr")->asString(),
              "cpi");
    EXPECT_FALSE(
        objectives->items()[0].find("maximize")->asBool(true));
}

// -- Cache sharing with /v1/cpi ------------------------------------

TEST(OptimizeService, SweptPointsServeSubsequentCpiRequests)
{
    ModelService &service = sharedService();
    service.optimize(parseBody(R"({
        "workload": "gcc",
        "space": {"width": [4], "deltaD": [8600, 8650]}})"));

    // A /v1/cpi request for a swept point must be served from the
    // shared per-point entry: one LRU hit, no model evaluation.
    const std::uint64_t hitsBefore = service.cache().hits();
    HttpRequest request;
    request.method = "POST";
    request.target = "/v1/cpi";
    request.body = R"({"workload": "gcc",
                       "machine": {"width": 4, "deltaD": 8650}})";
    const HttpResponse response = service.handler()(request);
    ASSERT_EQ(response.status, 200);
    EXPECT_EQ(service.cache().hits(), hitsBefore + 1);

    json::Value served;
    std::string error;
    ASSERT_TRUE(json::parse(response.body, served, &error)) << error;
    EXPECT_EQ(served.find("machine")->find("deltaD")->asDouble(),
              8650.0);
    EXPECT_NE(served.find("cpi"), nullptr);
}

TEST(OptimizeService, OverlappingSweepsDedupOnThePlanner)
{
    ModelService &service = sharedService();
    const json::Value first = service.optimize(parseBody(R"({
        "workload": "gcc",
        "space": {"width": [2, 4],
                  "deltaD": {"from": 9000, "to": 9090,
                             "step": 10}}})"));
    const json::Value *p1 = first.find("planner");
    EXPECT_EQ(number(*p1, "points"), 20.0);
    EXPECT_EQ(number(*p1, "cacheHits"), 0.0);
    EXPECT_EQ(number(*p1, "scheduled"), 20.0);
    EXPECT_EQ(number(*p1, "characterizations"), 2.0);

    // A superset sweep: every previously evaluated point probes out
    // of the cache; only the 20 new ones are scheduled.
    const json::Value second = service.optimize(parseBody(R"({
        "workload": "gcc",
        "space": {"width": [2, 4],
                  "deltaD": {"from": 9000, "to": 9190,
                             "step": 10}}})"));
    const json::Value *p2 = second.find("planner");
    EXPECT_EQ(number(*p2, "points"), 40.0);
    EXPECT_EQ(number(*p2, "cacheHits"), 20.0);
    EXPECT_EQ(number(*p2, "scheduled"), 20.0);
    EXPECT_EQ(number(*p2, "characterizations"), 2.0);
    EXPECT_EQ(number(*second.find("space"), "evaluated"), 40.0);
}

// -- Space edge cases ----------------------------------------------

TEST(OptimizeService, SinglePointSpaceIsItsOwnFrontier)
{
    ModelService &service = sharedService();
    const json::Value result = service.optimize(parseBody(
        R"({"workload": "gcc", "space": {}})"));
    EXPECT_EQ(number(*result.find("space"), "cardinality"), 1.0);
    EXPECT_EQ(number(*result.find("space"), "feasible"), 1.0);
    ASSERT_EQ(result.find("frontier")->items().size(), 1u);
    ASSERT_NE(result.find("best"), nullptr);
    EXPECT_EQ(number(*result.find("best"), "cpi"),
              number(result.find("frontier")->items()[0], "cpi"));
    // Default objective: minimize cpi.
    const json::Value *objectives = result.find("objectives");
    ASSERT_EQ(objectives->items().size(), 1u);
    EXPECT_EQ(objectives->items()[0].find("expr")->asString(),
              "cpi");
}

TEST(OptimizeService, EmptySpaceRejected422)
{
    ModelService &service = sharedService();
    EXPECT_EQ(statusOf(service, parseBody(R"({
        "workload": "gcc", "space": {"width": []}})")),
              422);
}

TEST(OptimizeService, AllInfeasibleRejected422)
{
    ModelService &service = sharedService();
    EXPECT_EQ(statusOf(service, parseBody(R"({
        "workload": "gcc", "space": {"width": [2, 4]},
        "constraint": "width > 100"})")),
              422);
    // The cluster-divisibility rule can also empty the space.
    EXPECT_EQ(statusOf(service, parseBody(R"({
        "workload": "gcc", "space": {"width": [3, 5]},
        "machine": {"clusters": 2}})")),
              422);
}

TEST(OptimizeService, OversizedSpaceRejected413)
{
    ModelService &service = sharedService();
    // An axis range whose count alone exceeds the cap must 413
    // before materializing anything.
    EXPECT_EQ(statusOf(service, parseBody(R"({
        "workload": "gcc",
        "space": {"deltaD": {"from": 100, "to": 999999}}})")),
              413);
    // A request-level 'limit' tightens the server cap.
    EXPECT_EQ(statusOf(service, parseBody(R"({
        "workload": "gcc", "limit": 4,
        "space": {"width": [2, 4, 8],
                  "deltaD": [100, 200]}})")),
              413);
}

// -- Validation ----------------------------------------------------

TEST(OptimizeService, MalformedRequestsRejected400)
{
    ModelService &service = sharedService();
    const char *bad[] = {
        // Unknown axis name.
        R"({"workload":"gcc","space":{"bogus":[1]}})",
        // Alias and canonical name sweep the same member.
        R"({"workload":"gcc",
            "space":{"window":[32],"windowSize":[64]}})",
        // Axis and machine override collide.
        R"({"workload":"gcc","space":{"width":[2,4]},
            "machine":{"width":4}})",
        // Axis spec must be an array or a range object.
        R"({"workload":"gcc","space":{"width":4}})",
        // Non-integer and out-of-range axis values.
        R"({"workload":"gcc","space":{"width":[2.5]}})",
        R"({"workload":"gcc","space":{"width":[0]}})",
        // Range with to < from and a bad step.
        R"({"workload":"gcc",
            "space":{"deltaD":{"from":200,"to":100}}})",
        R"({"workload":"gcc",
            "space":{"deltaD":{"from":100,"to":200,"step":0}}})",
        // Constraint: wrong type, syntax error, and a result column
        // (constraints see only machine members).
        R"({"workload":"gcc","space":{"width":[2]},
            "constraint":5})",
        R"({"workload":"gcc","space":{"width":[2]},
            "constraint":"width +"})",
        R"({"workload":"gcc","space":{"width":[2]},
            "constraint":"cpi < 1"})",
        // Objectives: empty, too many, typo, wrong item type.
        R"({"workload":"gcc","space":{"width":[2]},
            "objectives":[]})",
        R"({"workload":"gcc","space":{"width":[2]},
            "objectives":["cpi","ipc","width","window","rob"]})",
        R"({"workload":"gcc","space":{"width":[2]},
            "objectives":["widht"]})",
        R"({"workload":"gcc","space":{"width":[2]},
            "objectives":[7]})",
        // Unknown top-level member.
        R"({"workload":"gcc","space":{"width":[2]},"frontier":1})",
    };
    for (const char *text : bad)
        EXPECT_EQ(statusOf(service, parseBody(text)), 400) << text;
}

// -- Objective directions ------------------------------------------

TEST(OptimizeService, MaximizeObjectiveFlipsTheDirection)
{
    ModelService &service = sharedService();
    const json::Value result = service.optimize(parseBody(R"({
        "workload": "gcc",
        "space": {"width": [2, 8], "deltaD": [700]},
        "objectives": [{"expr": "ipc", "maximize": true}]})"));
    ASSERT_EQ(result.find("frontier")->items().size(), 1u);
    const json::Value &entry = result.find("frontier")->items()[0];

    // The brute answer: whichever of the two points has higher IPC.
    json::Value batchBody = parseBody(R"({
        "workload": "gcc",
        "rows": [{"width": 2, "deltaD": 700},
                 {"width": 8, "deltaD": 700}]})");
    const json::Value batch = service.batch(batchBody);
    const auto &ipc = batch.find("ipc")->items();
    const double expectWidth =
        ipc[1].asDouble() > ipc[0].asDouble() ? 8.0 : 2.0;
    EXPECT_EQ(number(*entry.find("machine"), "width"), expectWidth);
    EXPECT_TRUE(result.find("objectives")
                    ->items()[0]
                    .find("maximize")
                    ->asBool(false));
}

// -- Deadline shedding ---------------------------------------------

TEST(OptimizeService, ExpiredDeadlineShedsToPartial206)
{
    ModelService &service = sharedService();
    HttpRequest request;
    request.method = "POST";
    request.target = "/v1/optimize";
    request.body = R"({"workload": "gcc",
                       "space": {"width": [2, 4],
                                 "deltaD": {"from": 7000,
                                            "to": 7190,
                                            "step": 10}}})";
    request.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    const HttpResponse response = service.optimizeHttp(request);
    EXPECT_EQ(response.status, 206);

    json::Value result;
    std::string error;
    ASSERT_TRUE(json::parse(response.body, result, &error)) << error;
    EXPECT_FALSE(result.find("complete")->asBool(true));
    EXPECT_EQ(number(*result.find("space"), "shed"), 40.0);
    EXPECT_EQ(number(*result.find("space"), "evaluated"), 0.0);
    EXPECT_EQ(number(*result.find("planner"), "batchesShed"), 1.0);
    // Nothing evaluated: an empty frontier and no best point.
    EXPECT_TRUE(result.find("frontier")->items().empty());
    EXPECT_EQ(result.find("best"), nullptr);
}

TEST(OptimizeService, OptimizeHttpMapsErrorsToJsonStatuses)
{
    ModelService &service = sharedService();
    HttpRequest request;
    request.method = "POST";
    request.target = "/v1/optimize";
    request.body = R"({"workload": "gcc",
                       "space": {"width": []}})";
    EXPECT_EQ(service.optimizeHttp(request).status, 422);
    request.body = "{not json";
    EXPECT_EQ(service.optimizeHttp(request).status, 400);
}

// -- Routing + whole-response memoization --------------------------

TEST(OptimizeService, HandlerRoutesAndMemoizesCompleteResponses)
{
    ModelService &service = sharedService();
    HttpRequest request;
    request.method = "POST";
    request.target = "/v1/optimize";
    request.body = R"({"workload": "gcc",
                       "space": {"width": [2, 4],
                                 "deltaD": [6100, 6200]}})";
    const HttpResponse first = service.handler()(request);
    ASSERT_EQ(first.status, 200);
    const HttpResponse second = service.handler()(request);
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(second.body, first.body); // byte-identical replay
}

} // namespace
} // namespace fosm::server
