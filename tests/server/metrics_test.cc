/** @file Unit tests for the Prometheus metrics registry. */

#include <gtest/gtest.h>

#include <string>

#include "server/metrics.hh"

namespace fosm::server {
namespace {

TEST(Counter, Increments)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
}

TEST(Gauge, SetAddSub)
{
    Gauge g;
    g.set(10);
    g.add(5);
    g.sub(3);
    EXPECT_EQ(g.value(), 12);
}

TEST(Histogram, BucketsAndCount)
{
    Histogram h({0.001, 0.01, 0.1});
    h.observe(0.0005); // bucket 0
    h.observe(0.005);  // bucket 1
    h.observe(0.05);   // bucket 2
    h.observe(5.0);    // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_NEAR(h.sumSeconds(), 5.0555, 1e-6);
    EXPECT_EQ(h.cumulativeCount(0), 1u);
    EXPECT_EQ(h.cumulativeCount(1), 2u);
    EXPECT_EQ(h.cumulativeCount(2), 3u);
}

TEST(Histogram, QuantileInterpolates)
{
    Histogram h({0.001, 0.01, 0.1});
    for (int i = 0; i < 100; ++i)
        h.observe(0.005); // all in the (0.001, 0.01] bucket
    const double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 0.001);
    EXPECT_LE(p50, 0.01);
    // q=0 snaps to the lower edge of the first non-empty bucket.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.001);
    EXPECT_LE(h.quantile(0.0), p50);
}

TEST(Histogram, DefaultLatencyBoundsAreSorted)
{
    const std::vector<double> bounds = Histogram::latencyBounds();
    ASSERT_GE(bounds.size(), 4u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
    EXPECT_LE(bounds.front(), 100e-6);
    EXPECT_GE(bounds.back(), 1.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsSameObject)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("fosm_test_total", "help");
    Counter &b = registry.counter("fosm_test_total", "help");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, LabelsCreateSeparateSeries)
{
    MetricsRegistry registry;
    Counter &ok = registry.counter("fosm_req_total", "requests",
                                   "path=\"/v1/cpi\",code=\"200\"");
    Counter &bad = registry.counter("fosm_req_total", "requests",
                                    "path=\"/v1/cpi\",code=\"400\"");
    EXPECT_NE(&ok, &bad);
    ok.inc(3);
    bad.inc(1);
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("fosm_req_total{path=\"/v1/cpi\","
                        "code=\"200\"} 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("fosm_req_total{path=\"/v1/cpi\","
                        "code=\"400\"} 1"),
              std::string::npos)
        << text;
    // One HELP/TYPE pair per family, not per series.
    EXPECT_EQ(text.find("# HELP fosm_req_total"),
              text.rfind("# HELP fosm_req_total"));
}

TEST(MetricsRegistry, RenderFormat)
{
    MetricsRegistry registry;
    registry.counter("fosm_served_total", "Requests served").inc(7);
    registry.gauge("fosm_inflight", "In-flight requests").set(2);
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("# HELP fosm_served_total Requests served"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE fosm_served_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("fosm_served_total 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fosm_inflight gauge"),
              std::string::npos);
    EXPECT_NE(text.find("fosm_inflight 2"), std::string::npos);
}

TEST(MetricsRegistry, HistogramRendersBucketsSumCount)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("fosm_lat_seconds", "latency",
                                      "", {0.01, 0.1});
    h.observe(0.005);
    h.observe(0.5);
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("# TYPE fosm_lat_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("fosm_lat_seconds_bucket{le=\"0.01\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("fosm_lat_seconds_bucket{le=\"0.1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("fosm_lat_seconds_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("fosm_lat_seconds_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("fosm_lat_seconds_sum"), std::string::npos);
}

TEST(MetricsRegistry, CallbackGaugeSampledAtScrape)
{
    MetricsRegistry registry;
    double value = 1.5;
    registry.addCallbackGauge("fosm_cache_entries", "entries",
                              [&] { return value; });
    EXPECT_NE(registry.renderPrometheus().find(
                  "fosm_cache_entries 1.5"),
              std::string::npos);
    value = 7.0;
    EXPECT_NE(registry.renderPrometheus().find(
                  "fosm_cache_entries 7"),
              std::string::npos);
}

} // namespace
} // namespace fosm::server
