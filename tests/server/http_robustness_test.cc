/**
 * @file
 * Corpus-driven robustness tests: malformed, truncated and corrupted
 * input against the request parser, the live server, the response
 * parser the gateway drives, and the deadline-header decoder. The
 * invariant throughout is "never crash, never hang, stay serving".
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "server/client.hh"
#include "server/http.hh"

namespace fosm::server {
namespace {

// -- Request parser corpus -----------------------------------------

const std::vector<std::string> &
malformedRequests()
{
    static const std::vector<std::string> corpus = {
        "GARBAGE\r\n\r\n",
        "\r\n\r\n",
        " GET / HTTP/1.1\r\n\r\n",
        "GET  /  HTTP/1.1\r\n\r\n",
        "GET / HTTP/9.9\r\n\r\n",
        "GET / http/1.1\r\n\r\n",
        "GET noslash HTTP/1.1\r\n\r\n",
        "GET / HTTP/1.1\r\nno-colon\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
        "GET / HTTP/1.1\r\nX\tY: smuggle\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        "5\r\nhello\r\n0\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: "
        "99999999999999999999\r\n\r\n",
    };
    return corpus;
}

TEST(HttpRobustness, MalformedRequestCorpusNeverParsesOk)
{
    for (const std::string &raw : malformedRequests()) {
        HttpRequest req;
        std::size_t consumed = 0;
        std::string error;
        const ParseStatus st =
            parseHttpRequest(raw, 1 << 20, req, consumed, error);
        EXPECT_NE(st, ParseStatus::Ok) << raw;
    }
}

TEST(HttpRobustness, TruncatedRequestPrefixesNeverParseOk)
{
    const std::string full = "POST /v1/cpi HTTP/1.1\r\n"
                             "Host: localhost\r\n"
                             "X-Fosm-Deadline-Ms: 250\r\n"
                             "Content-Length: 11\r\n"
                             "\r\n"
                             "{\"k\":\"v\"}!!";
    for (std::size_t len = 0; len < full.size(); ++len) {
        HttpRequest req;
        std::size_t consumed = 0;
        std::string error;
        const ParseStatus st = parseHttpRequest(
            full.substr(0, len), 1 << 20, req, consumed, error);
        // A strict prefix is at best incomplete; it must never be
        // reported as a finished request.
        EXPECT_NE(st, ParseStatus::Ok) << "prefix length " << len;
    }
    HttpRequest req;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(parseHttpRequest(full, 1 << 20, req, consumed, error),
              ParseStatus::Ok);
    EXPECT_EQ(consumed, full.size());
}

TEST(HttpRobustness, SingleByteCorruptionNeverCrashesParser)
{
    const std::string full = "POST /v1/cpi HTTP/1.1\r\n"
                             "Host: localhost\r\n"
                             "Content-Length: 9\r\n"
                             "\r\n"
                             "{\"k\":\"v\"}";
    for (std::size_t i = 0; i < full.size(); ++i) {
        for (const char c : {'\0', '\r', '\n', ':', ' ', '\x7f'}) {
            std::string mutated = full;
            mutated[i] = c;
            HttpRequest req;
            std::size_t consumed = 0;
            std::string error;
            // Any status is acceptable; surviving the parse is the
            // assertion (ASan/UBSan runs make it a strong one).
            (void)parseHttpRequest(mutated, 1 << 20, req, consumed,
                                   error);
        }
    }
    SUCCEED();
}

// -- Response parser corpus (what the gateway reads) ---------------

TEST(HttpRobustness, MalformedResponseCorpusNeverParsesOk)
{
    const std::vector<std::string> corpus = {
        "GARBAGE\r\n\r\n",
        "\r\n\r\n",
        "HTTP/1.1\r\n\r\n",
        "HTTP/1.1 abc OK\r\n\r\n",
        "HTTP/1.1 99 Too-Low\r\n\r\n",
        "HTTP/1.1 600 Too-High\r\n\r\n",
        "HTTP/1.1 -200 Negative\r\n\r\n",
        "SMTP/1.1 200 OK\r\n\r\n",
    };
    for (const std::string &raw : corpus) {
        ClientResponse resp;
        std::size_t consumed = 0;
        EXPECT_NE(parseHttpResponse(raw, resp, consumed),
                  ParseStatus::Ok)
            << raw;
    }
}

TEST(HttpRobustness, TruncatedResponsePrefixesNeverParseOk)
{
    const std::string full = "HTTP/1.1 200 OK\r\n"
                             "Content-Type: application/json\r\n"
                             "Content-Length: 11\r\n"
                             "Connection: keep-alive\r\n"
                             "\r\n"
                             "{\"ok\":true}";
    for (std::size_t len = 0; len < full.size(); ++len) {
        ClientResponse resp;
        std::size_t consumed = 0;
        EXPECT_NE(parseHttpResponse(full.substr(0, len), resp,
                                    consumed),
                  ParseStatus::Ok)
            << "prefix length " << len;
    }
    ClientResponse resp;
    std::size_t consumed = 0;
    ASSERT_EQ(parseHttpResponse(full, resp, consumed),
              ParseStatus::Ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "{\"ok\":true}");
    EXPECT_EQ(consumed, full.size());
}

TEST(HttpRobustness, UnboundedResponseHeadersRejected)
{
    // A peer that streams header bytes forever must eventually be
    // cut off instead of buffering without limit.
    std::string raw = "HTTP/1.1 200 OK\r\n";
    raw.append(64u << 10, 'x');
    ClientResponse resp;
    std::size_t consumed = 0;
    EXPECT_EQ(parseHttpResponse(raw, resp, consumed),
              ParseStatus::Bad);
}

// -- Deadline header decoding --------------------------------------

int
stampedRemainingMs(const std::string &value)
{
    HttpRequest req;
    req.headers.emplace_back("x-fosm-deadline-ms", value);
    stampDeadline(req, std::chrono::steady_clock::now());
    return req.deadlineRemainingMs();
}

TEST(HttpRobustness, MalformedDeadlineHeaderIgnored)
{
    for (const char *bad :
         {"", "abc", "-5", "12abc", " ", "0x10", "1e9"}) {
        EXPECT_EQ(stampedRemainingMs(bad), -1) << "'" << bad << "'";
    }
}

TEST(HttpRobustness, ValidDeadlineHeaderStamped)
{
    const int remaining = stampedRemainingMs("5000");
    EXPECT_GT(remaining, 4000);
    EXPECT_LE(remaining, 5000);
    // Values over an hour are capped, not trusted.
    EXPECT_LE(stampedRemainingMs("999999999"), 3600 * 1000);
    // A zero budget is already expired.
    HttpRequest req;
    req.headers.emplace_back("x-fosm-deadline-ms", "0");
    stampDeadline(req, std::chrono::steady_clock::now());
    EXPECT_TRUE(req.deadlineExpired());
}

// -- Live server under the corpus ----------------------------------

std::string
rawRoundTrip(std::uint16_t port, const std::string &bytes)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

TEST(HttpRobustness, ServerSurvivesMalformedCorpus)
{
    HttpServerConfig config;
    config.port = 0;
    config.workers = 2;
    HttpServer server(config, [](const HttpRequest &) {
        return HttpResponse::json(200, "{\"ok\":true}");
    });
    server.start();

    for (const std::string &raw : malformedRequests()) {
        const std::string reply = rawRoundTrip(server.port(), raw);
        // Every malformed request draws a 4xx (or a bare close on
        // bytes the parser cannot frame) — never a 200, never a hang.
        if (!reply.empty()) {
            EXPECT_EQ(reply.rfind("HTTP/1.1 4", 0), 0u) << raw;
        }
        // The server is still alive and serving afterwards.
        HttpClient probe("127.0.0.1", server.port());
        ClientResponse resp;
        ASSERT_TRUE(probe.request("GET", "/ok", "", resp)) << raw;
        EXPECT_EQ(resp.status, 200);
    }

    server.requestStop();
    server.join();
}

TEST(HttpRobustness, ExpiredDeadlineShedsBeforeHandler)
{
    HttpServerConfig config;
    config.port = 0;
    config.workers = 1;
    std::atomic<int> handled{0};
    HttpServer server(config, [&](const HttpRequest &) {
        handled.fetch_add(1);
        return HttpResponse::json(200, "{}");
    });
    server.start();

    // A zero budget is expired by dequeue time: the worker answers
    // 504 without ever invoking the handler.
    HttpClient client("127.0.0.1", server.port());
    ClientResponse resp;
    ASSERT_TRUE(client.request("POST", "/v1/cpi", "{}",
                               {{deadlineHeader, "0"}}, resp));
    EXPECT_EQ(resp.status, 504);
    EXPECT_EQ(handled.load(), 0);

    // A generous budget passes through untouched.
    ASSERT_TRUE(client.request("POST", "/v1/cpi", "{}",
                               {{deadlineHeader, "30000"}}, resp));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(handled.load(), 1);

    server.requestStop();
    server.join();
}

} // namespace
} // namespace fosm::server
