#!/bin/sh
# Cluster smoke test: boot 3 fosm-serve replicas and a fosm-gateway,
# drive cached load through the gateway, kill one replica mid-load,
# bring it back, and assert
#   (1) the client saw zero errors and zero 503s — the gateway's
#       retries and hedges absorbed the failure, and
#   (2) the gateway ejected the dead replica and reinstated it after
#       recovery (fosm_gateway_backend_ejections_total and
#       ..._reinstatements_total both advanced).
# Usage: scripts/cluster_smoke.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
serve="$build/tools/fosm-serve"
gateway="$build/tools/fosm-gateway"
loadgen="$build/tools/fosm-loadgen"

base=${FOSM_SMOKE_PORT:-18780}
p1=$((base + 1)); p2=$((base + 2)); p3=$((base + 3))
gp=$base
backends="127.0.0.1:$p1,127.0.0.1:$p2,127.0.0.1:$p3"
tmp=$(mktemp -d)

pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_healthy() { # $1 = port, $2 = name
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" \
            > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: $2 (:$1) never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_replica() { # $1 = port
    "$serve" --port "$1" --no-store --no-warmup \
        > "$tmp/serve-$1.log" 2>&1 &
    echo $!
}

echo "== booting 3 replicas on :$p1 :$p2 :$p3"
r1=$(start_replica "$p1"); pids="$pids $r1"
r2=$(start_replica "$p2"); pids="$pids $r2"
r3=$(start_replica "$p3"); pids="$pids $r3"
wait_healthy "$p1" replica1
wait_healthy "$p2" replica2
wait_healthy "$p3" replica3

echo "== booting gateway on :$gp"
# Short health interval + eager hedging so ejection, reinstatement
# and hedges all happen inside the test window.
"$gateway" --port "$gp" --backends "$backends" \
    --health-interval 100 --hedge-min-samples 50 \
    > "$tmp/gateway.log" 2>&1 &
gw=$!
pids="$pids $gw"
wait_healthy "$gp" gateway

echo "== load through the gateway; killing replica 2 mid-load"
"$loadgen" --targets "127.0.0.1:$gp" --connections 4 \
    --warmup 0.5 --duration 8 --distinct 24 \
    --out "$tmp/report.json" > "$tmp/loadgen.log" 2>&1 &
lg=$!
pids="$pids $lg"

sleep 2
kill "$r2"
wait "$r2" 2>/dev/null || true
echo "   replica 2 (:$p2) killed"

sleep 3
r2=$(start_replica "$p2"); pids="$pids $r2"
echo "   replica 2 (:$p2) restarted"

if ! wait "$lg"; then
    echo "FAIL: loadgen reported client-visible errors" >&2
    cat "$tmp/loadgen.log" >&2
    exit 1
fi
cat "$tmp/loadgen.log"

# head -1: the aggregate count (per-target rows repeat the keys).
errors=$(grep -o '"requests_error":[0-9]*' "$tmp/report.json" \
    | head -1 | cut -d: -f2)
rejected=$(grep -o '"requests_503":[0-9]*' "$tmp/report.json" \
    | head -1 | cut -d: -f2)
if [ "$errors" != "0" ] || [ "$rejected" != "0" ]; then
    echo "FAIL: client saw $errors errors, $rejected 503s" >&2
    exit 1
fi
echo "OK: zero client-visible errors across the replica kill"

# The dead replica must have been ejected and, after its restart,
# reinstated by the health checker.
wait_healthy "$p2" replica2-restarted
i=0
while :; do
    metrics=$(curl -fsS "http://127.0.0.1:$gp/metrics")
    ej=$(printf '%s\n' "$metrics" \
        | grep '^fosm_gateway_backend_ejections_total' \
        | awk '{s += $NF} END {print s + 0}')
    re=$(printf '%s\n' "$metrics" \
        | grep '^fosm_gateway_backend_reinstatements_total' \
        | awk '{s += $NF} END {print s + 0}')
    if [ "$ej" -ge 1 ] && [ "$re" -ge 1 ]; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "FAIL: ejections=$ej reinstatements=$re" \
             "(expected both >= 1)" >&2
        exit 1
    fi
    sleep 0.1
done
echo "OK: replica ejected ($ej) and reinstated ($re)"

hedges=$(printf '%s\n' "$metrics" \
    | grep '^fosm_gateway_hedges_total' \
    | awk '{s += $NF} END {print s + 0}')
retries=$(printf '%s\n' "$metrics" \
    | grep '^fosm_gateway_retries_total' \
    | awk '{s += $NF} END {print s + 0}')
echo "OK: gateway absorbed the failure" \
     "(retries=$retries hedges=$hedges)"
echo "cluster smoke: PASS"
