#!/bin/sh
# Chaos smoke test: a 3-replica cluster under deterministic fault
# injection, deadline-carrying load, live membership changes and a
# SIGKILL — asserting the client never notices.
#
#   - replica 3 runs with FOSM_FAULTS="serve.handler=delay:1.0:400":
#     it accepts connections and answers /healthz (under the probe
#     timeout), but every real request outlives the gateway's 250ms
#     attempt budget — the failure mode only the circuit breaker can
#     see. The breaker must open.
#   - replica 3 is then drained live (POST /admin/backends), killed
#     with SIGKILL, restarted clean, and re-joined live; its breaker
#     must read closed again.
#   - replica 2 is SIGKILLed mid-load and restarted; the prober path
#     absorbs that one.
#   - the loadgen sends X-Fosm-Deadline-Ms with every request.
#
# Pass criteria: loadgen exits 0 with zero errors / 503s / 504s /
# timeouts, p99 stays bounded, and the gateway's breaker + deadline
# metric families are live.
#
# A second stage drills the replicated store (docs/REPLICATION.md):
# three store-backed replicas with --replication 2, the loadgen in
# --drill kill-rejoin mode, a SIGKILL of one replica at the first
# mark and a same-port rejoin at the second. Pass criteria: zero
# failures in every drill phase, post-failover p99 inside the
# pre-kill envelope (the successor already holds the shard's
# replicated entries, so failover lands warm), and a non-zero
# fosm_repl_catchup_entries_total on the rejoined node (it pulled
# the entries it missed while dead). Set FOSM_DRILL_OUT to pin the
# drill report (BENCH_PR8.json is such a pin).
# Usage: scripts/chaos_smoke.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
serve="$build/tools/fosm-serve"
gateway="$build/tools/fosm-gateway"
loadgen="$build/tools/fosm-loadgen"

base=${FOSM_CHAOS_PORT:-18790}
p1=$((base + 1)); p2=$((base + 2)); p3=$((base + 3))
gp=$base
backends="127.0.0.1:$p1,127.0.0.1:$p2,127.0.0.1:$p3"
tmp=$(mktemp -d)

pids=""
cleanup() {
    for pid in $pids; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_healthy() { # $1 = port, $2 = name
    i=0
    # 30 s: a process (re)started while the loadgen saturates the
    # box can take a while to get scheduled on small CI runners.
    while ! curl -fsS "http://127.0.0.1:$1/healthz" \
            > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 300 ]; then
            echo "FAIL: $2 (:$1) never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_replica() { # $1 = port
    "$serve" --port "$1" --no-store --no-warmup \
        > "$tmp/serve-$1.log" 2>&1 &
    echo $!
}

start_slow_replica() { # $1 = port: healthz fine, work delayed 400ms
    # Extra workers so /healthz never queues behind the 400ms-delayed
    # requests: the replica must look alive to the prober while every
    # live request blows the gateway's attempt budget — the failure
    # mode only the circuit breaker can see.
    FOSM_FAULTS="serve.handler=delay:1.0:400" FOSM_FAULT_SEED=42 \
        "$serve" --port "$1" --no-store --no-warmup --cache 0 \
        --workers 8 \
        > "$tmp/serve-$1.log" 2>&1 &
    echo $!
}

gateway_metric() { # $1 = anchored grep pattern; prints the sum
    curl -fsS "http://127.0.0.1:$gp/metrics" \
        | grep "$1" | awk '{s += $NF} END {print s + 0}'
}

admin() { # $1 = JSON body; expects HTTP 200
    code=$(curl -s -o "$tmp/admin.json" -w '%{http_code}' \
        -X POST -d "$1" "http://127.0.0.1:$gp/admin/backends")
    if [ "$code" != "200" ]; then
        echo "FAIL: POST /admin/backends $1 -> HTTP $code" >&2
        cat "$tmp/admin.json" >&2
        exit 1
    fi
}

echo "== booting replicas (:$p1 :$p2 fast, :$p3 injected-slow)"
r1=$(start_replica "$p1"); pids="$pids $r1"
r2=$(start_replica "$p2"); pids="$pids $r2"
r3=$(start_slow_replica "$p3"); pids="$pids $r3"
wait_healthy "$p1" replica1
wait_healthy "$p2" replica2
wait_healthy "$p3" replica3

echo "== booting gateway on :$gp (250ms attempts, eager breaker)"
"$gateway" --port "$gp" --backends "$backends" \
    --health-interval 100 --request-timeout 250 \
    --breaker-failures 3 --breaker-open-base 500 \
    --breaker-open-max 4000 \
    > "$tmp/gateway.log" 2>&1 &
gw=$!
pids="$pids $gw"
wait_healthy "$gp" gateway

echo "== deadline-carrying load; chaos drills run underneath"
"$loadgen" --targets "127.0.0.1:$gp" --connections 4 \
    --warmup 0.5 --duration 14 --distinct 24 \
    --timeout 5000 --deadline 2000 \
    --out "$tmp/report.json" > "$tmp/loadgen.log" 2>&1 &
lg=$!
pids="$pids $lg"

# The slow replica times out live traffic: the breaker must open.
i=0
while :; do
    opens=$(gateway_metric \
        "^fosm_gateway_breaker_opens_total{backend=\"127.0.0.1:$p3\"}")
    [ "$opens" -ge 1 ] && break
    i=$((i + 1))
    if [ "$i" -ge 80 ]; then
        echo "FAIL: breaker never opened for :$p3" >&2
        cat "$tmp/gateway.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "OK: breaker opened for the injected-slow replica ($opens)"

echo "== draining :$p3 live, SIGKILL, clean restart, live re-join"
admin "{\"remove\":[\"127.0.0.1:$p3\"]}"
kill -9 "$r3"
wait "$r3" 2>/dev/null || true
r3=$(start_replica "$p3"); pids="$pids $r3"   # no faults this time
wait_healthy "$p3" replica3-restarted
admin "{\"add\":[\"127.0.0.1:$p3\"]}"

echo "== SIGKILL replica 2 mid-load, then restart it"
kill -9 "$r2"
wait "$r2" 2>/dev/null || true
sleep 2
r2=$(start_replica "$p2"); pids="$pids $r2"
wait_healthy "$p2" replica2-restarted

if ! wait "$lg"; then
    echo "FAIL: loadgen reported client-visible errors" >&2
    cat "$tmp/loadgen.log" >&2
    exit 1
fi
cat "$tmp/loadgen.log"

# head -1: the aggregate counts (per-target rows repeat the keys).
count() { # $1 = report key
    grep -o "\"$1\":[0-9]*" "$tmp/report.json" \
        | head -1 | cut -d: -f2
}
errors=$(count requests_error)
rejected=$(count requests_503)
expired=$(count requests_504)
timeouts=$(count requests_timeout)
if [ "$errors" != "0" ] || [ "$rejected" != "0" ] ||
   [ "$expired" != "0" ] || [ "$timeouts" != "0" ]; then
    echo "FAIL: client saw errors=$errors 503s=$rejected" \
         "504s=$expired timeouts=$timeouts" >&2
    exit 1
fi
echo "OK: zero client-visible errors across every drill"

# Bounded tail: even requests homed on the slow/killed replicas must
# fail over inside the 250ms attempt budget, far under this bound.
p99=$(grep -o '"p99_us":[0-9.]*' "$tmp/report.json" \
    | head -1 | cut -d: -f2 | cut -d. -f1)
if [ "$p99" -ge 1500000 ]; then
    echo "FAIL: p99 ${p99}us exceeds 1.5s" >&2
    exit 1
fi
echo "OK: p99 bounded (${p99}us)"

# Breaker observability: the re-joined replica reads closed again,
# the deadline family is live, and both drills were counted.
state=$(gateway_metric \
    "^fosm_gateway_breaker_state{backend=\"127.0.0.1:$p3\"}")
if [ "$state" != "0" ]; then
    echo "FAIL: breaker for rejoined :$p3 reads $state" \
         "(expected closed=0)" >&2
    exit 1
fi
curl -fsS "http://127.0.0.1:$gp/metrics" > "$tmp/metrics.txt"
if ! grep -q '^fosm_deadline_exceeded_total' "$tmp/metrics.txt"; then
    echo "FAIL: fosm_deadline_exceeded_total missing" >&2
    exit 1
fi
changes=$(gateway_metric "^fosm_gateway_membership_changes_total")
if [ "$changes" -lt 2 ]; then
    echo "FAIL: membership_changes=$changes (expected >= 2)" >&2
    exit 1
fi
echo "OK: breaker closed after rejoin, deadline metrics live," \
     "$changes membership changes"

# ---- Stage 2: replicated-store kill + rejoin warmness drill ------

q1=$((base + 4)); q2=$((base + 5)); q3=$((base + 6))
gq=$((base + 7))
rbackends="127.0.0.1:$q1,127.0.0.1:$q2,127.0.0.1:$q3"

start_store_replica() { # $1 = port
    "$serve" --port "$1" --no-warmup \
        --store-dir "$tmp/store-$1" \
        --self "127.0.0.1:$1" --peers "$rbackends" \
        --replication 2 --repl-interval 1000 \
        > "$tmp/serve-repl-$1.log" 2>&1 &
    echo $!
}

echo "== stage 2: replicated store trio (:$q1 :$q2 :$q3, N=2)"
s1=$(start_store_replica "$q1"); pids="$pids $s1"
s2=$(start_store_replica "$q2"); pids="$pids $s2"
s3=$(start_store_replica "$q3"); pids="$pids $s3"
wait_healthy "$q1" store-replica1
wait_healthy "$q2" store-replica2
wait_healthy "$q3" store-replica3

"$gateway" --port "$gq" --backends "$rbackends" \
    --health-interval 100 --request-timeout 250 \
    > "$tmp/gateway-repl.log" 2>&1 &
gw2=$!
pids="$pids $gw2"
wait_healthy "$gq" gateway-repl

echo "== kill-rejoin drill: SIGKILL the owner at 4s, rejoin at 8s"
"$loadgen" --targets "127.0.0.1:$gq" --connections 4 \
    --warmup 1 --duration 12 --distinct 24 \
    --timeout 5000 --deadline 2000 \
    --drill kill-rejoin --marks 4,8 \
    --out "$tmp/drill.json" > "$tmp/drill.log" 2>&1 &
dg=$!
pids="$pids $dg"

sleep 5 # warmup (1s) + first mark (4s): pre-kill phase complete
kill -9 "$s2"
wait "$s2" 2>/dev/null || true
echo "   SIGKILLed :$q2; every key it owned is warm on its successor"

# While the owner is down, push fresh design points through the
# gateway. Their failover owners commit and replicate them, and the
# dead node is on roughly a third of their preference lists — the
# backlog its rejoin catch-up must pull.
i=0
while [ "$i" -lt 30 ]; do
    curl -fsS -X POST \
        -d "{\"workload\":\"gcc\",\"machine\":{\"deltaD\":$((90000 + i))}}" \
        "http://127.0.0.1:$gq/v1/cpi" > /dev/null 2>&1 || true
    i=$((i + 1))
done

sleep 2 # until the second mark
s2=$(start_store_replica "$q2"); pids="$pids $s2" # same port + store
wait_healthy "$q2" store-replica2-rejoined

if ! wait "$dg"; then
    echo "FAIL: drill loadgen reported client-visible errors" >&2
    cat "$tmp/drill.log" >&2
    exit 1
fi
cat "$tmp/drill.log"

phase_field() { # $1 = phase name, $2 = "failures" | "p99"
    if [ "$2" = "failures" ]; then
        grep "^  $1 " "$tmp/drill.log" \
            | sed 's/.* \([0-9][0-9]*\) failures.*/\1/'
    else
        grep "^  $1 " "$tmp/drill.log" \
            | sed 's/.*p99 \([0-9.][0-9.]*\) us.*/\1/' \
            | cut -d. -f1
    fi
}
for phase in pre-kill post-failover post-rejoin; do
    f=$(phase_field "$phase" failures)
    if [ -z "$f" ] || [ "$f" != "0" ]; then
        echo "FAIL: drill phase $phase saw ${f:-?} failures" >&2
        exit 1
    fi
done
echo "OK: zero client-visible failures in every drill phase"

# Warm-failover envelope: the successor serves the dead owner's
# shard from its replicated store, so post-failover p99 stays in
# the pre-kill envelope — 10x for scheduler noise plus one 250ms
# attempt budget for requests in flight at the kill.
pre=$(phase_field pre-kill p99)
post=$(phase_field post-failover p99)
bound=$((pre * 10 + 250000))
if [ "$post" -gt "$bound" ]; then
    echo "FAIL: post-failover p99 ${post}us outside the warm" \
         "envelope (pre-kill ${pre}us, bound ${bound}us)" >&2
    exit 1
fi
echo "OK: post-failover p99 ${post}us within the warm envelope" \
     "(pre-kill ${pre}us)"

# Rejoin catch-up: the restarted node must have pulled the entries
# committed while it was dead before opening its socket.
catchup=$(curl -fsS "http://127.0.0.1:$q2/metrics" \
    | grep '^fosm_repl_catchup_entries_total' \
    | awk '{s += $NF} END {print int(s + 0)}')
if [ -z "$catchup" ] || [ "$catchup" -lt 1 ]; then
    echo "FAIL: rejoined :$q2 caught up ${catchup:-0} entries" \
         "(expected >= 1)" >&2
    cat "$tmp/serve-repl-$q2.log" >&2
    exit 1
fi
echo "OK: rejoined :$q2 caught up $catchup entries"

if [ -n "${FOSM_DRILL_OUT:-}" ]; then
    {
        printf '{"bench":"repl-kill-rejoin-drill",'
        printf '"catchup_entries":%s,' "$catchup"
        printf '"report":'
        cat "$tmp/drill.json"
        printf '}\n'
    } > "$FOSM_DRILL_OUT"
    echo "drill report pinned to $FOSM_DRILL_OUT"
fi

echo "chaos smoke: PASS"
