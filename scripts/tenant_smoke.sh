#!/bin/sh
# Tenant smoke test: boot a --tenants-file fosm-serve and a
# fosm-gateway in front of it, then assert the whole admission
# story end to end:
#   (1) auth is enforced at BOTH layers — no token and a bad token
#       get 401 from the serve and from the gateway; /healthz stays
#       open for probes,
#   (2) a client-forged X-Fosm-Tenant header never becomes an
#       identity — attribution follows the verified bearer token,
#   (3) a rate-limited tenant bursting past its bucket gets 429 +
#       Retry-After at the gateway (answered there, not upstream),
#   (4) the noisy-neighbor drill: a saturating /v1/batch tenant and
#       an equal-weight interactive /v1/cpi tenant share one serve;
#       DRR must hold the interactive tenant at >= 40% of drained
#       requests with a bounded p99 and zero client-visible errors
#       (deliberate 429s excluded). The measured shares are pinned
#       in BENCH_PR9.json.
# Usage: scripts/tenant_smoke.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
serve="$build/tools/fosm-serve"
gateway="$build/tools/fosm-gateway"
loadgen="$build/tools/fosm-loadgen"

base=${FOSM_SMOKE_PORT:-18860}
sp=$((base + 1))
gp=$base
tmp=$(mktemp -d)

pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_healthy() { # $1 = port, $2 = name
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" \
            > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: $2 (:$1) never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

status_of() { # $@ = curl args; prints the HTTP status
    curl -s -o /dev/null -w '%{http_code}' "$@"
}

cat > "$tmp/tenants.json" <<'EOF'
{"tenants": [
  {"id": "interactive", "token": "tok-interactive", "weight": 1},
  {"id": "noisy", "token": "tok-noisy", "weight": 1},
  {"id": "limited", "token": "tok-limited",
   "rate_rps": 0.5, "burst": 1}
]}
EOF

echo "== booting tenant-enabled serve on :$sp and gateway on :$gp"
"$serve" --port "$sp" --no-store --no-warmup --queue 64 \
    --tenants-file "$tmp/tenants.json" \
    > "$tmp/serve.log" 2>&1 &
pids="$pids $!"
"$gateway" --port "$gp" --backends "127.0.0.1:$sp" \
    --tenants-file "$tmp/tenants.json" --health-interval 100 \
    > "$tmp/gateway.log" 2>&1 &
pids="$pids $!"
wait_healthy "$sp" serve
wait_healthy "$gp" gateway

body='{"workload":"gcc"}'

echo "== auth at the serve"
s=$(status_of -d "$body" "http://127.0.0.1:$sp/v1/cpi")
[ "$s" = "401" ] || { echo "FAIL: no-token serve got $s" >&2; exit 1; }
s=$(status_of -d "$body" -H "Authorization: Bearer wrong" \
    "http://127.0.0.1:$sp/v1/cpi")
[ "$s" = "401" ] || { echo "FAIL: bad-token serve got $s" >&2; exit 1; }
s=$(status_of -d "$body" -H "Authorization: Bearer tok-interactive" \
    "http://127.0.0.1:$sp/v1/cpi")
[ "$s" = "200" ] || { echo "FAIL: good-token serve got $s" >&2; exit 1; }
echo "OK: serve 401s without a token, 200 with one, /healthz open"

echo "== auth at the gateway"
s=$(status_of -d "$body" "http://127.0.0.1:$gp/v1/cpi")
[ "$s" = "401" ] || { echo "FAIL: no-token gateway got $s" >&2; exit 1; }
s=$(status_of -d "$body" -H "Authorization: Bearer tok-interactive" \
    "http://127.0.0.1:$gp/v1/cpi")
[ "$s" = "200" ] || { echo "FAIL: good-token gateway got $s" >&2; exit 1; }
echo "OK: gateway enforces the same tokens"

echo "== forged X-Fosm-Tenant does not become an identity"
s=$(status_of -d "$body" -H "Authorization: Bearer tok-interactive" \
    -H "X-Fosm-Tenant: forged-root" "http://127.0.0.1:$gp/v1/cpi")
[ "$s" = "200" ] || { echo "FAIL: forged-header call got $s" >&2; exit 1; }
if curl -fsS "http://127.0.0.1:$sp/metrics" \
        | grep -q 'tenant="forged-root"'; then
    echo "FAIL: forged tenant id reached the backend metrics" >&2
    exit 1
fi
curl -fsS "http://127.0.0.1:$sp/metrics" \
    | grep -q 'fosm_tenant_admitted_total{tenant="interactive"}' \
    || { echo "FAIL: verified tenant not attributed" >&2; exit 1; }
echo "OK: attribution follows the verified token"

echo "== rate limit answers 429 + Retry-After at the gateway"
# burst 1 at 0.5 rps: the second back-to-back request must trip it.
status_of -d "$body" -H "Authorization: Bearer tok-limited" \
    "http://127.0.0.1:$gp/v1/cpi" > /dev/null
curl -s -D "$tmp/429.headers" -o "$tmp/429.body" -d "$body" \
    -H "Authorization: Bearer tok-limited" \
    "http://127.0.0.1:$gp/v1/cpi"
grep -q '^HTTP/1.1 429' "$tmp/429.headers" \
    || { echo "FAIL: burst did not 429" >&2
         cat "$tmp/429.headers" >&2; exit 1; }
grep -qi '^Retry-After:' "$tmp/429.headers" \
    || { echo "FAIL: 429 without Retry-After" >&2; exit 1; }
# Answered at the gateway: the serve never saw a 'limited' request
# beyond the one admitted above.
admitted=$(curl -fsS "http://127.0.0.1:$sp/metrics" \
    | grep 'fosm_tenant_admitted_total{tenant="limited"}' \
    | awk '{print $NF}')
[ "$admitted" = "1" ] \
    || { echo "FAIL: serve saw $admitted 'limited' requests" >&2
         exit 1; }
echo "OK: 429 with Retry-After, shed before the backend"

echo "== noisy-neighbor drill (direct against the serve's DRR queue)"
"$loadgen" --port "$sp" --connections 4 --warmup 1 --duration 6 \
    --distinct 0 --tenant-spec \
    'interactive:tok-interactive:1,noisy:tok-noisy:1:0:/v1/batch:64' \
    --out "$tmp/drill.json" > "$tmp/loadgen.log" 2>&1 \
    || { echo "FAIL: loadgen exited nonzero" >&2
         cat "$tmp/loadgen.log" >&2; exit 1; }
cat "$tmp/loadgen.log"

# head -1: the aggregate counts precede the per-tenant rows; the
# first per-tenant row is 'interactive' (spec order).
errors=$(grep -o '"requests_error":[0-9]*' "$tmp/drill.json" \
    | head -1 | cut -d: -f2)
unauthorized=$(grep -o '"requests_401":[0-9]*' "$tmp/drill.json" \
    | head -1 | cut -d: -f2)
share=$(grep -o '"ok_share":[0-9.e-]*' "$tmp/drill.json" \
    | head -1 | cut -d: -f2)
p99=$(grep -o '"p99_us":[0-9.e-]*' "$tmp/drill.json" \
    | sed -n 2p | cut -d: -f2) # 1st is the aggregate block
noisy_share=$(grep -o '"ok_share":[0-9.e-]*' "$tmp/drill.json" \
    | sed -n 2p | cut -d: -f2)

if [ "$errors" != "0" ] || [ "$unauthorized" != "0" ]; then
    echo "FAIL: drill saw $errors errors, $unauthorized 401s" >&2
    exit 1
fi
awk "BEGIN{exit !($share >= 0.40)}" \
    || { echo "FAIL: interactive drained share $share < 0.40" >&2
         exit 1; }
awk "BEGIN{exit !($p99 < 500000)}" \
    || { echo "FAIL: interactive p99 ${p99}us not bounded" >&2
         exit 1; }
echo "OK: interactive share $share (>= 0.40), p99 ${p99}us bounded"

cat > "$repo/BENCH_PR9.json" <<EOF
{
  "benchmark": "tenant_smoke noisy-neighbor drill",
  "setup": "fosm-serve --tenants-file, 2 equal-weight tenants: interactive closed-loop /v1/cpi vs noisy closed-loop /v1/batch x64 rows, 4 connections, 6 s measured",
  "interactive_ok_share": $share,
  "interactive_p99_us": $p99,
  "noisy_ok_share": $noisy_share,
  "client_errors": $errors,
  "client_401s": $unauthorized,
  "assertions": {
    "interactive_ok_share_min": 0.40,
    "interactive_p99_us_max": 500000,
    "client_errors": 0
  }
}
EOF
echo "pinned $repo/BENCH_PR9.json"
echo "tenant smoke: PASS"
