#!/bin/sh
# Tier-1 verification: configure, build, and run the full test suite
# (including the golden-stats regression pins for the simulators).
# Usage: scripts/verify.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}

cmake -B "$build" -S "$repo"
cmake --build "$build" -j
cd "$build"
ctest --output-on-failure -j

# Golden statistics again, by name, so a filtered tier-1 run can't
# silently skip them.
ctest --output-on-failure -R GoldenStats
