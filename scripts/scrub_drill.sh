#!/bin/sh
# Self-healing scrub drill: a 3-replica replicated store where one
# node's disk silently corrupts what it writes, under live load.
#
#   - replica 2 runs with FOSM_FAULTS="store.corrupt=flip:0.15": 15%
#     of its store appends get one payload byte flipped AFTER the
#     CRC is computed — latent media corruption, invisible until
#     something re-reads the bytes.
#   - every replica scrubs continuously (--scrub-interval-s 1) and
#     re-verifies CRCs on reads (--store-verify-reads); findings are
#     quarantined and repaired from the replica ring.
#   - the loadgen pushes distinct design points through the gateway
#     the whole time.
#
# Pass criteria: the loadgen exits 0 with zero client-visible errors
# (corruption degrades to a miss + recompute, never an error), the
# faulted replica detects corruption (fosm_scrub_corrupt_found_total
# > 0) and heals it from its peers (fosm_repair_success_total > 0),
# and the gateway aggregates the scrub state in /v1/store/stats and
# fans out /admin/scrub.
# Usage: scripts/scrub_drill.sh [build-dir]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
serve="$build/tools/fosm-serve"
gateway="$build/tools/fosm-gateway"
loadgen="$build/tools/fosm-loadgen"

base=${FOSM_SCRUB_PORT:-18830}
p1=$((base + 1)); p2=$((base + 2)); p3=$((base + 3))
gp=$base
backends="127.0.0.1:$p1,127.0.0.1:$p2,127.0.0.1:$p3"
tmp=$(mktemp -d)

pids=""
cleanup() {
    for pid in $pids; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_healthy() { # $1 = port, $2 = name
    i=0
    while ! curl -fsS "http://127.0.0.1:$1/healthz" \
            > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 300 ]; then
            echo "FAIL: $2 (:$1) never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_replica() { # $1 = port (env may carry FOSM_FAULTS)
    "$serve" --port "$1" --no-warmup \
        --store-dir "$tmp/store-$1" \
        --self "127.0.0.1:$1" --peers "$backends" \
        --replication 2 --repl-interval 1000 \
        --scrub-interval-s 1 --scrub-mbps 64 \
        --store-verify-reads \
        > "$tmp/serve-$1.log" 2>&1 &
    echo $!
}

node_metric() { # $1 = port, $2 = anchored grep pattern; prints sum
    curl -fsS "http://127.0.0.1:$1/metrics" \
        | grep "$2" | awk '{s += $NF} END {print int(s + 0)}'
}

echo "== booting scrubbing trio (:$p1 :$p3 clean, :$p2 flips bytes)"
r1=$(start_replica "$p1"); pids="$pids $r1"
r2=$(FOSM_FAULTS="store.corrupt=flip:0.15" FOSM_FAULT_SEED=7 \
    start_replica "$p2"); pids="$pids $r2"
r3=$(start_replica "$p3"); pids="$pids $r3"
wait_healthy "$p1" replica1
wait_healthy "$p2" replica2
wait_healthy "$p3" replica3

echo "== booting gateway on :$gp"
"$gateway" --port "$gp" --backends "$backends" \
    --health-interval 100 \
    > "$tmp/gateway.log" 2>&1 &
gw=$!
pids="$pids $gw"
wait_healthy "$gp" gateway

echo "== live load while replica 2 corrupts its own writes"
"$loadgen" --targets "127.0.0.1:$gp" --connections 4 \
    --warmup 0.5 --duration 10 --distinct 32 \
    --timeout 5000 --deadline 2000 \
    --out "$tmp/report.json" > "$tmp/loadgen.log" 2>&1 &
lg=$!
pids="$pids $lg"

if ! wait "$lg"; then
    echo "FAIL: loadgen reported client-visible errors" >&2
    cat "$tmp/loadgen.log" >&2
    exit 1
fi
cat "$tmp/loadgen.log"

count() { # $1 = report key (head -1: the aggregate counts)
    grep -o "\"$1\":[0-9]*" "$tmp/report.json" \
        | head -1 | cut -d: -f2
}
errors=$(count requests_error)
rejected=$(count requests_503)
expired=$(count requests_504)
timeouts=$(count requests_timeout)
if [ "$errors" != "0" ] || [ "$rejected" != "0" ] ||
   [ "$expired" != "0" ] || [ "$timeouts" != "0" ]; then
    echo "FAIL: client saw errors=$errors 503s=$rejected" \
         "504s=$expired timeouts=$timeouts" >&2
    exit 1
fi
echo "OK: zero client-visible errors while corruption was live"

# Force one synchronous full pass everywhere through the gateway
# fan-out, so detection doesn't depend on background timing.
code=$(curl -s -o "$tmp/scrub.json" -w '%{http_code}' \
    -X POST -d '{"wait":true}' "http://127.0.0.1:$gp/admin/scrub")
if [ "$code" != "200" ]; then
    echo "FAIL: POST /admin/scrub via gateway -> HTTP $code" >&2
    cat "$tmp/scrub.json" >&2
    exit 1
fi
reporting=$(grep -o '"backends_reporting":[0-9]*' "$tmp/scrub.json" \
    | cut -d: -f2)
if [ "$reporting" != "3" ]; then
    echo "FAIL: /admin/scrub fan-out reached $reporting/3" >&2
    cat "$tmp/scrub.json" >&2
    exit 1
fi
echo "OK: /admin/scrub fanned out to all 3 backends"

# The faulted node must have found its own latent corruption...
found=$(node_metric "$p2" '^fosm_scrub_corrupt_found_total')
if [ "$found" -lt 1 ]; then
    echo "FAIL: :$p2 scrub found $found corrupt records" \
         "(expected >= 1)" >&2
    cat "$tmp/serve-$p2.log" >&2
    exit 1
fi
echo "OK: scrub on :$p2 found $found corrupt record(s)"

# ... and healed at least one from the ring (peers hold clean
# copies: write-behind ships the in-memory value, not the disk's).
i=0
while :; do
    repaired=$(node_metric "$p2" '^fosm_repair_success_total')
    [ "$repaired" -ge 1 ] && break
    i=$((i + 1))
    if [ "$i" -ge 200 ]; then
        echo "FAIL: :$p2 never repaired a quarantined record" >&2
        curl -fsS "http://127.0.0.1:$p2/v1/store/stats" >&2 || true
        cat "$tmp/serve-$p2.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "OK: :$p2 repaired $repaired record(s) from its peers"

# Gateway aggregation: the cluster rollup must carry the scrub and
# repair state the operators alert on.
curl -fsS "http://127.0.0.1:$gp/v1/store/stats" > "$tmp/stats.json"
for field in scrub_corrupt_found repaired_records; do
    v=$(grep -o "\"$field\":[0-9.]*" "$tmp/stats.json" \
        | head -1 | cut -d: -f2 | cut -d. -f1)
    if [ -z "$v" ] || [ "$v" -lt 1 ]; then
        echo "FAIL: aggregated $field=${v:-missing} (expected >= 1)" >&2
        cat "$tmp/stats.json" >&2
        exit 1
    fi
done
echo "OK: gateway /v1/store/stats aggregates scrub + repair state"

echo "scrub drill: PASS"
