#!/bin/sh
# Design-space optimization benchmark: the same >= 10k-point space is
# swept three ways and the frontiers must hash identically —
#   brute        client-side enumeration through /v1/batch chunks,
#                Pareto frontier computed in the load generator
#                (fresh server, fresh store);
#   planned-cold one POST /v1/optimize against a fresh server and
#                store (the sweep planner batches the space and fits
#                one IW characterization per distinct width);
#   planned-warm the identical /v1/optimize after a server restart on
#                the SAME store dir (the whole-response digest hits
#                the persistent tier: one store get, no planning).
# A fourth run, planned-overlap, grows the space by a few hundred
# points on the warm store: the whole-response digest misses but the
# planner dedupes every previously evaluated point against the
# per-point /v1/cpi entries and schedules only the new ones.
# Asserts
#   (1) frontier_hash identical across brute/cold/warm (bit-identical
#       frontier, the /v1/optimize correctness gate),
#   (2) planned-cold performs fewer IW characterizations than the
#       brute client-side enumeration,
#   (3) planned-cold end-to-end points/s beats brute,
#   (4) planned-overlap schedules only the new points,
# and merges the reports into BENCH_PR7.json.
# Usage: scripts/optimize_bench.sh [build-dir] [out.json]
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build"}
out=${2:-"$repo/BENCH_PR7.json"}
serve="$build/tools/fosm-serve"
loadgen="$build/tools/fosm-loadgen"

port=${FOSM_BENCH_PORT:-18791}
points=${FOSM_BENCH_POINTS:-12000}
seed=${FOSM_BENCH_SEED:-1}
tmp=$(mktemp -d)

pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

wait_healthy() {
    i=0
    while ! curl -fsS "http://127.0.0.1:$port/healthz" \
            > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 200 ]; then
            echo "FAIL: fosm-serve (:$port) never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_server() { # $1 = store dir
    "$serve" --port "$port" --no-warmup --store-dir "$1" \
        > "$tmp/serve.log" 2>&1 &
    pid=$!
    wait_healthy
}

stop_server() {
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    pid=""
}

run() { # $1 = mode, $2 = report file, $3 = point count
    "$loadgen" --port "$port" --optimize "$1" \
        --space-points "$3" --seed "$seed" --out "$2"
}

field() { # $1 = file, $2 = key (string value)
    grep -o "\"$2\":\"[^\"]*\"" "$1" | head -1 | cut -d: -f2 \
        | tr -d '"'
}
numfield() { # $1 = file, $2 = key (numeric value)
    grep -o "\"$2\":[0-9.e+-]*" "$1" | head -1 | cut -d: -f2
}

echo "== brute: client-side /v1/batch enumeration (fresh store)"
start_server "$tmp/store-brute"
run brute "$tmp/brute.json" "$points"
stop_server

echo "== planned-cold: /v1/optimize (fresh store)"
start_server "$tmp/store-planned"
run planned "$tmp/planned_cold.json" "$points"
stop_server

echo "== planned-warm: /v1/optimize after restart on the same store"
start_server "$tmp/store-planned"
run planned "$tmp/planned_warm.json" "$points"

echo "== planned-overlap: the space grown by ~2% on the warm store"
run planned "$tmp/planned_overlap.json" $((points + 240))
stop_server

hb=$(field "$tmp/brute.json" frontier_hash)
hc=$(field "$tmp/planned_cold.json" frontier_hash)
hw=$(field "$tmp/planned_warm.json" frontier_hash)
if [ "$hb" != "$hc" ] || [ "$hb" != "$hw" ]; then
    echo "FAIL: frontier hashes differ:" \
         "brute=$hb cold=$hc warm=$hw" >&2
    exit 1
fi
echo "OK: frontier bit-identical across all three runs ($hb)"

cb=$(numfield "$tmp/brute.json" characterizations)
cc=$(numfield "$tmp/planned_cold.json" characterizations)
if [ "$cc" -ge "$cb" ]; then
    echo "FAIL: planned-cold did $cc characterizations," \
         "brute $cb (expected fewer)" >&2
    exit 1
fi
echo "OK: planned-cold characterizations $cc < brute $cb"

pb=$(numfield "$tmp/brute.json" points_per_s)
pc=$(numfield "$tmp/planned_cold.json" points_per_s)
if ! awk "BEGIN { exit !($pc > $pb) }"; then
    echo "FAIL: planned-cold $pc points/s <= brute $pb" >&2
    exit 1
fi
echo "OK: planned-cold $pc points/s > brute $pb"

# The grown sweep must dedupe everything the original one evaluated:
# scheduled = feasible(new) - feasible(old).
of=$(numfield "$tmp/planned_overlap.json" feasible)
oldf=$(numfield "$tmp/planned_cold.json" feasible)
os=$(numfield "$tmp/planned_overlap.json" scheduled)
oh=$(numfield "$tmp/planned_overlap.json" cacheHits)
if [ "$os" -ne $((of - oldf)) ] || [ "$oh" -ne "$oldf" ]; then
    echo "FAIL: overlap sweep scheduled $os / deduped $oh" \
         "(expected $((of - oldf)) / $oldf)" >&2
    exit 1
fi
echo "OK: overlap sweep deduped $oh points, scheduled only $os"

python3 - "$tmp" "$out" <<'EOF'
import json, platform, sys
tmp, out = sys.argv[1], sys.argv[2]
load = lambda n: json.load(open(f"{tmp}/{n}.json"))
brute, cold, warm, overlap = (
    load(n) for n in
    ("brute", "planned_cold", "planned_warm", "planned_overlap"))
doc = {
    "date": "2026-08-09",
    "machine": {"platform": platform.platform()},
    "setup": {
        "binary": "tools/fosm-loadgen --optimize",
        "space_points": brute["space_cardinality"],
        "feasible": brute["feasible"],
        "constraint": brute["constraint"],
        "objectives": ["cpi", "windowSize"],
        "notes": "Same seed => identical space in all three runs. "
                 "brute: fresh server+store, client-side odometer "
                 "enumeration over /v1/batch chunks, frontier "
                 "computed client-side; planned-cold: one "
                 "/v1/optimize on a fresh server+store; "
                 "planned-warm: the identical /v1/optimize after a "
                 "restart on the same store dir, so every point "
                 "dedupes against the persistent tier. "
                 "'characterizations' counts IW fits: one per "
                 "(batch request x width) for brute vs one per "
                 "distinct width for the planner. planned-overlap "
                 "grows the space by ~2% on the warm store: the "
                 "whole-response digest misses but the planner "
                 "dedupes every previously evaluated point against "
                 "its per-point /v1/cpi entry and schedules only "
                 "the new ones.",
    },
    "brute": brute,
    "planned_cold": cold,
    "planned_warm": warm,
    "planned_overlap": overlap,
    "summary": {
        "frontier_bit_identical":
            brute["frontier_hash"] == cold["frontier_hash"]
            == warm["frontier_hash"],
        "frontier_hash": brute["frontier_hash"],
        "characterizations_brute": brute["characterizations"],
        "characterizations_planned": cold["characterizations"],
        "points_per_s_brute": brute["points_per_s"],
        "points_per_s_planned_cold": cold["points_per_s"],
        "points_per_s_planned_warm": warm["points_per_s"],
        "planned_cold_speedup":
            cold["points_per_s"] / brute["points_per_s"],
        "planned_warm_speedup":
            warm["points_per_s"] / brute["points_per_s"],
        "overlap_points_deduped":
            overlap["planner"]["cacheHits"],
        "overlap_points_scheduled":
            overlap["planner"]["scheduled"],
    },
}
json.dump(doc, open(out, "w"), indent=2)
print(f"wrote {out}")
EOF

echo "optimize bench: PASS"
