file(REMOVE_RECURSE
  "libfosm_common.a"
)
