file(REMOVE_RECURSE
  "CMakeFiles/fosm_common.dir/fit.cc.o"
  "CMakeFiles/fosm_common.dir/fit.cc.o.d"
  "CMakeFiles/fosm_common.dir/logging.cc.o"
  "CMakeFiles/fosm_common.dir/logging.cc.o.d"
  "CMakeFiles/fosm_common.dir/rng.cc.o"
  "CMakeFiles/fosm_common.dir/rng.cc.o.d"
  "CMakeFiles/fosm_common.dir/stats.cc.o"
  "CMakeFiles/fosm_common.dir/stats.cc.o.d"
  "CMakeFiles/fosm_common.dir/table.cc.o"
  "CMakeFiles/fosm_common.dir/table.cc.o.d"
  "libfosm_common.a"
  "libfosm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
