# Empty dependencies file for fosm_common.
# This may be replaced when dependencies are built.
