file(REMOVE_RECURSE
  "CMakeFiles/fosm_model.dir/first_order_model.cc.o"
  "CMakeFiles/fosm_model.dir/first_order_model.cc.o.d"
  "CMakeFiles/fosm_model.dir/fu_model.cc.o"
  "CMakeFiles/fosm_model.dir/fu_model.cc.o.d"
  "CMakeFiles/fosm_model.dir/penalties.cc.o"
  "CMakeFiles/fosm_model.dir/penalties.cc.o.d"
  "CMakeFiles/fosm_model.dir/transient.cc.o"
  "CMakeFiles/fosm_model.dir/transient.cc.o.d"
  "CMakeFiles/fosm_model.dir/trends.cc.o"
  "CMakeFiles/fosm_model.dir/trends.cc.o.d"
  "libfosm_model.a"
  "libfosm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
