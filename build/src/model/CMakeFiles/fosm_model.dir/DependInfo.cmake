
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/first_order_model.cc" "src/model/CMakeFiles/fosm_model.dir/first_order_model.cc.o" "gcc" "src/model/CMakeFiles/fosm_model.dir/first_order_model.cc.o.d"
  "/root/repo/src/model/fu_model.cc" "src/model/CMakeFiles/fosm_model.dir/fu_model.cc.o" "gcc" "src/model/CMakeFiles/fosm_model.dir/fu_model.cc.o.d"
  "/root/repo/src/model/penalties.cc" "src/model/CMakeFiles/fosm_model.dir/penalties.cc.o" "gcc" "src/model/CMakeFiles/fosm_model.dir/penalties.cc.o.d"
  "/root/repo/src/model/transient.cc" "src/model/CMakeFiles/fosm_model.dir/transient.cc.o" "gcc" "src/model/CMakeFiles/fosm_model.dir/transient.cc.o.d"
  "/root/repo/src/model/trends.cc" "src/model/CMakeFiles/fosm_model.dir/trends.cc.o" "gcc" "src/model/CMakeFiles/fosm_model.dir/trends.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iw/CMakeFiles/fosm_iw.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fosm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fosm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fosm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fosm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/fosm_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
