file(REMOVE_RECURSE
  "libfosm_model.a"
)
