# Empty compiler generated dependencies file for fosm_model.
# This may be replaced when dependencies are built.
