
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/bimodal.cc" "src/branch/CMakeFiles/fosm_branch.dir/bimodal.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/bimodal.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/branch/CMakeFiles/fosm_branch.dir/gshare.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/gshare.cc.o.d"
  "/root/repo/src/branch/ideal.cc" "src/branch/CMakeFiles/fosm_branch.dir/ideal.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/ideal.cc.o.d"
  "/root/repo/src/branch/local.cc" "src/branch/CMakeFiles/fosm_branch.dir/local.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/local.cc.o.d"
  "/root/repo/src/branch/predictor.cc" "src/branch/CMakeFiles/fosm_branch.dir/predictor.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/predictor.cc.o.d"
  "/root/repo/src/branch/synthetic.cc" "src/branch/CMakeFiles/fosm_branch.dir/synthetic.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/synthetic.cc.o.d"
  "/root/repo/src/branch/tournament.cc" "src/branch/CMakeFiles/fosm_branch.dir/tournament.cc.o" "gcc" "src/branch/CMakeFiles/fosm_branch.dir/tournament.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
