file(REMOVE_RECURSE
  "libfosm_branch.a"
)
