# Empty compiler generated dependencies file for fosm_branch.
# This may be replaced when dependencies are built.
