file(REMOVE_RECURSE
  "CMakeFiles/fosm_branch.dir/bimodal.cc.o"
  "CMakeFiles/fosm_branch.dir/bimodal.cc.o.d"
  "CMakeFiles/fosm_branch.dir/gshare.cc.o"
  "CMakeFiles/fosm_branch.dir/gshare.cc.o.d"
  "CMakeFiles/fosm_branch.dir/ideal.cc.o"
  "CMakeFiles/fosm_branch.dir/ideal.cc.o.d"
  "CMakeFiles/fosm_branch.dir/local.cc.o"
  "CMakeFiles/fosm_branch.dir/local.cc.o.d"
  "CMakeFiles/fosm_branch.dir/predictor.cc.o"
  "CMakeFiles/fosm_branch.dir/predictor.cc.o.d"
  "CMakeFiles/fosm_branch.dir/synthetic.cc.o"
  "CMakeFiles/fosm_branch.dir/synthetic.cc.o.d"
  "CMakeFiles/fosm_branch.dir/tournament.cc.o"
  "CMakeFiles/fosm_branch.dir/tournament.cc.o.d"
  "libfosm_branch.a"
  "libfosm_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
