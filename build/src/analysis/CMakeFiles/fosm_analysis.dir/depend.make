# Empty dependencies file for fosm_analysis.
# This may be replaced when dependencies are built.
