file(REMOVE_RECURSE
  "libfosm_analysis.a"
)
