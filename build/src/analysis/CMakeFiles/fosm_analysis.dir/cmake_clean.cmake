file(REMOVE_RECURSE
  "CMakeFiles/fosm_analysis.dir/miss_profiler.cc.o"
  "CMakeFiles/fosm_analysis.dir/miss_profiler.cc.o.d"
  "CMakeFiles/fosm_analysis.dir/phase_model.cc.o"
  "CMakeFiles/fosm_analysis.dir/phase_model.cc.o.d"
  "libfosm_analysis.a"
  "libfosm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
