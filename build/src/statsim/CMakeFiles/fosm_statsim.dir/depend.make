# Empty dependencies file for fosm_statsim.
# This may be replaced when dependencies are built.
