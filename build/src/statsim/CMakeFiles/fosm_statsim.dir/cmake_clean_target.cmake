file(REMOVE_RECURSE
  "libfosm_statsim.a"
)
