file(REMOVE_RECURSE
  "CMakeFiles/fosm_statsim.dir/profile_estimator.cc.o"
  "CMakeFiles/fosm_statsim.dir/profile_estimator.cc.o.d"
  "libfosm_statsim.a"
  "libfosm_statsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_statsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
