# Empty dependencies file for fosm_experiments.
# This may be replaced when dependencies are built.
