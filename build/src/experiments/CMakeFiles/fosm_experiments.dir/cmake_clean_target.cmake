file(REMOVE_RECURSE
  "libfosm_experiments.a"
)
