file(REMOVE_RECURSE
  "CMakeFiles/fosm_experiments.dir/workbench.cc.o"
  "CMakeFiles/fosm_experiments.dir/workbench.cc.o.d"
  "libfosm_experiments.a"
  "libfosm_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
