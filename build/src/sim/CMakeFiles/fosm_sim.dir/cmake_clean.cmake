file(REMOVE_RECURSE
  "CMakeFiles/fosm_sim.dir/detailed_sim.cc.o"
  "CMakeFiles/fosm_sim.dir/detailed_sim.cc.o.d"
  "libfosm_sim.a"
  "libfosm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
