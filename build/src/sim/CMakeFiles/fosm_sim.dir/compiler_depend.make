# Empty compiler generated dependencies file for fosm_sim.
# This may be replaced when dependencies are built.
