file(REMOVE_RECURSE
  "libfosm_sim.a"
)
