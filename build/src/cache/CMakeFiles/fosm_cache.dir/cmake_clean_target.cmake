file(REMOVE_RECURSE
  "libfosm_cache.a"
)
