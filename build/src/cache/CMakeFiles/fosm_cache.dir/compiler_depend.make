# Empty compiler generated dependencies file for fosm_cache.
# This may be replaced when dependencies are built.
