file(REMOVE_RECURSE
  "CMakeFiles/fosm_cache.dir/cache.cc.o"
  "CMakeFiles/fosm_cache.dir/cache.cc.o.d"
  "CMakeFiles/fosm_cache.dir/hierarchy.cc.o"
  "CMakeFiles/fosm_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/fosm_cache.dir/replacement.cc.o"
  "CMakeFiles/fosm_cache.dir/replacement.cc.o.d"
  "CMakeFiles/fosm_cache.dir/tlb.cc.o"
  "CMakeFiles/fosm_cache.dir/tlb.cc.o.d"
  "libfosm_cache.a"
  "libfosm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
