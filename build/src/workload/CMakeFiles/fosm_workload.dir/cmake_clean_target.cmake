file(REMOVE_RECURSE
  "libfosm_workload.a"
)
