file(REMOVE_RECURSE
  "CMakeFiles/fosm_workload.dir/address_stream.cc.o"
  "CMakeFiles/fosm_workload.dir/address_stream.cc.o.d"
  "CMakeFiles/fosm_workload.dir/branch_stream.cc.o"
  "CMakeFiles/fosm_workload.dir/branch_stream.cc.o.d"
  "CMakeFiles/fosm_workload.dir/generator.cc.o"
  "CMakeFiles/fosm_workload.dir/generator.cc.o.d"
  "CMakeFiles/fosm_workload.dir/profile.cc.o"
  "CMakeFiles/fosm_workload.dir/profile.cc.o.d"
  "CMakeFiles/fosm_workload.dir/profiles.cc.o"
  "CMakeFiles/fosm_workload.dir/profiles.cc.o.d"
  "libfosm_workload.a"
  "libfosm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
