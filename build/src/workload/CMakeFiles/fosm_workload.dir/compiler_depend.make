# Empty compiler generated dependencies file for fosm_workload.
# This may be replaced when dependencies are built.
