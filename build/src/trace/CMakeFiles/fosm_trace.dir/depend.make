# Empty dependencies file for fosm_trace.
# This may be replaced when dependencies are built.
