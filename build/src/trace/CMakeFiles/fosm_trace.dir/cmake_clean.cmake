file(REMOVE_RECURSE
  "CMakeFiles/fosm_trace.dir/latency.cc.o"
  "CMakeFiles/fosm_trace.dir/latency.cc.o.d"
  "CMakeFiles/fosm_trace.dir/trace.cc.o"
  "CMakeFiles/fosm_trace.dir/trace.cc.o.d"
  "CMakeFiles/fosm_trace.dir/trace_stats.cc.o"
  "CMakeFiles/fosm_trace.dir/trace_stats.cc.o.d"
  "libfosm_trace.a"
  "libfosm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
