file(REMOVE_RECURSE
  "libfosm_trace.a"
)
