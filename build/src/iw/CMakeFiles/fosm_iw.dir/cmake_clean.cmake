file(REMOVE_RECURSE
  "CMakeFiles/fosm_iw.dir/iw_characteristic.cc.o"
  "CMakeFiles/fosm_iw.dir/iw_characteristic.cc.o.d"
  "CMakeFiles/fosm_iw.dir/window_sim.cc.o"
  "CMakeFiles/fosm_iw.dir/window_sim.cc.o.d"
  "libfosm_iw.a"
  "libfosm_iw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm_iw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
