# Empty dependencies file for fosm_iw.
# This may be replaced when dependencies are built.
