file(REMOVE_RECURSE
  "libfosm_iw.a"
)
