
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iw/iw_characteristic.cc" "src/iw/CMakeFiles/fosm_iw.dir/iw_characteristic.cc.o" "gcc" "src/iw/CMakeFiles/fosm_iw.dir/iw_characteristic.cc.o.d"
  "/root/repo/src/iw/window_sim.cc" "src/iw/CMakeFiles/fosm_iw.dir/window_sim.cc.o" "gcc" "src/iw/CMakeFiles/fosm_iw.dir/window_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fosm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
