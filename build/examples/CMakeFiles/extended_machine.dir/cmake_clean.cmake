file(REMOVE_RECURSE
  "CMakeFiles/extended_machine.dir/extended_machine.cpp.o"
  "CMakeFiles/extended_machine.dir/extended_machine.cpp.o.d"
  "extended_machine"
  "extended_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
