
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/extended_machine.cpp" "examples/CMakeFiles/extended_machine.dir/extended_machine.cpp.o" "gcc" "examples/CMakeFiles/extended_machine.dir/extended_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/fosm_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fosm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fosm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/statsim/CMakeFiles/fosm_statsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fosm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fosm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/iw/CMakeFiles/fosm_iw.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fosm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/fosm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/fosm_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fosm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
