# Empty dependencies file for extended_machine.
# This may be replaced when dependencies are built.
