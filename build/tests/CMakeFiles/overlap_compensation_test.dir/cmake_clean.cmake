file(REMOVE_RECURSE
  "CMakeFiles/overlap_compensation_test.dir/model/overlap_compensation_test.cc.o"
  "CMakeFiles/overlap_compensation_test.dir/model/overlap_compensation_test.cc.o.d"
  "overlap_compensation_test"
  "overlap_compensation_test.pdb"
  "overlap_compensation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_compensation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
