# Empty dependencies file for overlap_compensation_test.
# This may be replaced when dependencies are built.
