file(REMOVE_RECURSE
  "CMakeFiles/sim_regression_test.dir/sim/sim_regression_test.cc.o"
  "CMakeFiles/sim_regression_test.dir/sim/sim_regression_test.cc.o.d"
  "sim_regression_test"
  "sim_regression_test.pdb"
  "sim_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
