# Empty compiler generated dependencies file for sim_regression_test.
# This may be replaced when dependencies are built.
