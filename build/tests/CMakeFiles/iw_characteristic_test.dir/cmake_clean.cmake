file(REMOVE_RECURSE
  "CMakeFiles/iw_characteristic_test.dir/iw/iw_characteristic_test.cc.o"
  "CMakeFiles/iw_characteristic_test.dir/iw/iw_characteristic_test.cc.o.d"
  "iw_characteristic_test"
  "iw_characteristic_test.pdb"
  "iw_characteristic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_characteristic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
