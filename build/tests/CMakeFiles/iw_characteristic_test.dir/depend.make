# Empty dependencies file for iw_characteristic_test.
# This may be replaced when dependencies are built.
