file(REMOVE_RECURSE
  "CMakeFiles/fu_model_test.dir/model/fu_model_test.cc.o"
  "CMakeFiles/fu_model_test.dir/model/fu_model_test.cc.o.d"
  "fu_model_test"
  "fu_model_test.pdb"
  "fu_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fu_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
