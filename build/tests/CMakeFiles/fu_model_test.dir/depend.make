# Empty dependencies file for fu_model_test.
# This may be replaced when dependencies are built.
