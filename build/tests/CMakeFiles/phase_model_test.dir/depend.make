# Empty dependencies file for phase_model_test.
# This may be replaced when dependencies are built.
