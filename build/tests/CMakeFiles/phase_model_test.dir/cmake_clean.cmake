file(REMOVE_RECURSE
  "CMakeFiles/phase_model_test.dir/analysis/phase_model_test.cc.o"
  "CMakeFiles/phase_model_test.dir/analysis/phase_model_test.cc.o.d"
  "phase_model_test"
  "phase_model_test.pdb"
  "phase_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
