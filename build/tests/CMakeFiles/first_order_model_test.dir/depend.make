# Empty dependencies file for first_order_model_test.
# This may be replaced when dependencies are built.
