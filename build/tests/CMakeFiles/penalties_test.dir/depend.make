# Empty dependencies file for penalties_test.
# This may be replaced when dependencies are built.
