file(REMOVE_RECURSE
  "CMakeFiles/detailed_sim_test.dir/sim/detailed_sim_test.cc.o"
  "CMakeFiles/detailed_sim_test.dir/sim/detailed_sim_test.cc.o.d"
  "detailed_sim_test"
  "detailed_sim_test.pdb"
  "detailed_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detailed_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
