# Empty dependencies file for window_sim_test.
# This may be replaced when dependencies are built.
