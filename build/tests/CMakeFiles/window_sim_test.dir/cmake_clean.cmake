file(REMOVE_RECURSE
  "CMakeFiles/window_sim_test.dir/iw/window_sim_test.cc.o"
  "CMakeFiles/window_sim_test.dir/iw/window_sim_test.cc.o.d"
  "window_sim_test"
  "window_sim_test.pdb"
  "window_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
