file(REMOVE_RECURSE
  "CMakeFiles/window_sim_latency_test.dir/iw/window_sim_latency_test.cc.o"
  "CMakeFiles/window_sim_latency_test.dir/iw/window_sim_latency_test.cc.o.d"
  "window_sim_latency_test"
  "window_sim_latency_test.pdb"
  "window_sim_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_sim_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
