file(REMOVE_RECURSE
  "CMakeFiles/miss_profiler_test.dir/analysis/miss_profiler_test.cc.o"
  "CMakeFiles/miss_profiler_test.dir/analysis/miss_profiler_test.cc.o.d"
  "miss_profiler_test"
  "miss_profiler_test.pdb"
  "miss_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miss_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
