# Empty dependencies file for miss_profiler_test.
# This may be replaced when dependencies are built.
