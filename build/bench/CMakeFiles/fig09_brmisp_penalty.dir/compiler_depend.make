# Empty compiler generated dependencies file for fig09_brmisp_penalty.
# This may be replaced when dependencies are built.
