file(REMOVE_RECURSE
  "CMakeFiles/fig09_brmisp_penalty.dir/fig09_brmisp_penalty.cpp.o"
  "CMakeFiles/fig09_brmisp_penalty.dir/fig09_brmisp_penalty.cpp.o.d"
  "fig09_brmisp_penalty"
  "fig09_brmisp_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_brmisp_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
