# Empty dependencies file for tab01_powerlaw.
# This may be replaced when dependencies are built.
