file(REMOVE_RECURSE
  "CMakeFiles/tab01_powerlaw.dir/tab01_powerlaw.cpp.o"
  "CMakeFiles/tab01_powerlaw.dir/tab01_powerlaw.cpp.o.d"
  "tab01_powerlaw"
  "tab01_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
