file(REMOVE_RECURSE
  "CMakeFiles/ext_clustered.dir/ext_clustered.cpp.o"
  "CMakeFiles/ext_clustered.dir/ext_clustered.cpp.o.d"
  "ext_clustered"
  "ext_clustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_clustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
