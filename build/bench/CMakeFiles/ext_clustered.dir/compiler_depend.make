# Empty compiler generated dependencies file for ext_clustered.
# This may be replaced when dependencies are built.
