file(REMOVE_RECURSE
  "CMakeFiles/ext_statistical_sim.dir/ext_statistical_sim.cpp.o"
  "CMakeFiles/ext_statistical_sim.dir/ext_statistical_sim.cpp.o.d"
  "ext_statistical_sim"
  "ext_statistical_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_statistical_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
