# Empty compiler generated dependencies file for ext_statistical_sim.
# This may be replaced when dependencies are built.
