# Empty dependencies file for ablation_overlap_compensation.
# This may be replaced when dependencies are built.
