file(REMOVE_RECURSE
  "CMakeFiles/ablation_overlap_compensation.dir/ablation_overlap_compensation.cpp.o"
  "CMakeFiles/ablation_overlap_compensation.dir/ablation_overlap_compensation.cpp.o.d"
  "ablation_overlap_compensation"
  "ablation_overlap_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlap_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
