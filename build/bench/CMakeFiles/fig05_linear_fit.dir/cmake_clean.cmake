file(REMOVE_RECURSE
  "CMakeFiles/fig05_linear_fit.dir/fig05_linear_fit.cpp.o"
  "CMakeFiles/fig05_linear_fit.dir/fig05_linear_fit.cpp.o.d"
  "fig05_linear_fit"
  "fig05_linear_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_linear_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
