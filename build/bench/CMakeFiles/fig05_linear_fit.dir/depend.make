# Empty dependencies file for fig05_linear_fit.
# This may be replaced when dependencies are built.
