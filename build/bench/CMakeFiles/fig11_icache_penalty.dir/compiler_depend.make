# Empty compiler generated dependencies file for fig11_icache_penalty.
# This may be replaced when dependencies are built.
