file(REMOVE_RECURSE
  "CMakeFiles/fig11_icache_penalty.dir/fig11_icache_penalty.cpp.o"
  "CMakeFiles/fig11_icache_penalty.dir/fig11_icache_penalty.cpp.o.d"
  "fig11_icache_penalty"
  "fig11_icache_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_icache_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
