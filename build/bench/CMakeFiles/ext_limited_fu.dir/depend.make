# Empty dependencies file for ext_limited_fu.
# This may be replaced when dependencies are built.
