file(REMOVE_RECURSE
  "CMakeFiles/ext_limited_fu.dir/ext_limited_fu.cpp.o"
  "CMakeFiles/ext_limited_fu.dir/ext_limited_fu.cpp.o.d"
  "ext_limited_fu"
  "ext_limited_fu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_limited_fu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
