file(REMOVE_RECURSE
  "CMakeFiles/fig18_issue_width.dir/fig18_issue_width.cpp.o"
  "CMakeFiles/fig18_issue_width.dir/fig18_issue_width.cpp.o.d"
  "fig18_issue_width"
  "fig18_issue_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_issue_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
