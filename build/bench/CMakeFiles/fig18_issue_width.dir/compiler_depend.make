# Empty compiler generated dependencies file for fig18_issue_width.
# This may be replaced when dependencies are built.
