file(REMOVE_RECURSE
  "CMakeFiles/fig15_model_vs_sim.dir/fig15_model_vs_sim.cpp.o"
  "CMakeFiles/fig15_model_vs_sim.dir/fig15_model_vs_sim.cpp.o.d"
  "fig15_model_vs_sim"
  "fig15_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
