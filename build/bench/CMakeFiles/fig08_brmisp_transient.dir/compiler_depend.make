# Empty compiler generated dependencies file for fig08_brmisp_transient.
# This may be replaced when dependencies are built.
