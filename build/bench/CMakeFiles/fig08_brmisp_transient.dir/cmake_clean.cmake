file(REMOVE_RECURSE
  "CMakeFiles/fig08_brmisp_transient.dir/fig08_brmisp_transient.cpp.o"
  "CMakeFiles/fig08_brmisp_transient.dir/fig08_brmisp_transient.cpp.o.d"
  "fig08_brmisp_transient"
  "fig08_brmisp_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_brmisp_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
