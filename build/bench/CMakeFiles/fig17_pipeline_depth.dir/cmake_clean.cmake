file(REMOVE_RECURSE
  "CMakeFiles/fig17_pipeline_depth.dir/fig17_pipeline_depth.cpp.o"
  "CMakeFiles/fig17_pipeline_depth.dir/fig17_pipeline_depth.cpp.o.d"
  "fig17_pipeline_depth"
  "fig17_pipeline_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
