# Empty compiler generated dependencies file for fig17_pipeline_depth.
# This may be replaced when dependencies are built.
