file(REMOVE_RECURSE
  "CMakeFiles/ablation_dmiss_overlap.dir/ablation_dmiss_overlap.cpp.o"
  "CMakeFiles/ablation_dmiss_overlap.dir/ablation_dmiss_overlap.cpp.o.d"
  "ablation_dmiss_overlap"
  "ablation_dmiss_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dmiss_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
