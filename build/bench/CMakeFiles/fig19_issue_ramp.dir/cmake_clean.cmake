file(REMOVE_RECURSE
  "CMakeFiles/fig19_issue_ramp.dir/fig19_issue_ramp.cpp.o"
  "CMakeFiles/fig19_issue_ramp.dir/fig19_issue_ramp.cpp.o.d"
  "fig19_issue_ramp"
  "fig19_issue_ramp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_issue_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
