# Empty compiler generated dependencies file for fig19_issue_ramp.
# This may be replaced when dependencies are built.
