# Empty dependencies file for fig02_independence.
# This may be replaced when dependencies are built.
