file(REMOVE_RECURSE
  "CMakeFiles/fig02_independence.dir/fig02_independence.cpp.o"
  "CMakeFiles/fig02_independence.dir/fig02_independence.cpp.o.d"
  "fig02_independence"
  "fig02_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
