# Empty compiler generated dependencies file for fig04_iw_curves.
# This may be replaced when dependencies are built.
