file(REMOVE_RECURSE
  "CMakeFiles/fig04_iw_curves.dir/fig04_iw_curves.cpp.o"
  "CMakeFiles/fig04_iw_curves.dir/fig04_iw_curves.cpp.o.d"
  "fig04_iw_curves"
  "fig04_iw_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_iw_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
