# Empty dependencies file for ablation_littles_law.
# This may be replaced when dependencies are built.
