file(REMOVE_RECURSE
  "CMakeFiles/ablation_littles_law.dir/ablation_littles_law.cpp.o"
  "CMakeFiles/ablation_littles_law.dir/ablation_littles_law.cpp.o.d"
  "ablation_littles_law"
  "ablation_littles_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_littles_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
