# Empty dependencies file for ext_tlb.
# This may be replaced when dependencies are built.
