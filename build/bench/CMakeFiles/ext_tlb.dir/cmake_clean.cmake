file(REMOVE_RECURSE
  "CMakeFiles/ext_tlb.dir/ext_tlb.cpp.o"
  "CMakeFiles/ext_tlb.dir/ext_tlb.cpp.o.d"
  "ext_tlb"
  "ext_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
