# Empty compiler generated dependencies file for ext_fetch_buffer.
# This may be replaced when dependencies are built.
