file(REMOVE_RECURSE
  "CMakeFiles/ext_fetch_buffer.dir/ext_fetch_buffer.cpp.o"
  "CMakeFiles/ext_fetch_buffer.dir/ext_fetch_buffer.cpp.o.d"
  "ext_fetch_buffer"
  "ext_fetch_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fetch_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
