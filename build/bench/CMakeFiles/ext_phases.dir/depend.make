# Empty dependencies file for ext_phases.
# This may be replaced when dependencies are built.
