file(REMOVE_RECURSE
  "CMakeFiles/ext_phases.dir/ext_phases.cpp.o"
  "CMakeFiles/ext_phases.dir/ext_phases.cpp.o.d"
  "ext_phases"
  "ext_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
