# Empty compiler generated dependencies file for fig06_limited_issue.
# This may be replaced when dependencies are built.
