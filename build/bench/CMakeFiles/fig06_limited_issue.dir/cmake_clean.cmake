file(REMOVE_RECURSE
  "CMakeFiles/fig06_limited_issue.dir/fig06_limited_issue.cpp.o"
  "CMakeFiles/fig06_limited_issue.dir/fig06_limited_issue.cpp.o.d"
  "fig06_limited_issue"
  "fig06_limited_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_limited_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
