# Empty compiler generated dependencies file for fig14_dcache_penalty.
# This may be replaced when dependencies are built.
