file(REMOVE_RECURSE
  "CMakeFiles/fig14_dcache_penalty.dir/fig14_dcache_penalty.cpp.o"
  "CMakeFiles/fig14_dcache_penalty.dir/fig14_dcache_penalty.cpp.o.d"
  "fig14_dcache_penalty"
  "fig14_dcache_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dcache_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
