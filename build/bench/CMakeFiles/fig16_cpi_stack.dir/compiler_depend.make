# Empty compiler generated dependencies file for fig16_cpi_stack.
# This may be replaced when dependencies are built.
