file(REMOVE_RECURSE
  "CMakeFiles/fig16_cpi_stack.dir/fig16_cpi_stack.cpp.o"
  "CMakeFiles/fig16_cpi_stack.dir/fig16_cpi_stack.cpp.o.d"
  "fig16_cpi_stack"
  "fig16_cpi_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cpi_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
