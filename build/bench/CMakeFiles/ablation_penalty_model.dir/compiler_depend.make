# Empty compiler generated dependencies file for ablation_penalty_model.
# This may be replaced when dependencies are built.
