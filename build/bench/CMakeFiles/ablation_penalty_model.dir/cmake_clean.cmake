file(REMOVE_RECURSE
  "CMakeFiles/ablation_penalty_model.dir/ablation_penalty_model.cpp.o"
  "CMakeFiles/ablation_penalty_model.dir/ablation_penalty_model.cpp.o.d"
  "ablation_penalty_model"
  "ablation_penalty_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_penalty_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
