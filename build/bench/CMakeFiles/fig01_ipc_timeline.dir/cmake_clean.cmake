file(REMOVE_RECURSE
  "CMakeFiles/fig01_ipc_timeline.dir/fig01_ipc_timeline.cpp.o"
  "CMakeFiles/fig01_ipc_timeline.dir/fig01_ipc_timeline.cpp.o.d"
  "fig01_ipc_timeline"
  "fig01_ipc_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ipc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
