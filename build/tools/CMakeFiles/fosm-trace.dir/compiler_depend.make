# Empty compiler generated dependencies file for fosm-trace.
# This may be replaced when dependencies are built.
