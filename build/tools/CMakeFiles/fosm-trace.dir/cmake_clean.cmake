file(REMOVE_RECURSE
  "CMakeFiles/fosm-trace.dir/fosm-trace.cpp.o"
  "CMakeFiles/fosm-trace.dir/fosm-trace.cpp.o.d"
  "fosm-trace"
  "fosm-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
