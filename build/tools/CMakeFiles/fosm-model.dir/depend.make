# Empty dependencies file for fosm-model.
# This may be replaced when dependencies are built.
