file(REMOVE_RECURSE
  "CMakeFiles/fosm-model.dir/fosm-model.cpp.o"
  "CMakeFiles/fosm-model.dir/fosm-model.cpp.o.d"
  "fosm-model"
  "fosm-model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fosm-model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
